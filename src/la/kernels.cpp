#include "la/kernels.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"

namespace dmml::la {

namespace {

// ---------------------------------------------------------------------------
// Tiling / scheduling constants
// ---------------------------------------------------------------------------

// GEMM micro-tile: kMr rows of C by kNr columns held in registers (4 x 8
// doubles = 8 AVX2 registers of accumulators; kNr doubles = one cache line).
constexpr size_t kMr = 4;
constexpr size_t kNr = 8;
// Packed-panel depth/width: a kKc x kNc B panel is 128 KiB, sized to sit in
// L2 while it is reused by every row block of the chunk.
constexpr size_t kKc = 128;
constexpr size_t kNc = 128;
// Square tile edge for the blocked transpose (32 x 32 doubles = 8 KiB).
constexpr size_t kTransposeTile = 32;
// Minimum FLOPs (or touched elements) a parallel chunk must carry before a
// kernel fans out — below this, pool submit latency beats the speedup and
// the kernel runs inline.
constexpr size_t kMinWorkPerChunk = size_t{1} << 15;
// Below this FLOP count GEMM skips blocking/packing entirely: the naive
// loop's lower constant wins on tiny operands.
constexpr size_t kSmallGemmFlops = size_t{1} << 15;

// Rows (or items) per parallel chunk so each chunk carries at least
// kMinWorkPerChunk work units.
size_t GrainFor(size_t work_per_item) {
  return std::max<size_t>(1, kMinWorkPerChunk / std::max<size_t>(1, work_per_item));
}

// Reshapes *out to r x c for a kernel that fully overwrites it, counting
// whether the existing allocation could be reused.
void EnsureOut(DenseMatrix* out, size_t r, size_t c) {
  if (out->Reshape(r, c)) {
    DMML_COUNTER_INC("la.inplace.reuses");
  } else {
    DMML_COUNTER_INC("la.inplace.allocs");
  }
}

// ---------------------------------------------------------------------------
// Blocked GEMM
// ---------------------------------------------------------------------------

// Packs B(k0..k0+kc, j0..j0+nc) into kNr-wide slivers: sliver jb holds a
// kc x kNr column strip laid out row-major, zero-padded past the last valid
// column so the micro-kernel always runs a full-width inner loop.
void PackPanelB(const double* b, size_t ldb, size_t k0, size_t kc, size_t j0,
                size_t nc, double* out) {
  const size_t slivers = (nc + kNr - 1) / kNr;
  for (size_t jb = 0; jb < slivers; ++jb) {
    const size_t jbase = j0 + jb * kNr;
    const size_t nr = std::min(kNr, j0 + nc - jbase);
    double* dst = out + jb * kc * kNr;
    for (size_t kk = 0; kk < kc; ++kk) {
      const double* src = b + (k0 + kk) * ldb + jbase;
      for (size_t jj = 0; jj < nr; ++jj) dst[jj] = src[jj];
      for (size_t jj = nr; jj < kNr; ++jj) dst[jj] = 0.0;
      dst += kNr;
    }
  }
}

// Computes the MR x nr tile C(i..i+MR, j..j+nr) (+)= A-rows * B-sliver with
// the accumulators held in registers. `a` points at A(i, k0) with leading
// dimension lda; `bp` is a packed kc x kNr sliver; `c` points at C(i, j)
// with leading dimension ldc. When `accumulate` is false the tile is
// overwritten, which is what lets reused (dirty) output buffers work.
// 4-lane double vector (GNU vector extension; the compiler legalizes it on
// any target, one ymm register with AVX). Explicit vectors rather than
// autovectorization because the accumulator tile must stay in registers
// across the k loop — GCC's vectorizer reloads a plain double array from the
// stack every iteration, which costs ~10x throughput on this kernel. Keep the
// natural 32-byte alignment: an aligned(8) variant makes GCC 12 bounce every
// LoadV4 through a stack buffer in 16-byte halves. Unaligned sources are
// still fine — LoadV4/StoreV4 go through memcpy, which the compiler lowers
// to single unaligned vector moves.
using V4 = double __attribute__((vector_size(32)));

inline V4 LoadV4(const double* p) {
  V4 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreV4(double* p, V4 v) { __builtin_memcpy(p, &v, sizeof(v)); }

template <size_t MR>
void MicroKernel(size_t kc, const double* __restrict a, size_t lda,
                 const double* __restrict bp, double* __restrict c, size_t ldc,
                 size_t nr, bool accumulate) {
  V4 acc[MR][2] = {};  // MR x kNr accumulator tile: 2 vectors per row.
  for (size_t k = 0; k < kc; ++k) {
    const V4 b0 = LoadV4(bp + k * kNr);
    const V4 b1 = LoadV4(bp + k * kNr + 4);
    for (size_t r = 0; r < MR; ++r) {
      const double as = a[r * lda + k];
      const V4 av = {as, as, as, as};
      acc[r][0] += av * b0;
      acc[r][1] += av * b1;
    }
  }
  if (nr == kNr) {
    for (size_t r = 0; r < MR; ++r) {
      double* crow = c + r * ldc;
      if (accumulate) {
        StoreV4(crow, LoadV4(crow) + acc[r][0]);
        StoreV4(crow + 4, LoadV4(crow + 4) + acc[r][1]);
      } else {
        StoreV4(crow, acc[r][0]);
        StoreV4(crow + 4, acc[r][1]);
      }
    }
  } else {
    for (size_t r = 0; r < MR; ++r) {
      double tmp[kNr];
      StoreV4(tmp, acc[r][0]);
      StoreV4(tmp + 4, acc[r][1]);
      double* crow = c + r * ldc;
      if (accumulate) {
        for (size_t j = 0; j < nr; ++j) crow[j] += tmp[j];
      } else {
        for (size_t j = 0; j < nr; ++j) crow[j] = tmp[j];
      }
    }
  }
}

void MicroKernelDispatch(size_t mr, size_t kc, const double* a, size_t lda,
                         const double* bp, double* c, size_t ldc, size_t nr,
                         bool accumulate) {
  switch (mr) {
    case 4:
      MicroKernel<4>(kc, a, lda, bp, c, ldc, nr, accumulate);
      break;
    case 3:
      MicroKernel<3>(kc, a, lda, bp, c, ldc, nr, accumulate);
      break;
    case 2:
      MicroKernel<2>(kc, a, lda, bp, c, ldc, nr, accumulate);
      break;
    default:
      MicroKernel<1>(kc, a, lda, bp, c, ldc, nr, accumulate);
      break;
  }
}

// Unblocked ikj loop (the seed kernel), writing rows [rbegin, rend) of C.
void NaiveGemmRows(const double* a, size_t lda, const double* b, size_t ldb,
                   double* c, size_t ldc, size_t rbegin, size_t rend,
                   size_t kdim, size_t n) {
  for (size_t i = rbegin; i < rend; ++i) {
    double* crow = c + i * ldc;
    std::fill(crow, crow + n, 0.0);
    const double* arow = a + i * lda;
    for (size_t p = 0; p < kdim; ++p) {
      const double aip = arow[p];
      if (aip == 0.0) continue;
      Axpy(aip, b + p * ldb, crow, n);
    }
  }
}

// Cache-blocked C = A * B over raw row-major buffers. Each parallel chunk
// owns a disjoint row range of C and packs B panels into a thread-local
// buffer (packing is redundant across chunks but O(k*n) against the chunk's
// O(m*k*n / chunks) compute).
void BlockedGemm(size_t m, size_t n, size_t kdim, const double* a, size_t lda,
                 const double* b, size_t ldb, double* c, size_t ldc,
                 ThreadPool* pool) {
  DMML_COUNTER_INC("la.gemm.blocked_calls");
  const size_t flops_per_row = 2 * kdim * n;
  ParallelForChunks(pool, m, GrainFor(flops_per_row),
                    [&](size_t, size_t ib, size_t ie) {
    thread_local std::vector<double> pack;
    for (size_t j0 = 0; j0 < n; j0 += kNc) {
      const size_t nc = std::min(kNc, n - j0);
      const size_t slivers = (nc + kNr - 1) / kNr;
      for (size_t k0 = 0; k0 < kdim; k0 += kKc) {
        const size_t kc = std::min(kKc, kdim - k0);
        pack.resize(slivers * kc * kNr);
        PackPanelB(b, ldb, k0, kc, j0, nc, pack.data());
        const bool accumulate = k0 != 0;
        for (size_t i = ib; i < ie; i += kMr) {
          const size_t mr = std::min(kMr, ie - i);
          const double* abase = a + i * lda + k0;
          for (size_t jb = 0; jb < slivers; ++jb) {
            const size_t nr = std::min(kNr, nc - jb * kNr);
            MicroKernelDispatch(mr, kc, abase, lda,
                                pack.data() + jb * kc * kNr,
                                c + i * ldc + j0 + jb * kNr, ldc, nr,
                                accumulate);
          }
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Rank-update accumulators (Gram / TransposeMultiply / Gevm / ColumnSums)
// ---------------------------------------------------------------------------

// Upper triangle of Xᵀ X over rows [rbegin, rend), accumulated into the
// d x d row-major buffer g. Rows are consumed four at a time so each loaded
// g-line amortizes four fused multiply-adds.
void AccumulateGramUpper(const DenseMatrix& x, size_t rbegin, size_t rend,
                         double* g) {
  const size_t d = x.cols();
  size_t i = rbegin;
  for (; i + 4 <= rend; i += 4) {
    const double* r0 = x.Row(i);
    const double* r1 = x.Row(i + 1);
    const double* r2 = x.Row(i + 2);
    const double* r3 = x.Row(i + 3);
    for (size_t a = 0; a < d; ++a) {
      const double v0 = r0[a], v1 = r1[a], v2 = r2[a], v3 = r3[a];
      if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
      double* grow = g + a * d;
      for (size_t bcol = a; bcol < d; ++bcol) {
        grow[bcol] += v0 * r0[bcol] + v1 * r1[bcol] + v2 * r2[bcol] + v3 * r3[bcol];
      }
    }
  }
  for (; i < rend; ++i) {
    const double* row = x.Row(i);
    for (size_t a = 0; a < d; ++a) {
      const double v = row[a];
      if (v == 0.0) continue;
      Axpy(v, row + a, g + a * d + a, d - a);
    }
  }
}

// out (d x k, row-major, pre-zeroed) += X[x_offset + i]ᵀ M[i] over window
// rows i in [rbegin, rend), with the same 4-row bundling as the Gramian
// accumulator. `x_offset == 0` with a full range is the classic XᵀM.
void AccumulateTransposeMultiply(const DenseMatrix& x, size_t x_offset,
                                 const DenseMatrix& m, size_t rbegin,
                                 size_t rend, double* out) {
  const size_t d = x.cols(), k = m.cols();
  size_t i = rbegin;
  for (; i + 4 <= rend; i += 4) {
    const double* x0 = x.Row(x_offset + i);
    const double* x1 = x.Row(x_offset + i + 1);
    const double* x2 = x.Row(x_offset + i + 2);
    const double* x3 = x.Row(x_offset + i + 3);
    const double* m0 = m.Row(i);
    const double* m1 = m.Row(i + 1);
    const double* m2 = m.Row(i + 2);
    const double* m3 = m.Row(i + 3);
    for (size_t a = 0; a < d; ++a) {
      const double v0 = x0[a], v1 = x1[a], v2 = x2[a], v3 = x3[a];
      if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
      double* orow = out + a * k;
      for (size_t j = 0; j < k; ++j) {
        orow[j] += v0 * m0[j] + v1 * m1[j] + v2 * m2[j] + v3 * m3[j];
      }
    }
  }
  for (; i < rend; ++i) {
    const double* xr = x.Row(x_offset + i);
    const double* mr = m.Row(i);
    for (size_t a = 0; a < d; ++a) {
      if (xr[a] == 0.0) continue;
      Axpy(xr[a], mr, out + a * k, k);
    }
  }
}

// y (length n, pre-zeroed) += Σ_i x_i * A_i over rows [rbegin, rend); with
// `weights == nullptr` every x_i is 1 (the ColumnSums case).
void AccumulateWeightedRowSum(const DenseMatrix& a, const double* weights,
                              size_t rbegin, size_t rend, double* y) {
  const size_t n = a.cols();
  size_t i = rbegin;
  for (; i + 4 <= rend; i += 4) {
    const double w0 = weights ? weights[i] : 1.0;
    const double w1 = weights ? weights[i + 1] : 1.0;
    const double w2 = weights ? weights[i + 2] : 1.0;
    const double w3 = weights ? weights[i + 3] : 1.0;
    if (w0 == 0.0 && w1 == 0.0 && w2 == 0.0 && w3 == 0.0) continue;
    const double* a0 = a.Row(i);
    const double* a1 = a.Row(i + 1);
    const double* a2 = a.Row(i + 2);
    const double* a3 = a.Row(i + 3);
    for (size_t j = 0; j < n; ++j) {
      y[j] += w0 * a0[j] + w1 * a1[j] + w2 * a2[j] + w3 * a3[j];
    }
  }
  for (; i < rend; ++i) {
    const double w = weights ? weights[i] : 1.0;
    if (w == 0.0) continue;
    Axpy(w, a.Row(i), y, n);
  }
}

// Runs a row-partitioned reduction: each chunk accumulates into a private
// width-sized buffer, partials are then summed into `out` (pre-zeroed).
// `accumulate(chunk_begin, chunk_end, partial)` must only touch its partial.
template <typename AccumulateFn>
void ReduceRows(ThreadPool* pool, size_t rows, size_t grain, size_t width,
                double* out, const AccumulateFn& accumulate) {
  const size_t chunks = ParallelChunkCount(pool, rows, grain);
  if (chunks <= 1) {
    accumulate(size_t{0}, rows, out);
    return;
  }
  DMML_COUNTER_INC("la.parallel.reductions");
  std::vector<double> partials(chunks * width, 0.0);
  ParallelForChunks(pool, rows, grain,
                    [&](size_t chunk, size_t begin, size_t end) {
                      accumulate(begin, end, partials.data() + chunk * width);
                    });
  for (size_t c = 0; c < chunks; ++c) {
    Axpy(1.0, partials.data() + c * width, out, width);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Dense kernels
// ---------------------------------------------------------------------------

void MultiplyInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out,
                  ThreadPool* pool) {
  DMML_CHECK_EQ(a.cols(), b.rows());
  DMML_CHECK(out != &a && out != &b);
  const size_t m = a.rows(), kdim = a.cols(), n = b.cols();
  EnsureOut(out, m, n);
  if (m == 0 || n == 0) return;
  if (kdim == 0) {
    out->Fill(0.0);
    return;
  }
  if (2 * m * n * kdim < kSmallGemmFlops) {
    NaiveGemmRows(a.data(), kdim, b.data(), n, out->data(), n, 0, m, kdim, n);
    return;
  }
  BlockedGemm(m, n, kdim, a.data(), kdim, b.data(), n, out->data(), n, pool);
}

DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b,
                     ThreadPool* pool) {
  DenseMatrix c;
  MultiplyInto(a, b, &c, pool);
  return c;
}

void MultiplyTransposeBInto(const DenseMatrix& a, const DenseMatrix& b,
                            DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK_EQ(a.cols(), b.cols());
  DMML_CHECK(out != &a && out != &b);
  const size_t m = a.rows(), n = b.rows(), kdim = a.cols();
  EnsureOut(out, m, n);
  if (m == 0 || n == 0) return;
  ParallelForChunks(pool, m, GrainFor(2 * kdim * n),
                    [&](size_t, size_t ib, size_t ie) {
    for (size_t i = ib; i < ie; ++i) {
      const double* arow = a.Row(i);
      double* crow = out->Row(i);
      size_t j = 0;
      // Four B rows per pass: each loaded a-element feeds four dots.
      for (; j + 4 <= n; j += 4) {
        const double* b0 = b.Row(j);
        const double* b1 = b.Row(j + 1);
        const double* b2 = b.Row(j + 2);
        const double* b3 = b.Row(j + 3);
        double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
        for (size_t k = 0; k < kdim; ++k) {
          const double av = arow[k];
          d0 += av * b0[k];
          d1 += av * b1[k];
          d2 += av * b2[k];
          d3 += av * b3[k];
        }
        crow[j] = d0;
        crow[j + 1] = d1;
        crow[j + 2] = d2;
        crow[j + 3] = d3;
      }
      for (; j < n; ++j) crow[j] = Dot(arow, b.Row(j), kdim);
    }
  });
}

DenseMatrix MultiplyTransposeB(const DenseMatrix& a, const DenseMatrix& b,
                               ThreadPool* pool) {
  DenseMatrix c;
  MultiplyTransposeBInto(a, b, &c, pool);
  return c;
}

void GramInto(const DenseMatrix& x, DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK(out != &x);
  const size_t n = x.rows(), d = x.cols();
  EnsureOut(out, d, d);
  out->Fill(0.0);
  DMML_COUNTER_INC("la.gram.calls");
  ReduceRows(pool, n, GrainFor(d * d), d * d, out->data(),
             [&x](size_t begin, size_t end, double* g) {
               AccumulateGramUpper(x, begin, end, g);
             });
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a + 1; b < d; ++b) out->At(b, a) = out->At(a, b);
  }
}

DenseMatrix Gram(const DenseMatrix& x, ThreadPool* pool) {
  DenseMatrix g;
  GramInto(x, &g, pool);
  return g;
}

void TransposeMultiplyInto(const DenseMatrix& x, const DenseMatrix& m,
                           DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK_EQ(x.rows(), m.rows());
  DMML_CHECK(out != &x && out != &m);
  const size_t n = x.rows(), d = x.cols(), k = m.cols();
  EnsureOut(out, d, k);
  out->Fill(0.0);
  ReduceRows(pool, n, GrainFor(2 * d * k), d * k, out->data(),
             [&x, &m](size_t begin, size_t end, double* g) {
               AccumulateTransposeMultiply(x, 0, m, begin, end, g);
             });
}

DenseMatrix TransposeMultiply(const DenseMatrix& x, const DenseMatrix& m,
                              ThreadPool* pool) {
  DenseMatrix out;
  TransposeMultiplyInto(x, m, &out, pool);
  return out;
}

void MultiplyRangeInto(const DenseMatrix& a, size_t row_begin, size_t row_end,
                       const DenseMatrix& b, DenseMatrix* out,
                       ThreadPool* pool) {
  DMML_CHECK_EQ(a.cols(), b.rows());
  DMML_CHECK(out != &a && out != &b);
  DMML_CHECK(row_begin <= row_end && row_end <= a.rows());
  const size_t m = row_end - row_begin, kdim = a.cols(), n = b.cols();
  EnsureOut(out, m, n);
  if (m == 0 || n == 0) return;
  if (kdim == 0) {
    out->Fill(0.0);
    return;
  }
  const double* abase = a.data() + row_begin * kdim;
  // Width-independent small-input cutoff (unlike MultiplyInto's): the kernel
  // choice — and with it the per-column floating-point bracketing — must not
  // depend on n, so a k-wide shared-scan epoch stays bit-equal per column to
  // k separate 1-wide epochs over the same window.
  if (2 * m * kdim < kSmallGemmFlops) {
    NaiveGemmRows(abase, kdim, b.data(), n, out->data(), n, 0, m, kdim, n);
    return;
  }
  BlockedGemm(m, n, kdim, abase, kdim, b.data(), n, out->data(), n, pool);
}

void TransposeMultiplyRangeInto(const DenseMatrix& x, size_t row_begin,
                                size_t row_end, const DenseMatrix& m,
                                DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK(row_begin <= row_end && row_end <= x.rows());
  DMML_CHECK_EQ(row_end - row_begin, m.rows());
  DMML_CHECK(out != &x && out != &m);
  const size_t range = row_end - row_begin, d = x.cols(), k = m.cols();
  EnsureOut(out, d, k);
  out->Fill(0.0);
  // Width-independent grain: chunk boundaries (summation bracketing of the
  // partial reduction) match across output widths.
  ReduceRows(pool, range, GrainFor(2 * d), d * k, out->data(),
             [&x, &m, row_begin](size_t begin, size_t end, double* g) {
               AccumulateTransposeMultiply(x, row_begin, m, begin, end, g);
             });
}

void GemvInto(const DenseMatrix& a, const DenseMatrix& x, DenseMatrix* out,
              ThreadPool* pool) {
  DMML_CHECK(x.cols() == 1);
  DMML_CHECK_EQ(a.cols(), x.rows());
  DMML_CHECK(out != &a && out != &x);
  EnsureOut(out, a.rows(), 1);
  const double* xv = x.data();
  ParallelForChunks(pool, a.rows(), GrainFor(2 * a.cols()),
                    [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out->At(i, 0) = Dot(a.Row(i), xv, a.cols());
    }
  });
}

DenseMatrix Gemv(const DenseMatrix& a, const DenseMatrix& x, ThreadPool* pool) {
  DenseMatrix y;
  GemvInto(a, x, &y, pool);
  return y;
}

void GevmInto(const DenseMatrix& x, const DenseMatrix& a, DenseMatrix* out,
              ThreadPool* pool) {
  DMML_CHECK(x.cols() == 1);
  DMML_CHECK_EQ(a.rows(), x.rows());
  DMML_CHECK(out != &a && out != &x);
  EnsureOut(out, 1, a.cols());
  out->Fill(0.0);
  ReduceRows(pool, a.rows(), GrainFor(2 * a.cols()), a.cols(), out->data(),
             [&a, &x](size_t begin, size_t end, double* y) {
               AccumulateWeightedRowSum(a, x.data(), begin, end, y);
             });
}

DenseMatrix Gevm(const DenseMatrix& x, const DenseMatrix& a, ThreadPool* pool) {
  DenseMatrix y;
  GevmInto(x, a, &y, pool);
  return y;
}

void TransposeInto(const DenseMatrix& a, DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK(out != &a);
  const size_t m = a.rows(), n = a.cols();
  EnsureOut(out, n, m);
  if (m == 0 || n == 0) return;
  // Chunks own disjoint output-row (input-column) ranges; tiles of
  // kTransposeTile² keep both the strided reads and contiguous writes within
  // a few cache lines.
  ParallelForChunks(pool, n, GrainFor(2 * m),
                    [&](size_t, size_t jb, size_t je) {
    for (size_t j0 = jb; j0 < je; j0 += kTransposeTile) {
      const size_t jlim = std::min(j0 + kTransposeTile, je);
      for (size_t i0 = 0; i0 < m; i0 += kTransposeTile) {
        const size_t ilim = std::min(i0 + kTransposeTile, m);
        for (size_t j = j0; j < jlim; ++j) {
          double* trow = out->Row(j);
          for (size_t i = i0; i < ilim; ++i) trow[i] = a.At(i, j);
        }
      }
    }
  });
}

DenseMatrix Transpose(const DenseMatrix& a, ThreadPool* pool) {
  DenseMatrix t;
  TransposeInto(a, &t, pool);
  return t;
}

namespace {
void ZipInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out,
             double (*op)(double, double)) {
  DMML_CHECK_EQ(a.rows(), b.rows());
  DMML_CHECK_EQ(a.cols(), b.cols());
  EnsureOut(out, a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = out->data();
  for (size_t i = 0; i < a.size(); ++i) pc[i] = op(pa[i], pb[i]);
}
}  // namespace

void AddInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out) {
  ZipInto(a, b, out, [](double x, double y) { return x + y; });
}

void SubtractInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out) {
  ZipInto(a, b, out, [](double x, double y) { return x - y; });
}

void ElementwiseMultiplyInto(const DenseMatrix& a, const DenseMatrix& b,
                             DenseMatrix* out) {
  ZipInto(a, b, out, [](double x, double y) { return x * y; });
}

DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c;
  AddInto(a, b, &c);
  return c;
}

DenseMatrix Subtract(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c;
  SubtractInto(a, b, &c);
  return c;
}

DenseMatrix ElementwiseMultiply(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c;
  ElementwiseMultiplyInto(a, b, &c);
  return c;
}

void ScaleColumnsInto(const DenseMatrix& a, const DenseMatrix& s,
                      DenseMatrix* out) {
  DMML_CHECK_EQ(s.rows(), size_t{1});
  DMML_CHECK_EQ(s.cols(), a.cols());
  EnsureOut(out, a.rows(), a.cols());
  const size_t n = a.cols();
  const double* sv = s.data();
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    double* crow = out->Row(i);
    for (size_t j = 0; j < n; ++j) crow[j] = arow[j] * sv[j];
  }
}

DenseMatrix ScaleColumns(const DenseMatrix& a, const DenseMatrix& s) {
  DenseMatrix c;
  ScaleColumnsInto(a, s, &c);
  return c;
}

void ScaleInto(const DenseMatrix& a, double alpha, DenseMatrix* out) {
  EnsureOut(out, a.rows(), a.cols());
  const double* pa = a.data();
  double* pc = out->data();
  for (size_t i = 0; i < a.size(); ++i) pc[i] = alpha * pa[i];
}

DenseMatrix Scale(const DenseMatrix& a, double alpha) {
  DenseMatrix c;
  ScaleInto(a, alpha, &c);
  return c;
}

void AddScalarInto(const DenseMatrix& a, double alpha, DenseMatrix* out) {
  EnsureOut(out, a.rows(), a.cols());
  const double* pa = a.data();
  double* pc = out->data();
  for (size_t i = 0; i < a.size(); ++i) pc[i] = pa[i] + alpha;
}

DenseMatrix AddScalar(const DenseMatrix& a, double alpha) {
  DenseMatrix c;
  AddScalarInto(a, alpha, &c);
  return c;
}

void MapInto(const DenseMatrix& a, const std::function<double(double)>& fn,
             DenseMatrix* out) {
  EnsureOut(out, a.rows(), a.cols());
  const double* pa = a.data();
  double* pc = out->data();
  for (size_t i = 0; i < a.size(); ++i) pc[i] = fn(pa[i]);
}

DenseMatrix Map(const DenseMatrix& a, const std::function<double(double)>& fn) {
  DenseMatrix c;
  MapInto(a, fn, &c);
  return c;
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void AxpyInto(double alpha, const DenseMatrix& x, DenseMatrix* y) {
  DMML_CHECK_EQ(x.rows(), y->rows());
  DMML_CHECK_EQ(x.cols(), y->cols());
  Axpy(alpha, x.data(), y->data(), x.size());
}

double Dot(const double* x, const double* y, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double Dot(const DenseMatrix& x, const DenseMatrix& y) {
  DMML_CHECK(x.IsVector());
  DMML_CHECK(y.IsVector());
  DMML_CHECK_EQ(x.size(), y.size());
  return Dot(x.data(), y.data(), x.size());
}

namespace {
// Scalar reduction over the flat buffer with per-chunk partials.
template <typename Fn>
double ReduceScalar(const DenseMatrix& a, ThreadPool* pool, const Fn& fn) {
  const size_t n = a.size();
  const size_t chunks = ParallelChunkCount(pool, n, kMinWorkPerChunk);
  if (chunks <= 1) return fn(a.data(), a.data() + n);
  DMML_COUNTER_INC("la.parallel.reductions");
  std::vector<double> partials(chunks, 0.0);
  ParallelForChunks(pool, n, kMinWorkPerChunk,
                    [&](size_t chunk, size_t begin, size_t end) {
                      partials[chunk] = fn(a.data() + begin, a.data() + end);
                    });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}
}  // namespace

double Sum(const DenseMatrix& a, ThreadPool* pool) {
  return ReduceScalar(a, pool, [](const double* begin, const double* end) {
    double acc = 0.0;
    for (const double* p = begin; p < end; ++p) acc += *p;
    return acc;
  });
}

double FrobeniusNorm(const DenseMatrix& a, ThreadPool* pool) {
  return std::sqrt(
      ReduceScalar(a, pool, [](const double* begin, const double* end) {
        double acc = 0.0;
        for (const double* p = begin; p < end; ++p) acc += *p * *p;
        return acc;
      }));
}

void ColumnSumsInto(const DenseMatrix& a, DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK(out != &a);
  EnsureOut(out, 1, a.cols());
  out->Fill(0.0);
  ReduceRows(pool, a.rows(), GrainFor(a.cols()), a.cols(), out->data(),
             [&a](size_t begin, size_t end, double* y) {
               AccumulateWeightedRowSum(a, nullptr, begin, end, y);
             });
}

DenseMatrix ColumnSums(const DenseMatrix& a, ThreadPool* pool) {
  DenseMatrix s;
  ColumnSumsInto(a, &s, pool);
  return s;
}

void RowSumsInto(const DenseMatrix& a, DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK(out != &a);
  EnsureOut(out, a.rows(), 1);
  ParallelForChunks(pool, a.rows(), GrainFor(a.cols()),
                    [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double acc = 0.0;
      const double* row = a.Row(i);
      for (size_t j = 0; j < a.cols(); ++j) acc += row[j];
      out->At(i, 0) = acc;
    }
  });
}

DenseMatrix RowSums(const DenseMatrix& a, ThreadPool* pool) {
  DenseMatrix s;
  RowSumsInto(a, &s, pool);
  return s;
}

double RowSquaredDistance(const DenseMatrix& a, size_t r1, const DenseMatrix& b,
                          size_t r2) {
  DMML_CHECK_EQ(a.cols(), b.cols());
  const double* x = a.Row(r1);
  const double* y = b.Row(r2);
  double acc = 0.0;
  for (size_t j = 0; j < a.cols(); ++j) {
    double d = x[j] - y[j];
    acc += d * d;
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Sparse kernels
// ---------------------------------------------------------------------------

namespace {
// Average nnz per row, used as the per-item work estimate for CSR kernels.
size_t SparseRowWork(const SparseMatrix& a) {
  return a.rows() ? std::max<size_t>(1, 2 * a.nnz() / a.rows()) : 1;
}
}  // namespace

void SparseGemvInto(const SparseMatrix& a, const DenseMatrix& x,
                    DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK(x.cols() == 1);
  DMML_CHECK_EQ(a.cols(), x.rows());
  EnsureOut(out, a.rows(), 1);
  DenseMatrix& y = *out;
  const double* xv = x.data();
  ParallelForChunks(pool, a.rows(), GrainFor(SparseRowWork(a)),
                    [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double acc = 0.0;
      for (size_t k = a.RowBegin(i); k < a.RowEnd(i); ++k) {
        acc += a.values()[k] * xv[a.col_idx()[k]];
      }
      y.At(i, 0) = acc;
    }
  });
}

DenseMatrix SparseGemv(const SparseMatrix& a, const DenseMatrix& x,
                       ThreadPool* pool) {
  DenseMatrix y;
  SparseGemvInto(a, x, &y, pool);
  return y;
}

void SparseGevmInto(const DenseMatrix& x, const SparseMatrix& a,
                    DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK(x.cols() == 1);
  DMML_CHECK_EQ(a.rows(), x.rows());
  EnsureOut(out, 1, a.cols());
  out->Fill(0.0);  // ReduceRows accumulates into a pre-zeroed output.
  ReduceRows(pool, a.rows(), GrainFor(SparseRowWork(a)), a.cols(), out->data(),
             [&a, &x](size_t begin, size_t end, double* yv) {
               for (size_t i = begin; i < end; ++i) {
                 const double xi = x.data()[i];
                 if (xi == 0.0) continue;
                 for (size_t k = a.RowBegin(i); k < a.RowEnd(i); ++k) {
                   yv[a.col_idx()[k]] += xi * a.values()[k];
                 }
               }
             });
}

DenseMatrix SparseGevm(const DenseMatrix& x, const SparseMatrix& a,
                       ThreadPool* pool) {
  DenseMatrix y;
  SparseGevmInto(x, a, &y, pool);
  return y;
}

void SparseMultiplyDenseInto(const SparseMatrix& a, const DenseMatrix& b,
                             DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK_EQ(a.cols(), b.rows());
  EnsureOut(out, a.rows(), b.cols());
  out->Fill(0.0);
  DenseMatrix& c = *out;
  ParallelForChunks(pool, a.rows(), GrainFor(SparseRowWork(a) * b.cols()),
                    [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double* crow = c.Row(i);
      for (size_t k = a.RowBegin(i); k < a.RowEnd(i); ++k) {
        Axpy(a.values()[k], b.Row(a.col_idx()[k]), crow, b.cols());
      }
    }
  });
}

DenseMatrix SparseMultiplyDense(const SparseMatrix& a, const DenseMatrix& b,
                                ThreadPool* pool) {
  DenseMatrix c;
  SparseMultiplyDenseInto(a, b, &c, pool);
  return c;
}

void SparseMultiplyDenseRangeInto(const SparseMatrix& a, size_t row_begin,
                                  size_t row_end, const DenseMatrix& b,
                                  DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK_EQ(a.cols(), b.rows());
  DMML_CHECK(row_begin <= row_end && row_end <= a.rows());
  const size_t range = row_end - row_begin;
  EnsureOut(out, range, b.cols());
  out->Fill(0.0);
  DenseMatrix& c = *out;
  // Width-independent grain, matching the ranged dense kernels; chunks own
  // disjoint output rows so chunking never affects the summation order.
  ParallelForChunks(pool, range, GrainFor(SparseRowWork(a)),
                    [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double* crow = c.Row(i);
      const size_t src = row_begin + i;
      for (size_t k = a.RowBegin(src); k < a.RowEnd(src); ++k) {
        Axpy(a.values()[k], b.Row(a.col_idx()[k]), crow, b.cols());
      }
    }
  });
}

void SparseTransposeMultiplyRangeInto(const SparseMatrix& a, size_t row_begin,
                                      size_t row_end, const DenseMatrix& m,
                                      DenseMatrix* out, ThreadPool* pool) {
  DMML_CHECK(row_begin <= row_end && row_end <= a.rows());
  DMML_CHECK_EQ(row_end - row_begin, m.rows());
  const size_t range = row_end - row_begin, d = a.cols(), k = m.cols();
  EnsureOut(out, d, k);
  out->Fill(0.0);
  ReduceRows(pool, range, GrainFor(SparseRowWork(a)), d * k, out->data(),
             [&a, &m, row_begin, k](size_t begin, size_t end, double* g) {
               for (size_t i = begin; i < end; ++i) {
                 const double* mr = m.Row(i);
                 const size_t src = row_begin + i;
                 for (size_t p = a.RowBegin(src); p < a.RowEnd(src); ++p) {
                   Axpy(a.values()[p], mr, g + a.col_idx()[p] * k, k);
                 }
               }
             });
}

double SparseSum(const SparseMatrix& a) {
  double acc = 0.0;
  for (double v : a.values()) acc += v;
  return acc;
}

void SparseRowSumsInto(const SparseMatrix& a, DenseMatrix* out) {
  EnsureOut(out, a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (size_t k = a.RowBegin(r); k < a.RowEnd(r); ++k) acc += a.values()[k];
    out->At(r, 0) = acc;
  }
}

void SparseColumnSumsInto(const SparseMatrix& a, DenseMatrix* out) {
  EnsureOut(out, 1, a.cols());
  out->Fill(0.0);
  double* acc = out->data();
  for (size_t k = 0; k < a.nnz(); ++k) acc[a.col_idx()[k]] += a.values()[k];
}

void SparseRowSquaredNormsInto(const SparseMatrix& a, DenseMatrix* out) {
  EnsureOut(out, a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (size_t k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
      acc += a.values()[k] * a.values()[k];
    }
    out->At(r, 0) = acc;
  }
}

SparseMatrix SparseTranspose(const SparseMatrix& a) {
  // Two-pass counting transpose (CSR -> CSC reinterpretation): count entries
  // per output row, prefix-sum into offsets, then scatter. Input rows are
  // walked in order, so each output row receives its columns already sorted.
  const size_t nnz = a.nnz();
  std::vector<size_t> row_ptr(a.cols() + 1, 0);
  for (size_t k = 0; k < nnz; ++k) row_ptr[a.col_idx()[k] + 1]++;
  for (size_t c = 0; c < a.cols(); ++c) row_ptr[c + 1] += row_ptr[c];

  std::vector<uint32_t> col_idx(nnz);
  std::vector<double> values(nnz);
  std::vector<size_t> next = row_ptr;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
      const size_t slot = next[a.col_idx()[k]]++;
      col_idx[slot] = static_cast<uint32_t>(r);
      values[slot] = a.values()[k];
    }
  }
  return SparseMatrix::FromCsr(a.cols(), a.rows(), std::move(row_ptr),
                               std::move(col_idx), std::move(values));
}

// ---------------------------------------------------------------------------
// Naive reference kernels
// ---------------------------------------------------------------------------

namespace reference {

DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b) {
  DMML_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  DenseMatrix c(m, n);
  if (m == 0 || n == 0 || k == 0) return c;
  NaiveGemmRows(a.data(), k, b.data(), n, c.data(), n, 0, m, k, n);
  return c;
}

DenseMatrix Transpose(const DenseMatrix& a) {
  DenseMatrix t(a.cols(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.Row(i);
    for (size_t j = 0; j < a.cols(); ++j) t.At(j, i) = row[j];
  }
  return t;
}

DenseMatrix Gram(const DenseMatrix& x) {
  return reference::Multiply(reference::Transpose(x), x);
}

DenseMatrix TransposeMultiply(const DenseMatrix& x, const DenseMatrix& m) {
  return reference::Multiply(reference::Transpose(x), m);
}

DenseMatrix MultiplyTransposeB(const DenseMatrix& a, const DenseMatrix& b) {
  return reference::Multiply(a, reference::Transpose(b));
}

DenseMatrix Gevm(const DenseMatrix& x, const DenseMatrix& a) {
  DMML_CHECK(x.cols() == 1);
  DMML_CHECK_EQ(a.rows(), x.rows());
  DenseMatrix y(1, a.cols());
  double* yv = y.data();
  for (size_t i = 0; i < a.rows(); ++i) {
    const double xi = x.data()[i];
    if (xi == 0.0) continue;
    Axpy(xi, a.Row(i), yv, a.cols());
  }
  return y;
}

DenseMatrix ColumnSums(const DenseMatrix& a) {
  DenseMatrix s(1, a.cols());
  for (size_t i = 0; i < a.rows(); ++i) Axpy(1.0, a.Row(i), s.data(), a.cols());
  return s;
}

double Sum(const DenseMatrix& a) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  return acc;
}

double FrobeniusNorm(const DenseMatrix& a) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a.data()[i] * a.data()[i];
  return std::sqrt(acc);
}

DenseMatrix SparseGevm(const DenseMatrix& x, const SparseMatrix& a) {
  DMML_CHECK(x.cols() == 1);
  DMML_CHECK_EQ(a.rows(), x.rows());
  DenseMatrix y(1, a.cols());
  double* yv = y.data();
  for (size_t i = 0; i < a.rows(); ++i) {
    const double xi = x.data()[i];
    if (xi == 0.0) continue;
    for (size_t k = a.RowBegin(i); k < a.RowEnd(i); ++k) {
      yv[a.col_idx()[k]] += xi * a.values()[k];
    }
  }
  return y;
}

SparseMatrix SparseTranspose(const SparseMatrix& a) {
  std::vector<Triplet> triplets;
  triplets.reserve(a.nnz());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
      triplets.push_back({a.col_idx()[k], r, a.values()[k]});
    }
  }
  return SparseMatrix::FromTriplets(a.cols(), a.rows(), std::move(triplets));
}

}  // namespace reference

}  // namespace dmml::la
