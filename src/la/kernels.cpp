#include "la/kernels.h"

#include <cmath>

#include "util/logging.h"

namespace dmml::la {

DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b, ThreadPool* pool) {
  DMML_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  DenseMatrix c(m, n);
  ParallelFor(pool, m, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double* crow = c.Row(i);
      const double* arow = a.Row(i);
      for (size_t p = 0; p < k; ++p) {
        const double aip = arow[p];
        if (aip == 0.0) continue;
        const double* brow = b.Row(p);
        for (size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
      }
    }
  });
  return c;
}

DenseMatrix Gemv(const DenseMatrix& a, const DenseMatrix& x, ThreadPool* pool) {
  DMML_CHECK(x.cols() == 1);
  DMML_CHECK_EQ(a.cols(), x.rows());
  DenseMatrix y(a.rows(), 1);
  const double* xv = x.data();
  ParallelFor(pool, a.rows(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      y.At(i, 0) = Dot(a.Row(i), xv, a.cols());
    }
  });
  return y;
}

DenseMatrix Gevm(const DenseMatrix& x, const DenseMatrix& a, ThreadPool* pool) {
  (void)pool;  // Row-accumulating; parallel version would need private buffers.
  DMML_CHECK(x.cols() == 1);
  DMML_CHECK_EQ(a.rows(), x.rows());
  DenseMatrix y(1, a.cols());
  double* yv = y.data();
  for (size_t i = 0; i < a.rows(); ++i) {
    const double xi = x.data()[i];
    if (xi == 0.0) continue;
    Axpy(xi, a.Row(i), yv, a.cols());
  }
  return y;
}

DenseMatrix Transpose(const DenseMatrix& a) {
  DenseMatrix t(a.cols(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.Row(i);
    for (size_t j = 0; j < a.cols(); ++j) t.At(j, i) = row[j];
  }
  return t;
}

namespace {
DenseMatrix Zip(const DenseMatrix& a, const DenseMatrix& b,
                double (*op)(double, double)) {
  DMML_CHECK_EQ(a.rows(), b.rows());
  DMML_CHECK_EQ(a.cols(), b.cols());
  DenseMatrix c(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  for (size_t i = 0; i < a.size(); ++i) pc[i] = op(pa[i], pb[i]);
  return c;
}
}  // namespace

DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b) {
  return Zip(a, b, [](double x, double y) { return x + y; });
}

DenseMatrix Subtract(const DenseMatrix& a, const DenseMatrix& b) {
  return Zip(a, b, [](double x, double y) { return x - y; });
}

DenseMatrix ElementwiseMultiply(const DenseMatrix& a, const DenseMatrix& b) {
  return Zip(a, b, [](double x, double y) { return x * y; });
}

DenseMatrix Scale(const DenseMatrix& a, double alpha) {
  DenseMatrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) c.data()[i] = alpha * a.data()[i];
  return c;
}

DenseMatrix AddScalar(const DenseMatrix& a, double alpha) {
  DenseMatrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] + alpha;
  return c;
}

DenseMatrix Map(const DenseMatrix& a, const std::function<double(double)>& fn) {
  DenseMatrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) c.data()[i] = fn(a.data()[i]);
  return c;
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double Dot(const double* x, const double* y, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double Dot(const DenseMatrix& x, const DenseMatrix& y) {
  DMML_CHECK(x.IsVector());
  DMML_CHECK(y.IsVector());
  DMML_CHECK_EQ(x.size(), y.size());
  return Dot(x.data(), y.data(), x.size());
}

double Sum(const DenseMatrix& a) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  return acc;
}

DenseMatrix ColumnSums(const DenseMatrix& a) {
  DenseMatrix s(1, a.cols());
  for (size_t i = 0; i < a.rows(); ++i) Axpy(1.0, a.Row(i), s.data(), a.cols());
  return s;
}

DenseMatrix RowSums(const DenseMatrix& a) {
  DenseMatrix s(a.rows(), 1);
  for (size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    const double* row = a.Row(i);
    for (size_t j = 0; j < a.cols(); ++j) acc += row[j];
    s.At(i, 0) = acc;
  }
  return s;
}

double FrobeniusNorm(const DenseMatrix& a) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a.data()[i] * a.data()[i];
  return std::sqrt(acc);
}

double RowSquaredDistance(const DenseMatrix& a, size_t r1, const DenseMatrix& b,
                          size_t r2) {
  DMML_CHECK_EQ(a.cols(), b.cols());
  const double* x = a.Row(r1);
  const double* y = b.Row(r2);
  double acc = 0.0;
  for (size_t j = 0; j < a.cols(); ++j) {
    double d = x[j] - y[j];
    acc += d * d;
  }
  return acc;
}

DenseMatrix SparseGemv(const SparseMatrix& a, const DenseMatrix& x, ThreadPool* pool) {
  DMML_CHECK(x.cols() == 1);
  DMML_CHECK_EQ(a.cols(), x.rows());
  DenseMatrix y(a.rows(), 1);
  const double* xv = x.data();
  ParallelFor(pool, a.rows(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double acc = 0.0;
      for (size_t k = a.RowBegin(i); k < a.RowEnd(i); ++k) {
        acc += a.values()[k] * xv[a.col_idx()[k]];
      }
      y.At(i, 0) = acc;
    }
  });
  return y;
}

DenseMatrix SparseGevm(const DenseMatrix& x, const SparseMatrix& a) {
  DMML_CHECK(x.cols() == 1);
  DMML_CHECK_EQ(a.rows(), x.rows());
  DenseMatrix y(1, a.cols());
  double* yv = y.data();
  for (size_t i = 0; i < a.rows(); ++i) {
    const double xi = x.data()[i];
    if (xi == 0.0) continue;
    for (size_t k = a.RowBegin(i); k < a.RowEnd(i); ++k) {
      yv[a.col_idx()[k]] += xi * a.values()[k];
    }
  }
  return y;
}

DenseMatrix SparseMultiplyDense(const SparseMatrix& a, const DenseMatrix& b,
                                ThreadPool* pool) {
  DMML_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix c(a.rows(), b.cols());
  ParallelFor(pool, a.rows(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double* crow = c.Row(i);
      for (size_t k = a.RowBegin(i); k < a.RowEnd(i); ++k) {
        Axpy(a.values()[k], b.Row(a.col_idx()[k]), crow, b.cols());
      }
    }
  });
  return c;
}

SparseMatrix SparseTranspose(const SparseMatrix& a) {
  std::vector<Triplet> triplets;
  triplets.reserve(a.nnz());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
      triplets.push_back({a.col_idx()[k], r, a.values()[k]});
    }
  }
  return SparseMatrix::FromTriplets(a.cols(), a.rows(), std::move(triplets));
}

}  // namespace dmml::la
