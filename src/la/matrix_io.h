/// \file matrix_io.h
/// \brief Matrix persistence: a small binary format plus CSV interop.
#ifndef DMML_LA_MATRIX_IO_H_
#define DMML_LA_MATRIX_IO_H_

#include <string>

#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "util/result.h"

namespace dmml::la {

/// \brief Writes a dense matrix as "DMM1" binary: magic, rows, cols,
/// row-major float64 payload (host endianness).
Status SaveDenseMatrix(const DenseMatrix& m, const std::string& path);

/// \brief Reads a matrix written by SaveDenseMatrix, validating the header.
Result<DenseMatrix> LoadDenseMatrix(const std::string& path);

/// \brief Writes a CSR matrix as "DMS1" binary: magic, rows, cols, nnz,
/// row_ptr, col_idx, values.
Status SaveSparseMatrix(const SparseMatrix& m, const std::string& path);

/// \brief Reads a matrix written by SaveSparseMatrix.
Result<SparseMatrix> LoadSparseMatrix(const std::string& path);

/// \brief Writes a dense matrix as headerless CSV (one row per line).
Status SaveDenseMatrixCsv(const DenseMatrix& m, const std::string& path);

/// \brief Reads a headerless numeric CSV into a dense matrix; all rows must
/// have equal width.
Result<DenseMatrix> LoadDenseMatrixCsv(const std::string& path);

}  // namespace dmml::la

#endif  // DMML_LA_MATRIX_IO_H_
