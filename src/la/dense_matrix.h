/// \file dense_matrix.h
/// \brief Row-major dense double matrix — the workhorse value type of dmml.
#ifndef DMML_LA_DENSE_MATRIX_H_
#define DMML_LA_DENSE_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/result.h"

namespace dmml::la {

/// \brief A dense, row-major matrix of doubles.
///
/// Vectors are represented as n x 1 (column vector) or 1 x n (row vector)
/// matrices. Storage is contiguous; element (i, j) lives at data()[i*cols+j].
class DenseMatrix {
 public:
  /// Empty 0x0 matrix.
  DenseMatrix() = default;

  /// Zero-initialized rows x cols matrix.
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with `fill`.
  DenseMatrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Takes ownership of `data` (size must be rows*cols).
  DenseMatrix(size_t rows, size_t cols, std::vector<double> data);

  /// Construction from nested initializer lists: {{1,2},{3,4}}.
  DenseMatrix(std::initializer_list<std::initializer_list<double>> init);

  /// \brief n x 1 column vector from values.
  static DenseMatrix ColumnVector(std::vector<double> values);

  /// \brief 1 x n row vector from values.
  static DenseMatrix RowVector(std::vector<double> values);

  /// \brief n x n identity.
  static DenseMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// \brief True iff this is a column or row vector (or 1x1).
  bool IsVector() const { return rows_ == 1 || cols_ == 1; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// \brief Pointer to the start of row `r`.
  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  /// \brief Copies rows [begin, end) into a new matrix.
  DenseMatrix SliceRows(size_t begin, size_t end) const;

  /// \brief Copies columns [begin, end) into a new matrix.
  DenseMatrix SliceCols(size_t begin, size_t end) const;

  /// \brief Copies column c as an n x 1 vector.
  DenseMatrix Column(size_t c) const;

  /// \brief Sets every element to `v`.
  void Fill(double v);

  /// \brief Re-shapes to rows x cols for a kernel that will overwrite every
  /// element. Reuses the existing allocation whenever the new element count
  /// fits its capacity (contents are then unspecified, not zeroed). Returns
  /// true iff no allocation occurred — the "Into" kernels use this to count
  /// buffer reuses vs. fresh allocations.
  bool Reshape(size_t rows, size_t cols);

  /// \brief Exact element-wise equality.
  bool operator==(const DenseMatrix& other) const;

  /// \brief Element-wise equality within `tol` (absolute).
  bool ApproxEquals(const DenseMatrix& other, double tol = 1e-9) const;

  /// \brief Debug rendering, e.g. "[[1, 2], [3, 4]]".
  std::string ToString(size_t max_rows = 8, size_t max_cols = 8) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace dmml::la

#endif  // DMML_LA_DENSE_MATRIX_H_
