/// \file sparse_matrix.h
/// \brief CSR (compressed sparse row) matrix.
#ifndef DMML_LA_SPARSE_MATRIX_H_
#define DMML_LA_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"

namespace dmml::la {

/// \brief One (column, value) entry of a sparse row.
struct SparseEntry {
  uint32_t col;
  double value;
};

/// \brief Builder-friendly triplet (COO) representation.
struct Triplet {
  size_t row;
  size_t col;
  double value;
};

/// \brief Immutable CSR sparse matrix of doubles.
///
/// Column indices within each row are strictly increasing. Explicit zeros are
/// allowed but the builders drop them.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// \brief Builds from triplets; duplicates are summed, zeros dropped.
  static SparseMatrix FromTriplets(size_t rows, size_t cols,
                                   std::vector<Triplet> triplets);

  /// \brief Converts a dense matrix, dropping entries with |v| <= tol.
  static SparseMatrix FromDense(const DenseMatrix& dense, double tol = 0.0);

  /// \brief Adopts ready-made CSR arrays. `row_ptr` must have rows+1
  /// monotonically non-decreasing offsets ending at col_idx.size(), and
  /// column indices must be strictly increasing within each row — builders
  /// that construct CSR directly (e.g. the counting transpose) use this to
  /// skip the triplet sort.
  static SparseMatrix FromCsr(size_t rows, size_t cols,
                              std::vector<size_t> row_ptr,
                              std::vector<uint32_t> col_idx,
                              std::vector<double> values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// \brief Number of stored entries.
  size_t nnz() const { return values_.size(); }

  /// \brief nnz / (rows*cols); 0 for an empty matrix.
  double Density() const {
    size_t cells = rows_ * cols_;
    return cells ? static_cast<double>(nnz()) / static_cast<double>(cells) : 0.0;
  }

  /// \brief Start offset of row r within col_idx()/values().
  size_t RowBegin(size_t r) const { return row_ptr_[r]; }
  size_t RowEnd(size_t r) const { return row_ptr_[r + 1]; }

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// \brief Element lookup by binary search within the row. O(log nnz(row)).
  double At(size_t r, size_t c) const;

  /// \brief Materializes to dense.
  DenseMatrix ToDense() const;

  bool operator==(const SparseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
           values_ == other.values_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> row_ptr_{0};
  std::vector<uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace dmml::la

#endif  // DMML_LA_SPARSE_MATRIX_H_
