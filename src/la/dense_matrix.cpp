#include "la/dense_matrix.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace dmml::la {

DenseMatrix::DenseMatrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  DMML_CHECK_EQ(rows_ * cols_, data_.size());
}

DenseMatrix::DenseMatrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    DMML_CHECK_EQ(row.size(), cols_);
    for (double v : row) data_.push_back(v);
  }
}

DenseMatrix DenseMatrix::ColumnVector(std::vector<double> values) {
  size_t n = values.size();
  return DenseMatrix(n, 1, std::move(values));
}

DenseMatrix DenseMatrix::RowVector(std::vector<double> values) {
  size_t n = values.size();
  return DenseMatrix(1, n, std::move(values));
}

DenseMatrix DenseMatrix::Identity(size_t n) {
  DenseMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::SliceRows(size_t begin, size_t end) const {
  DMML_CHECK_LE(begin, end);
  DMML_CHECK_LE(end, rows_);
  DenseMatrix out(end - begin, cols_);
  std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
            out.data_.begin());
  return out;
}

DenseMatrix DenseMatrix::SliceCols(size_t begin, size_t end) const {
  DMML_CHECK_LE(begin, end);
  DMML_CHECK_LE(end, cols_);
  DenseMatrix out(rows_, end - begin);
  for (size_t r = 0; r < rows_; ++r) {
    std::copy(Row(r) + begin, Row(r) + end, out.Row(r));
  }
  return out;
}

DenseMatrix DenseMatrix::Column(size_t c) const {
  DMML_CHECK_LT(c, cols_);
  DenseMatrix out(rows_, 1);
  for (size_t r = 0; r < rows_; ++r) out.At(r, 0) = At(r, c);
  return out;
}

void DenseMatrix::Fill(double v) {
  std::fill(data_.begin(), data_.end(), v);
}

bool DenseMatrix::Reshape(size_t rows, size_t cols) {
  const size_t need = rows * cols;
  const bool reused = need <= data_.capacity();
  rows_ = rows;
  cols_ = cols;
  data_.resize(need);
  return reused;
}

bool DenseMatrix::operator==(const DenseMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

bool DenseMatrix::ApproxEquals(const DenseMatrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string DenseMatrix::ToString(size_t max_rows, size_t max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (size_t r = 0; r < std::min(rows_, max_rows); ++r) {
    if (r) os << ", ";
    os << "[";
    for (size_t c = 0; c < std::min(cols_, max_cols); ++c) {
      if (c) os << ", ";
      os << At(r, c);
    }
    if (cols_ > max_cols) os << ", ...";
    os << "]";
  }
  if (rows_ > max_rows) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace dmml::la
