/// \file ole_group.h
/// \brief Offset-list encoding: per-dictionary-entry row index lists,
/// zero-suppressed. Best on sparse or heavily-skewed columns.
#ifndef DMML_CLA_OLE_GROUP_H_
#define DMML_CLA_OLE_GROUP_H_

#include "cla/column_group.h"

namespace dmml::cla {

/// \brief OLE column group: dictionary + per-entry sorted offset lists.
/// Rows whose tuple is all-zero appear in no list (zero suppression), so the
/// storage cost is proportional to the number of non-zero rows.
class OleGroup : public ColumnGroup {
 public:
  OleGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns);

  GroupFormat format() const override { return GroupFormat::kOle; }
  size_t SizeInBytes() const override;
  void Decompress(la::DenseMatrix* out) const override;
  void MultiplyVector(const double* v, double* y, size_t n) const override;
  void VectorMultiply(const double* u, size_t n, double* out) const override;
  double Sum() const override;
  void AddRowSquaredNorms(double* out, size_t n) const override;
  size_t DictionarySize() const override { return dict_.num_entries(); }

  /// \brief Exact size this encoding would use given stats.
  static size_t EstimateSize(size_t num_nonzero_rows, size_t cardinality,
                             size_t width);

 private:
  size_t n_ = 0;
  GroupDictionary dict_;              ///< Non-zero tuples only.
  std::vector<std::vector<uint32_t>> offsets_;  ///< One list per dict entry.
};

}  // namespace dmml::cla

#endif  // DMML_CLA_OLE_GROUP_H_
