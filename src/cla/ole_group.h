/// \file ole_group.h
/// \brief Offset-list encoding: per-dictionary-entry row index lists,
/// zero-suppressed. Best on sparse or heavily-skewed columns.
#ifndef DMML_CLA_OLE_GROUP_H_
#define DMML_CLA_OLE_GROUP_H_

#include "cla/column_group.h"

namespace dmml::cla {

/// \brief OLE column group: dictionary + per-entry sorted offset lists.
/// Rows whose tuple is all-zero appear in no list (zero suppression), so the
/// storage cost is proportional to the number of non-zero rows.
///
/// The lists are stored flattened (CSR layout: one offset array plus per-entry
/// begin positions). Because each list is sorted, a ranged kernel seeks to
/// row_begin with one binary search per entry — O(card · log nnz) seek cost
/// instead of scanning every offset from row 0.
class OleGroup : public ColumnGroup {
 public:
  OleGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns);

  GroupFormat format() const override { return GroupFormat::kOle; }
  size_t SizeInBytes() const override;
  size_t DictionarySize() const override { return dict_.num_entries(); }

  void DecompressRange(la::DenseMatrix* out, size_t row_begin, size_t row_end,
                       size_t row_offset) const override;
  void MultiplyVectorRange(const double* v, const double* preagg, double* y,
                           size_t row_begin, size_t row_end) const override;
  void VectorMultiplyRange(const double* u, double* out, size_t row_begin,
                           size_t row_end) const override;
  void MultiplyMatrixRange(const la::DenseMatrix& m, const double* preagg,
                           la::DenseMatrix* y, size_t row_begin,
                           size_t row_end, size_t row_offset) const override;
  void TransposeMultiplyMatrixRange(const la::DenseMatrix& m, double* out,
                                    size_t row_begin, size_t row_end,
                                    size_t row_offset) const override;
  double SumRange(size_t row_begin, size_t row_end) const override;
  void AddRowSquaredNormsRange(const double* preagg, double* out,
                               size_t row_begin, size_t row_end) const override;

  /// \brief Exact size this encoding would use given stats.
  static size_t EstimateSize(size_t num_nonzero_rows, size_t cardinality,
                             size_t width);

 protected:
  const GroupDictionary* dictionary() const override { return &dict_; }

 private:
  /// \brief [begin, end) positions into offset_data_ covering rows
  /// [row_begin, row_end) of entry `e` (binary search on the sorted list).
  void EntrySlice(size_t e, size_t row_begin, size_t row_end, size_t* begin,
                  size_t* end) const;

  GroupDictionary dict_;  ///< Non-zero tuples only.
  // CSR layout: entry e's sorted row offsets live at
  // offset_data_[offset_begin_[e] .. offset_begin_[e+1]).
  std::vector<uint32_t> offset_data_;
  std::vector<uint32_t> offset_begin_;  ///< num_entries + 1 positions.
};

}  // namespace dmml::cla

#endif  // DMML_CLA_OLE_GROUP_H_
