/// \file rle_group.h
/// \brief Run-length encoding: maximal runs of equal tuples, zero-suppressed.
#ifndef DMML_CLA_RLE_GROUP_H_
#define DMML_CLA_RLE_GROUP_H_

#include "cla/column_group.h"

namespace dmml::cla {

/// \brief One maximal run of rows sharing a dictionary entry.
struct Run {
  uint32_t start;
  uint32_t length;
  uint32_t code;
};

/// \brief RLE column group: dictionary + sorted run list. Runs whose tuple is
/// all-zero are not stored (zero suppression), so sparse *and* clustered data
/// both compress well. Best on sorted / temporally-clustered columns.
///
/// A per-block skip index (one run index per kSkipBlock rows, built at
/// compress time) lets a ranged kernel seek to the first run intersecting
/// row_begin in O(runs per block) instead of scanning the run list from row 0
/// — the property that makes row-partitioned parallel ops cheap.
class RleGroup : public ColumnGroup {
 public:
  RleGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns);

  GroupFormat format() const override { return GroupFormat::kRle; }
  size_t SizeInBytes() const override;
  size_t DictionarySize() const override { return dict_.num_entries(); }

  void DecompressRange(la::DenseMatrix* out, size_t row_begin, size_t row_end,
                       size_t row_offset) const override;
  void MultiplyVectorRange(const double* v, const double* preagg, double* y,
                           size_t row_begin, size_t row_end) const override;
  void VectorMultiplyRange(const double* u, double* out, size_t row_begin,
                           size_t row_end) const override;
  void MultiplyMatrixRange(const la::DenseMatrix& m, const double* preagg,
                           la::DenseMatrix* y, size_t row_begin,
                           size_t row_end, size_t row_offset) const override;
  void TransposeMultiplyMatrixRange(const la::DenseMatrix& m, double* out,
                                    size_t row_begin, size_t row_end,
                                    size_t row_offset) const override;
  double SumRange(size_t row_begin, size_t row_end) const override;
  void AddRowSquaredNormsRange(const double* preagg, double* out,
                               size_t row_begin, size_t row_end) const override;

  size_t NumRuns() const { return runs_.size(); }

  /// \brief Rows covered by one skip-index block.
  static constexpr size_t kSkipBlock = 1024;

  /// \brief Exact size this encoding would use given run statistics.
  static size_t EstimateSize(size_t num_nonzero_runs, size_t cardinality,
                             size_t width);

 protected:
  const GroupDictionary* dictionary() const override { return &dict_; }

 private:
  /// \brief Index of the first run whose row span reaches `row` (i.e. with
  /// start + length > row), or runs_.size() if none.
  size_t FirstRunReaching(size_t row) const;

  GroupDictionary dict_;
  std::vector<Run> runs_;  // Sorted by start; non-zero tuples only.
  // skip_[b] = index of the first run with start + length > b * kSkipBlock.
  std::vector<uint32_t> skip_;
};

}  // namespace dmml::cla

#endif  // DMML_CLA_RLE_GROUP_H_
