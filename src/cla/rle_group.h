/// \file rle_group.h
/// \brief Run-length encoding: maximal runs of equal tuples, zero-suppressed.
#ifndef DMML_CLA_RLE_GROUP_H_
#define DMML_CLA_RLE_GROUP_H_

#include "cla/column_group.h"

namespace dmml::cla {

/// \brief One maximal run of rows sharing a dictionary entry.
struct Run {
  uint32_t start;
  uint32_t length;
  uint32_t code;
};

/// \brief RLE column group: dictionary + sorted run list. Runs whose tuple is
/// all-zero are not stored (zero suppression), so sparse *and* clustered data
/// both compress well. Best on sorted / temporally-clustered columns.
class RleGroup : public ColumnGroup {
 public:
  RleGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns);

  GroupFormat format() const override { return GroupFormat::kRle; }
  size_t SizeInBytes() const override;
  void Decompress(la::DenseMatrix* out) const override;
  void MultiplyVector(const double* v, double* y, size_t n) const override;
  void VectorMultiply(const double* u, size_t n, double* out) const override;
  double Sum() const override;
  void AddRowSquaredNorms(double* out, size_t n) const override;
  size_t DictionarySize() const override { return dict_.num_entries(); }

  size_t NumRuns() const { return runs_.size(); }

  /// \brief Exact size this encoding would use given run statistics.
  static size_t EstimateSize(size_t num_nonzero_runs, size_t cardinality,
                             size_t width);

 private:
  size_t n_ = 0;
  GroupDictionary dict_;
  std::vector<Run> runs_;  // Sorted by start; non-zero tuples only.
};

}  // namespace dmml::cla

#endif  // DMML_CLA_RLE_GROUP_H_
