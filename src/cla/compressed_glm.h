/// \file compressed_glm.h
/// \brief GLM training executed directly on a compressed matrix — CLA's
/// headline use case: iterative ML without decompression.
#ifndef DMML_CLA_COMPRESSED_GLM_H_
#define DMML_CLA_COMPRESSED_GLM_H_

#include "cla/compressed_matrix.h"
#include "ml/glm.h"
#include "util/result.h"

namespace dmml::cla {

/// \brief Batch-gradient GLM training where every X·w and Xᵀ·g runs on the
/// compressed representation. Produces results identical (to fp reordering)
/// to the dense matrix-form trainer. The epoch loop uses the `...Into`
/// compressed kernels with hoisted buffers, so steady-state training
/// allocates no matrices; a pool parallelizes every compressed op.
Result<ml::GlmModel> TrainCompressedGlm(const CompressedMatrix& x,
                                        const la::DenseMatrix& y,
                                        const ml::GlmConfig& config,
                                        ThreadPool* pool = nullptr);

}  // namespace dmml::cla

#endif  // DMML_CLA_COMPRESSED_GLM_H_
