#include "cla/compressed_glm.h"

#include <memory>

#include "ml/unified_trainers.h"

namespace dmml::cla {

// Thin representation binding: wrap the compressed matrix in a non-owning
// laopt::Operand and run the unified operand trainer. The executor
// dispatches every X·w to MultiplyVector and every Xᵀ·r to the
// dictionary-pre-aggregating VectorMultiply — the same kernels (and epoch
// math, and steady-state zero-allocation behavior) as the hand-written
// compressed loop this replaced.
Result<ml::GlmModel> TrainCompressedGlm(const CompressedMatrix& x,
                                        const la::DenseMatrix& y,
                                        const ml::GlmConfig& config,
                                        ThreadPool* pool) {
  return ml::TrainGlmOnOperand(
      laopt::Operand(std::shared_ptr<const CompressedMatrix>(
          std::shared_ptr<void>(), &x)),
      y, config, pool);
}

}  // namespace dmml::cla
