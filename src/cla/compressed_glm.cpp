#include "cla/compressed_glm.h"

#include <cmath>
#include <limits>

#include "la/kernels.h"

namespace dmml::cla {

using la::DenseMatrix;
using ml::GlmConfig;
using ml::GlmFamily;
using ml::GlmModel;

Result<GlmModel> TrainCompressedGlm(const CompressedMatrix& x, const DenseMatrix& y,
                                    const GlmConfig& config, ThreadPool* pool) {
  const size_t n = x.rows(), d = x.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("compressed GLM: empty data");
  if (y.rows() != n || y.cols() != 1) {
    return Status::InvalidArgument("compressed GLM: y must be n x 1");
  }
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (config.family == GlmFamily::kBinomial) {
    for (size_t i = 0; i < n; ++i) {
      double v = y.At(i, 0);
      if (v != 0.0 && v != 1.0) {
        return Status::InvalidArgument("Binomial family requires 0/1 labels");
      }
    }
  }

  GlmModel model;
  model.family = config.family;
  model.weights = DenseMatrix(d, 1);
  const double inv_n = 1.0 / static_cast<double>(n);
  double prev_loss = std::numeric_limits<double>::infinity();

  // Hoisted op outputs: after the first epoch sizes them, every further
  // epoch reuses their storage (observable via cla.inplace.allocs).
  DenseMatrix scores;
  DenseMatrix grad;

  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    DMML_RETURN_IF_ERROR(x.MultiplyVectorInto(model.weights, &scores, pool));
    double loss = 0;
    double bias_grad = 0;
    for (size_t i = 0; i < n; ++i) {
      double s = scores.At(i, 0) + model.intercept;
      double yi = y.At(i, 0);
      if (config.family == GlmFamily::kGaussian) {
        double r = s - yi;
        loss += 0.5 * r * r;
        scores.At(i, 0) = r;
      } else {
        double sign_y = yi > 0.5 ? 1.0 : -1.0;
        double m = sign_y * s;
        loss += m > 0 ? std::log1p(std::exp(-m)) : -m + std::log1p(std::exp(m));
        scores.At(i, 0) = ml::GlmInverseLink(s, config.family) - yi;
      }
      bias_grad += scores.At(i, 0);
    }
    loss *= inv_n;
    if (config.l2 > 0) {
      double w2 = 0;
      for (size_t j = 0; j < d; ++j) {
        w2 += model.weights.At(j, 0) * model.weights.At(j, 0);
      }
      loss += 0.5 * config.l2 * w2;
    }

    DMML_RETURN_IF_ERROR(x.VectorMultiplyInto(scores, &grad, pool));  // 1 x d.
    double lr =
        config.learning_rate / (1.0 + config.lr_decay * static_cast<double>(epoch));
    for (size_t j = 0; j < d; ++j) {
      model.weights.At(j, 0) -=
          lr * (grad.At(0, j) * inv_n + config.l2 * model.weights.At(j, 0));
    }
    if (config.fit_intercept) model.intercept -= lr * bias_grad * inv_n;

    model.loss_history.push_back(loss);
    model.epochs_run = epoch + 1;
    if (std::isfinite(prev_loss) &&
        std::fabs(prev_loss - loss) <= config.tolerance * std::max(1.0, prev_loss)) {
      break;
    }
    prev_loss = loss;
  }
  return model;
}

}  // namespace dmml::cla
