/// \file compressed_matrix.h
/// \brief Column-compressed matrix with a size-based compression planner.
///
/// Compression and every op accept an optional `ThreadPool*`: analysis and
/// group encoding fan out per column / per group, and ops partition the row
/// space into chunks that run the groups' ranged kernels. Accumulating ops
/// reduce per-chunk private partials without atomics — the same flat-buffer
/// strategy as la::kernels. `...Into` variants reuse caller buffers so
/// steady-state training loops allocate nothing (tracked by the
/// `cla.inplace.{reuses,allocs}` counters).
#ifndef DMML_CLA_COMPRESSED_MATRIX_H_
#define DMML_CLA_COMPRESSED_MATRIX_H_

#include <memory>
#include <string>
#include <vector>

#include "cla/column_group.h"
#include "la/dense_matrix.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace dmml::cla {

/// \brief Per-column statistics driving encoding choice.
struct ColumnStats {
  size_t cardinality = 0;     ///< Distinct values.
  size_t num_runs = 0;        ///< Maximal equal-value runs (non-zero only).
  size_t num_nonzero = 0;     ///< Non-zero rows.
  size_t uc_size = 0;         ///< Size under each encoding, in bytes.
  size_t ddc_size = 0;
  size_t rle_size = 0;
  size_t ole_size = 0;
};

/// \brief Compression planner options.
struct CompressionOptions {
  /// Greedily co-code column pairs whose joint dictionary stays small.
  bool enable_cocoding = false;
  /// A pair is merged when size(joint) <= cocode_threshold * (sizeA+sizeB).
  double cocode_threshold = 0.95;
  /// Columns whose best compressed size exceeds this fraction of the dense
  /// size stay uncompressed.
  double min_compression_gain = 1.0;
  /// Rows inspected by the planner per column. 0 = exact single pass (the
  /// default at single-node scale); > 0 uses evenly-spaced sampling with
  /// Chao1 cardinality estimation and linear run/nnz scale-up — the
  /// estimator style of the original CLA planner.
  size_t sample_rows = 0;
};

/// \brief A matrix stored as compressed column groups; LA ops run directly on
/// the compressed form.
class CompressedMatrix {
 public:
  /// \brief Compresses `dense` according to `options` (exact, single-pass
  /// statistics; the sampling estimators of the original CLA system are
  /// unnecessary at single-node scale). With a pool, column analysis,
  /// co-coding pair scoring and group encoding run in parallel; the resulting
  /// plan and group order are identical to the serial ones.
  static CompressedMatrix Compress(const la::DenseMatrix& dense,
                                   const CompressionOptions& options = {},
                                   ThreadPool* pool = nullptr);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  const std::vector<std::unique_ptr<ColumnGroup>>& groups() const { return groups_; }

  /// \brief In-memory footprint of the compressed representation.
  size_t SizeInBytes() const;

  /// \brief Dense footprint (rows*cols*8) over SizeInBytes().
  double CompressionRatio() const;

  // ---------------------------------------------------------------------
  // Allocation-free ops: `out` is reshaped in place (reuse counted in
  // cla.inplace.reuses / allocs) and fully overwritten.
  // ---------------------------------------------------------------------

  /// \brief out = X · v for v of shape (cols x 1); out becomes (rows x 1).
  Status MultiplyVectorInto(const la::DenseMatrix& v, la::DenseMatrix* out,
                            ThreadPool* pool = nullptr) const;

  /// \brief out = uᵀ · X for u of shape (rows x 1); out becomes (1 x cols).
  Status VectorMultiplyInto(const la::DenseMatrix& u, la::DenseMatrix* out,
                            ThreadPool* pool = nullptr) const;

  /// \brief out = X · M for M of shape (cols x k); out becomes (rows x k).
  Status MultiplyMatrixInto(const la::DenseMatrix& m, la::DenseMatrix* out,
                            ThreadPool* pool = nullptr) const;

  /// \brief out = Xᵀ · M for M of shape (rows x k); out becomes (cols x k).
  Status TransposeMultiplyMatrixInto(const la::DenseMatrix& m,
                                     la::DenseMatrix* out,
                                     ThreadPool* pool = nullptr) const;

  /// \brief out = per-row sums of squared entries; out becomes (rows x 1).
  Status RowSquaredNormsInto(la::DenseMatrix* out,
                             ThreadPool* pool = nullptr) const;

  // ---------------------------------------------------------------------
  // Row-windowed ops: operate on rows [row_begin, row_end) only, with
  // window-relative buffers. The groups' skip-index / binary-search /
  // positional seeks make a window pass cost O(window), so contiguous-fold
  // cross-validation trains leave-one-fold-out with no gather copies.
  // ---------------------------------------------------------------------

  /// \brief out = X[row_begin:row_end) · M for M of shape (cols x k); out
  /// becomes ((row_end-row_begin) x k).
  Status MultiplyMatrixRangeInto(const la::DenseMatrix& m, size_t row_begin,
                                 size_t row_end, la::DenseMatrix* out,
                                 ThreadPool* pool = nullptr) const;

  /// \brief out = X[row_begin:row_end)ᵀ · M for window-relative M of shape
  /// ((row_end-row_begin) x k); out becomes (cols x k).
  Status TransposeMultiplyMatrixRangeInto(const la::DenseMatrix& m,
                                          size_t row_begin, size_t row_end,
                                          la::DenseMatrix* out,
                                          ThreadPool* pool = nullptr) const;

  /// \brief Reconstructs rows [row_begin, row_end) as a window-relative
  /// ((row_end-row_begin) x cols) dense matrix.
  Status DecompressRangeInto(size_t row_begin, size_t row_end,
                             la::DenseMatrix* out,
                             ThreadPool* pool = nullptr) const;

  // ---------------------------------------------------------------------
  // Allocating convenience forms (forward to the Into variants).
  // ---------------------------------------------------------------------

  /// \brief y = X · v for v of shape (cols x 1).
  Result<la::DenseMatrix> MultiplyVector(const la::DenseMatrix& v,
                                         ThreadPool* pool = nullptr) const;

  /// \brief yᵀ = uᵀ · X for u of shape (rows x 1); returns (1 x cols).
  Result<la::DenseMatrix> VectorMultiply(const la::DenseMatrix& u,
                                         ThreadPool* pool = nullptr) const;

  /// \brief Y = X · M for M of shape (cols x k); returns (rows x k).
  Result<la::DenseMatrix> MultiplyMatrix(const la::DenseMatrix& m,
                                         ThreadPool* pool = nullptr) const;

  /// \brief Y = Xᵀ · M for M of shape (rows x k); returns (cols x k).
  Result<la::DenseMatrix> TransposeMultiplyMatrix(
      const la::DenseMatrix& m, ThreadPool* pool = nullptr) const;

  /// \brief Per-row sums of squared entries (rows x 1), computed on the
  /// compressed data via per-dictionary-entry squared norms.
  la::DenseMatrix RowSquaredNorms(ThreadPool* pool = nullptr) const;

  /// \brief Sum of all matrix elements.
  double Sum(ThreadPool* pool = nullptr) const;

  /// \brief Reconstructs the dense matrix.
  la::DenseMatrix Decompress(ThreadPool* pool = nullptr) const;

  /// \brief Per-group "[cols...]:FORMAT(bytes)" summary, for diagnostics.
  std::string FormatSummary() const;

  /// \brief Computes the stats the planner uses for one column (exact pass).
  static ColumnStats AnalyzeColumn(const la::DenseMatrix& dense, size_t col);

  /// \brief Sampling estimator: inspects `sample_rows` evenly-spaced rows,
  /// extrapolates runs/nnz linearly and cardinality with Chao1.
  static ColumnStats AnalyzeColumnSampled(const la::DenseMatrix& dense, size_t col,
                                          size_t sample_rows);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<std::unique_ptr<ColumnGroup>> groups_;
};

}  // namespace dmml::cla

#endif  // DMML_CLA_COMPRESSED_MATRIX_H_
