#include "cla/ddc_group.h"

#include <algorithm>
#include <vector>

#include "cla/kwide.h"

namespace dmml::cla {

namespace {
// Per-worker scratch for the code-grouped accumulation paths. Each pool
// worker (or the calling thread) owns its copy; a buffer is always consumed
// before the next ranged call overwrites it.
thread_local std::vector<double> t_code_acc;

double* CodeScratch(size_t need) {
  if (t_code_acc.size() < need) t_code_acc.resize(need);
  return t_code_acc.data();
}
}  // namespace

DdcGroup::DdcGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns)
    : ColumnGroup(std::move(columns), m.rows()) {
  std::vector<uint32_t> raw_codes;
  BuildDictionary(m, columns_, &dict_, &raw_codes);
  codes_ = CodeArray(n_, dict_.num_entries());
  for (size_t i = 0; i < n_; ++i) codes_.Set(i, raw_codes[i]);
}

size_t DdcGroup::SizeInBytes() const {
  return dict_.SizeInBytes() + codes_.SizeInBytes() +
         columns_.size() * sizeof(uint32_t);
}

size_t DdcGroup::EstimateSize(size_t n, size_t cardinality, size_t width) {
  size_t code_width = cardinality <= 256 ? 1 : (cardinality <= 65536 ? 2 : 4);
  return cardinality * width * sizeof(double) + n * code_width +
         width * sizeof(uint32_t);
}

void DdcGroup::DecompressRange(la::DenseMatrix* out, size_t row_begin,
                               size_t row_end, size_t row_offset) const {
  const size_t w = columns_.size();
  codes_.ForEach(row_begin, row_end, [&](size_t i, uint32_t code) {
    const double* entry = dict_.Entry(code);
    for (size_t j = 0; j < w; ++j) {
      out->At(i - row_offset, columns_[j]) = entry[j];
    }
  });
}

void DdcGroup::MultiplyVectorRange(const double* v, const double* preagg,
                                   double* y, size_t row_begin,
                                   size_t row_end) const {
  // Dictionary pre-aggregated against v once (O(card * w)), then one table
  // lookup per row.
  const double* p = EnsureVectorPreagg(v, preagg);
  codes_.ForEach(row_begin, row_end,
                 [&](size_t i, uint32_t code) { y[i] += p[code]; });
}

void DdcGroup::VectorMultiplyRange(const double* u, double* out,
                                   size_t row_begin, size_t row_end) const {
  const size_t w = columns_.size();
  const size_t entries = dict_.num_entries();
  const size_t range = row_end - row_begin;
  if (entries > range / 2) {
    // Huge dictionaries (cardinality near n): zeroing + expanding a
    // dictionary-sized accumulator costs more than the rows themselves.
    codes_.ForEach(row_begin, row_end, [&](size_t i, uint32_t code) {
      const double ui = u[i];
      if (ui == 0.0) return;
      const double* entry = dict_.Entry(code);
      for (size_t j = 0; j < w; ++j) out[columns_[j]] += ui * entry[j];
    });
    return;
  }
  // Group-accumulate u per dictionary entry, then expand once: a single pass
  // over the codes with no per-row indirection into `out`.
  double* acc = CodeScratch(entries);
  std::fill(acc, acc + entries, 0.0);
  codes_.ForEach(row_begin, row_end,
                 [&](size_t i, uint32_t code) { acc[code] += u[i]; });
  if (w == 1) {
    // Single-column fast path: one dot product dictionary ⋅ partials.
    const double* dict = dict_.values.data();
    double total = 0;
    for (size_t e = 0; e < entries; ++e) total += acc[e] * dict[e];
    out[columns_[0]] += total;
    return;
  }
  for (size_t e = 0; e < entries; ++e) {
    if (acc[e] == 0.0) continue;
    const double* entry = dict_.Entry(e);
    for (size_t j = 0; j < w; ++j) out[columns_[j]] += acc[e] * entry[j];
  }
}

void DdcGroup::MultiplyMatrixRange(const la::DenseMatrix& m,
                                   const double* preagg, la::DenseMatrix* y,
                                   size_t row_begin, size_t row_end,
                                   size_t row_offset) const {
  // Pre-aggregate the dictionary against all k columns of m at once, then a
  // single k-wide AXPY per row — the matrix generalization of the MV kernel.
  const size_t k = m.cols();
  const double* p = EnsureMatrixPreagg(m, preagg);
  codes_.ForEach(row_begin, row_end, [&](size_t i, uint32_t code) {
    KWideAdd(y->Row(i - row_offset), p + code * k, k);
  });
}

void DdcGroup::TransposeMultiplyMatrixRange(const la::DenseMatrix& m,
                                            double* out, size_t row_begin,
                                            size_t row_end,
                                            size_t row_offset) const {
  const size_t w = columns_.size();
  const size_t k = m.cols();
  const size_t entries = dict_.num_entries();
  const size_t range = row_end - row_begin;
  if (entries > range / 2) {
    codes_.ForEach(row_begin, row_end, [&](size_t i, uint32_t code) {
      const double* entry = dict_.Entry(code);
      const double* src = m.Row(i - row_offset);
      for (size_t j = 0; j < w; ++j) {
        const double ej = entry[j];
        if (ej == 0.0) continue;
        KWideAxpy(out + columns_[j] * k, ej, src, k);
      }
    });
    return;
  }
  // Accumulate rows of m per dictionary entry, then expand through the
  // dictionary once.
  double* acc = CodeScratch(entries * k);
  std::fill(acc, acc + entries * k, 0.0);
  codes_.ForEach(row_begin, row_end, [&](size_t i, uint32_t code) {
    KWideAdd(acc + code * k, m.Row(i - row_offset), k);
  });
  for (size_t e = 0; e < entries; ++e) {
    const double* entry = dict_.Entry(e);
    const double* a = acc + e * k;
    for (size_t j = 0; j < w; ++j) {
      const double ej = entry[j];
      if (ej == 0.0) continue;
      KWideAxpy(out + columns_[j] * k, ej, a, k);
    }
  }
}

double DdcGroup::SumRange(size_t row_begin, size_t row_end) const {
  const size_t w = columns_.size();
  const size_t entries = dict_.num_entries();
  const size_t range = row_end - row_begin;
  double acc = 0;
  if (entries > range / 2) {
    codes_.ForEach(row_begin, row_end, [&](size_t, uint32_t code) {
      const double* entry = dict_.Entry(code);
      for (size_t j = 0; j < w; ++j) acc += entry[j];
    });
    return acc;
  }
  // Count per code, then weight by per-entry tuple sums.
  double* counts = CodeScratch(entries);
  std::fill(counts, counts + entries, 0.0);
  codes_.ForEach(row_begin, row_end,
                 [&](size_t, uint32_t code) { counts[code] += 1.0; });
  for (size_t e = 0; e < entries; ++e) {
    if (counts[e] == 0.0) continue;
    const double* entry = dict_.Entry(e);
    double tuple_sum = 0;
    for (size_t j = 0; j < w; ++j) tuple_sum += entry[j];
    acc += tuple_sum * counts[e];
  }
  return acc;
}

void DdcGroup::AddRowSquaredNormsRange(const double* preagg, double* out,
                                       size_t row_begin, size_t row_end) const {
  const double* p = EnsureSquaredNormPreagg(preagg);
  codes_.ForEach(row_begin, row_end,
                 [&](size_t i, uint32_t code) { out[i] += p[code]; });
}

}  // namespace dmml::cla
