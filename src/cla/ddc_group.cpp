#include "cla/ddc_group.h"

namespace dmml::cla {

DdcGroup::DdcGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns)
    : ColumnGroup(std::move(columns)), n_(m.rows()) {
  std::vector<uint32_t> raw_codes;
  BuildDictionary(m, columns_, &dict_, &raw_codes);
  codes_ = CodeArray(n_, dict_.num_entries());
  for (size_t i = 0; i < n_; ++i) codes_.Set(i, raw_codes[i]);
}

size_t DdcGroup::SizeInBytes() const {
  return dict_.SizeInBytes() + codes_.SizeInBytes() +
         columns_.size() * sizeof(uint32_t);
}

size_t DdcGroup::EstimateSize(size_t n, size_t cardinality, size_t width) {
  size_t code_width = cardinality <= 256 ? 1 : (cardinality <= 65536 ? 2 : 4);
  return cardinality * width * sizeof(double) + n * code_width +
         width * sizeof(uint32_t);
}

void DdcGroup::Decompress(la::DenseMatrix* out) const {
  const size_t w = columns_.size();
  for (size_t i = 0; i < n_; ++i) {
    const double* entry = dict_.Entry(codes_.Get(i));
    for (size_t j = 0; j < w; ++j) out->At(i, columns_[j]) = entry[j];
  }
}

void DdcGroup::MultiplyVector(const double* v, double* y, size_t n) const {
  (void)n;
  // Pre-aggregate the dictionary against v once: O(card * w), then one
  // table lookup per row.
  const size_t w = columns_.size();
  std::vector<double> precomp(dict_.num_entries());
  for (size_t e = 0; e < precomp.size(); ++e) {
    const double* entry = dict_.Entry(e);
    double acc = 0;
    for (size_t j = 0; j < w; ++j) acc += entry[j] * v[columns_[j]];
    precomp[e] = acc;
  }
  for (size_t i = 0; i < n_; ++i) y[i] += precomp[codes_.Get(i)];
}

void DdcGroup::VectorMultiply(const double* u, size_t n, double* out) const {
  (void)n;
  // Group-accumulate u per dictionary entry, then expand once: O(n + card*w).
  std::vector<double> acc(dict_.num_entries(), 0.0);
  for (size_t i = 0; i < n_; ++i) acc[codes_.Get(i)] += u[i];
  const size_t w = columns_.size();
  for (size_t e = 0; e < acc.size(); ++e) {
    if (acc[e] == 0.0) continue;
    const double* entry = dict_.Entry(e);
    for (size_t j = 0; j < w; ++j) out[columns_[j]] += acc[e] * entry[j];
  }
}

void DdcGroup::MultiplyMatrix(const la::DenseMatrix& m, la::DenseMatrix* y) const {
  // Pre-aggregate the dictionary against all k columns of m at once, then a
  // single k-wide AXPY per row — the matrix generalization of the MV kernel.
  const size_t w = columns_.size();
  const size_t k = m.cols();
  la::DenseMatrix precomp(dict_.num_entries(), k);
  for (size_t e = 0; e < dict_.num_entries(); ++e) {
    const double* entry = dict_.Entry(e);
    for (size_t j = 0; j < w; ++j) {
      if (entry[j] == 0.0) continue;
      for (size_t c = 0; c < k; ++c) {
        precomp.At(e, c) += entry[j] * m.At(columns_[j], c);
      }
    }
  }
  for (size_t i = 0; i < n_; ++i) {
    const double* src = precomp.Row(codes_.Get(i));
    double* dst = y->Row(i);
    for (size_t c = 0; c < k; ++c) dst[c] += src[c];
  }
}

void DdcGroup::TransposeMultiplyMatrix(const la::DenseMatrix& m,
                                       la::DenseMatrix* out) const {
  const size_t w = columns_.size();
  const size_t k = m.cols();
  la::DenseMatrix acc(dict_.num_entries(), k);
  for (size_t i = 0; i < n_; ++i) {
    const double* src = m.Row(i);
    double* dst = acc.Row(codes_.Get(i));
    for (size_t c = 0; c < k; ++c) dst[c] += src[c];
  }
  for (size_t e = 0; e < dict_.num_entries(); ++e) {
    const double* entry = dict_.Entry(e);
    const double* a = acc.Row(e);
    for (size_t j = 0; j < w; ++j) {
      if (entry[j] == 0.0) continue;
      double* dst = out->Row(columns_[j]);
      for (size_t c = 0; c < k; ++c) dst[c] += entry[j] * a[c];
    }
  }
}

double DdcGroup::Sum() const {
  std::vector<size_t> counts(dict_.num_entries(), 0);
  for (size_t i = 0; i < n_; ++i) counts[codes_.Get(i)]++;
  const size_t w = columns_.size();
  double acc = 0;
  for (size_t e = 0; e < counts.size(); ++e) {
    const double* entry = dict_.Entry(e);
    double tuple_sum = 0;
    for (size_t j = 0; j < w; ++j) tuple_sum += entry[j];
    acc += tuple_sum * static_cast<double>(counts[e]);
  }
  return acc;
}

void DdcGroup::AddRowSquaredNorms(double* out, size_t n) const {
  (void)n;
  const size_t w = columns_.size();
  std::vector<double> norms(dict_.num_entries());
  for (size_t e = 0; e < norms.size(); ++e) {
    const double* entry = dict_.Entry(e);
    double acc = 0;
    for (size_t j = 0; j < w; ++j) acc += entry[j] * entry[j];
    norms[e] = acc;
  }
  for (size_t i = 0; i < n_; ++i) out[i] += norms[codes_.Get(i)];
}

}  // namespace dmml::cla
