#include "cla/column_group.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace dmml::cla {

const char* GroupFormatName(GroupFormat format) {
  switch (format) {
    case GroupFormat::kUncompressed: return "UC";
    case GroupFormat::kDdc: return "DDC";
    case GroupFormat::kRle: return "RLE";
    case GroupFormat::kOle: return "OLE";
  }
  return "?";
}

CodeArray::CodeArray(size_t n, size_t cardinality) : size_(n) {
  if (cardinality <= 256) {
    width_ = 1;
    data8_.resize(n);
  } else if (cardinality <= 65536) {
    width_ = 2;
    data16_.resize(n);
  } else {
    width_ = 4;
    data32_.resize(n);
  }
}

void CodeArray::Set(size_t i, uint32_t code) {
  switch (width_) {
    case 1:
      DMML_CHECK_LT(code, 256u);
      data8_[i] = static_cast<uint8_t>(code);
      break;
    case 2:
      DMML_CHECK_LT(code, 65536u);
      data16_[i] = static_cast<uint16_t>(code);
      break;
    default:
      data32_[i] = code;
  }
}

void ColumnGroup::MultiplyMatrix(const la::DenseMatrix& m, la::DenseMatrix* y) const {
  const size_t n = y->rows();
  const size_t k = m.cols();
  std::vector<double> v(m.rows());
  std::vector<double> ycol(n);
  for (size_t c = 0; c < k; ++c) {
    for (size_t r = 0; r < m.rows(); ++r) v[r] = m.At(r, c);
    std::fill(ycol.begin(), ycol.end(), 0.0);
    MultiplyVector(v.data(), ycol.data(), n);
    for (size_t i = 0; i < n; ++i) y->At(i, c) += ycol[i];
  }
}

void ColumnGroup::TransposeMultiplyMatrix(const la::DenseMatrix& m,
                                          la::DenseMatrix* out) const {
  const size_t n = m.rows();
  const size_t k = m.cols();
  std::vector<double> u(n);
  std::vector<double> row(out->rows());
  for (size_t c = 0; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) u[i] = m.At(i, c);
    std::fill(row.begin(), row.end(), 0.0);
    VectorMultiply(u.data(), n, row.data());
    for (size_t j = 0; j < out->rows(); ++j) out->At(j, c) += row[j];
  }
}

void BuildDictionary(const la::DenseMatrix& m, const std::vector<uint32_t>& columns,
                     GroupDictionary* dict, std::vector<uint32_t>* codes) {
  const size_t n = m.rows();
  const size_t w = columns.size();
  dict->width = w;
  dict->values.clear();
  codes->resize(n);

  // Key tuples by their raw byte pattern (exact-value dictionary).
  std::unordered_map<std::string, uint32_t> index;
  std::string key(w * sizeof(double), '\0');
  std::vector<double> tuple(w);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < w; ++j) tuple[j] = m.At(i, columns[j]);
    std::memcpy(key.data(), tuple.data(), w * sizeof(double));
    auto [it, inserted] =
        index.emplace(key, static_cast<uint32_t>(dict->num_entries()));
    if (inserted) {
      dict->values.insert(dict->values.end(), tuple.begin(), tuple.end());
    }
    (*codes)[i] = it->second;
  }
}

}  // namespace dmml::cla
