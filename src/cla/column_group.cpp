#include "cla/column_group.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace dmml::cla {

const char* GroupFormatName(GroupFormat format) {
  switch (format) {
    case GroupFormat::kUncompressed: return "UC";
    case GroupFormat::kDdc: return "DDC";
    case GroupFormat::kRle: return "RLE";
    case GroupFormat::kOle: return "OLE";
  }
  return "?";
}

CodeArray::CodeArray(size_t n, size_t cardinality) : size_(n) {
  if (cardinality <= 256) {
    width_ = 1;
    data8_.resize(n);
  } else if (cardinality <= 65536) {
    width_ = 2;
    data16_.resize(n);
  } else {
    width_ = 4;
    data32_.resize(n);
  }
}

void CodeArray::Set(size_t i, uint32_t code) {
  switch (width_) {
    case 1:
      DMML_CHECK_LT(code, 256u);
      data8_[i] = static_cast<uint8_t>(code);
      break;
    case 2:
      DMML_CHECK_LT(code, 65536u);
      data16_[i] = static_cast<uint16_t>(code);
      break;
    default:
      data32_[i] = code;
  }
}

void ColumnGroup::PreaggregateVector(const double* v, double* preagg) const {
  const GroupDictionary* dict = dictionary();
  if (dict == nullptr) return;
  const size_t w = columns_.size();
  const size_t entries = dict->num_entries();
  for (size_t e = 0; e < entries; ++e) {
    const double* entry = dict->Entry(e);
    double acc = 0;
    for (size_t j = 0; j < w; ++j) acc += entry[j] * v[columns_[j]];
    preagg[e] = acc;
  }
}

void ColumnGroup::PreaggregateMatrix(const la::DenseMatrix& m,
                                     double* preagg) const {
  const GroupDictionary* dict = dictionary();
  if (dict == nullptr) return;
  const size_t w = columns_.size();
  const size_t k = m.cols();
  const size_t entries = dict->num_entries();
  std::fill(preagg, preagg + entries * k, 0.0);
  for (size_t e = 0; e < entries; ++e) {
    const double* entry = dict->Entry(e);
    double* dst = preagg + e * k;
    for (size_t j = 0; j < w; ++j) {
      const double ej = entry[j];
      if (ej == 0.0) continue;
      const double* src = m.Row(columns_[j]);
      for (size_t c = 0; c < k; ++c) dst[c] += ej * src[c];
    }
  }
}

void ColumnGroup::PreaggregateSquaredNorms(double* preagg) const {
  const GroupDictionary* dict = dictionary();
  if (dict == nullptr) return;
  const size_t w = columns_.size();
  const size_t entries = dict->num_entries();
  for (size_t e = 0; e < entries; ++e) {
    const double* entry = dict->Entry(e);
    double acc = 0;
    for (size_t j = 0; j < w; ++j) acc += entry[j] * entry[j];
    preagg[e] = acc;
  }
}

namespace {
// Fallback scratch for direct (non-pooled) group calls that pass a null
// preagg. One buffer per kind per thread: within a thread the buffer is
// consumed before the next group overwrites it, and pool workers each see
// their own copy, so sharing is race-free.
thread_local std::vector<double> t_vector_preagg;
thread_local std::vector<double> t_matrix_preagg;
thread_local std::vector<double> t_sqnorm_preagg;
}  // namespace

const double* ColumnGroup::EnsureVectorPreagg(const double* v,
                                              const double* preagg) const {
  if (preagg != nullptr) return preagg;
  const size_t entries = DictionarySize();
  if (entries == 0) return nullptr;
  if (t_vector_preagg.size() < entries) t_vector_preagg.resize(entries);
  PreaggregateVector(v, t_vector_preagg.data());
  return t_vector_preagg.data();
}

const double* ColumnGroup::EnsureMatrixPreagg(const la::DenseMatrix& m,
                                              const double* preagg) const {
  if (preagg != nullptr) return preagg;
  const size_t need = DictionarySize() * m.cols();
  if (need == 0) return nullptr;
  if (t_matrix_preagg.size() < need) t_matrix_preagg.resize(need);
  PreaggregateMatrix(m, t_matrix_preagg.data());
  return t_matrix_preagg.data();
}

const double* ColumnGroup::EnsureSquaredNormPreagg(const double* preagg) const {
  if (preagg != nullptr) return preagg;
  const size_t entries = DictionarySize();
  if (entries == 0) return nullptr;
  if (t_sqnorm_preagg.size() < entries) t_sqnorm_preagg.resize(entries);
  PreaggregateSquaredNorms(t_sqnorm_preagg.data());
  return t_sqnorm_preagg.data();
}

void BuildDictionary(const la::DenseMatrix& m, const std::vector<uint32_t>& columns,
                     GroupDictionary* dict, std::vector<uint32_t>* codes) {
  const size_t n = m.rows();
  const size_t w = columns.size();
  dict->width = w;
  dict->values.clear();
  codes->resize(n);

  // Key tuples by their raw byte pattern (exact-value dictionary).
  std::unordered_map<std::string, uint32_t> index;
  std::string key(w * sizeof(double), '\0');
  std::vector<double> tuple(w);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < w; ++j) tuple[j] = m.At(i, columns[j]);
    std::memcpy(key.data(), tuple.data(), w * sizeof(double));
    auto [it, inserted] =
        index.emplace(key, static_cast<uint32_t>(dict->num_entries()));
    if (inserted) {
      dict->values.insert(dict->values.end(), tuple.begin(), tuple.end());
    }
    (*codes)[i] = it->second;
  }
}

}  // namespace dmml::cla
