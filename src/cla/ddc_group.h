/// \file ddc_group.h
/// \brief Dense dictionary coding: one packed code per row into a tuple
/// dictionary. The workhorse encoding for dense low-cardinality columns.
#ifndef DMML_CLA_DDC_GROUP_H_
#define DMML_CLA_DDC_GROUP_H_

#include "cla/column_group.h"

namespace dmml::cla {

/// \brief DDC column group: dictionary + fixed-width per-row codes.
///
/// Ranged kernels slice the code array directly (codes are positional), so a
/// row partition needs no auxiliary index. Accumulating kernels
/// (VectorMultiply / XᵀM / Sum) group per-code partials into dictionary-sized
/// scratch and expand through the dictionary once — one pass over the codes
/// with no per-row indirection into the output — unless the dictionary is
/// larger than the row range, where the direct per-row form is cheaper.
class DdcGroup : public ColumnGroup {
 public:
  /// \brief Encodes `columns` of `m`.
  DdcGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns);

  GroupFormat format() const override { return GroupFormat::kDdc; }
  size_t SizeInBytes() const override;
  size_t DictionarySize() const override { return dict_.num_entries(); }

  void DecompressRange(la::DenseMatrix* out, size_t row_begin, size_t row_end,
                       size_t row_offset) const override;
  void MultiplyVectorRange(const double* v, const double* preagg, double* y,
                           size_t row_begin, size_t row_end) const override;
  void VectorMultiplyRange(const double* u, double* out, size_t row_begin,
                           size_t row_end) const override;
  void MultiplyMatrixRange(const la::DenseMatrix& m, const double* preagg,
                           la::DenseMatrix* y, size_t row_begin,
                           size_t row_end, size_t row_offset) const override;
  void TransposeMultiplyMatrixRange(const la::DenseMatrix& m, double* out,
                                    size_t row_begin, size_t row_end,
                                    size_t row_offset) const override;
  double SumRange(size_t row_begin, size_t row_end) const override;
  void AddRowSquaredNormsRange(const double* preagg, double* out,
                               size_t row_begin, size_t row_end) const override;

  /// \brief Exact size this encoding would use for the given stats, in bytes.
  static size_t EstimateSize(size_t n, size_t cardinality, size_t width);

 protected:
  const GroupDictionary* dictionary() const override { return &dict_; }

 private:
  GroupDictionary dict_;
  CodeArray codes_;
};

}  // namespace dmml::cla

#endif  // DMML_CLA_DDC_GROUP_H_
