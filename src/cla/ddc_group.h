/// \file ddc_group.h
/// \brief Dense dictionary coding: one packed code per row into a tuple
/// dictionary. The workhorse encoding for dense low-cardinality columns.
#ifndef DMML_CLA_DDC_GROUP_H_
#define DMML_CLA_DDC_GROUP_H_

#include "cla/column_group.h"

namespace dmml::cla {

/// \brief DDC column group: dictionary + fixed-width per-row codes.
class DdcGroup : public ColumnGroup {
 public:
  /// \brief Encodes `columns` of `m`.
  DdcGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns);

  GroupFormat format() const override { return GroupFormat::kDdc; }
  size_t SizeInBytes() const override;
  void Decompress(la::DenseMatrix* out) const override;
  void MultiplyVector(const double* v, double* y, size_t n) const override;
  void VectorMultiply(const double* u, size_t n, double* out) const override;
  void MultiplyMatrix(const la::DenseMatrix& m, la::DenseMatrix* y) const override;
  void TransposeMultiplyMatrix(const la::DenseMatrix& m,
                               la::DenseMatrix* out) const override;
  double Sum() const override;
  void AddRowSquaredNorms(double* out, size_t n) const override;
  size_t DictionarySize() const override { return dict_.num_entries(); }

  /// \brief Exact size this encoding would use for the given stats, in bytes.
  static size_t EstimateSize(size_t n, size_t cardinality, size_t width);

 private:
  size_t n_ = 0;
  GroupDictionary dict_;
  CodeArray codes_;
};

}  // namespace dmml::cla

#endif  // DMML_CLA_DDC_GROUP_H_
