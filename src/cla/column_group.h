/// \file column_group.h
/// \brief Compressed column-group interface and shared encoding helpers.
///
/// A compressed matrix is a set of column groups, each covering one or more
/// columns (co-coding) under one encoding: uncompressed (UC), dense
/// dictionary coding (DDC), run-length (RLE) or offset-list (OLE). All
/// linear-algebra ops are pushed down to the groups, which operate directly
/// on their compressed representation — the core idea of compressed linear
/// algebra (CLA).
///
/// Every group op comes in a **ranged** form restricted to rows
/// [row_begin, row_end), so CompressedMatrix can partition the row space
/// across a thread pool: row-local ops (MV, MM, decompress, row norms) give
/// each worker a disjoint slice of the output, while accumulating ops
/// (VM, XᵀM, Sum) write into per-chunk private partial buffers that the
/// caller reduces without atomics. RLE keeps a per-block skip index and OLE
/// binary-searches its sorted offset lists, so a ranged call seeks to
/// row_begin instead of scanning from row 0.
///
/// Dictionary-bearing ops factor through an explicit **pre-aggregation**
/// step (dictionary ⋅ operand, one value/row per dictionary entry): the
/// caller computes it once per op via Preaggregate*() and shares the
/// read-only buffer across all row chunks. Passing preagg == nullptr makes
/// the group fall back to a thread-local scratch, so direct single-group
/// calls stay convenient.
#ifndef DMML_CLA_COLUMN_GROUP_H_
#define DMML_CLA_COLUMN_GROUP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "la/dense_matrix.h"

namespace dmml::cla {

/// Encoding kind of a column group.
enum class GroupFormat : uint8_t { kUncompressed, kDdc, kRle, kOle };

/// \brief Name of a format ("UC", "DDC", "RLE", "OLE").
const char* GroupFormatName(GroupFormat format);

/// \brief Dictionary of distinct row tuples for a column group: `width`
/// doubles per entry, stored row-major.
struct GroupDictionary {
  size_t width = 1;
  std::vector<double> values;  ///< num_entries * width.

  size_t num_entries() const { return width ? values.size() / width : 0; }
  const double* Entry(size_t e) const { return values.data() + e * width; }
  size_t SizeInBytes() const { return values.size() * sizeof(double); }
};

/// \brief One compressed column group covering `columns()` of the matrix.
class ColumnGroup {
 public:
  virtual ~ColumnGroup() = default;

  /// \brief Global column indices this group encodes.
  const std::vector<uint32_t>& columns() const { return columns_; }

  /// \brief Number of rows of the source matrix.
  size_t rows() const { return n_; }

  /// \brief Encoding of this group.
  virtual GroupFormat format() const = 0;

  /// \brief In-memory footprint of the compressed representation in bytes
  /// (dictionary + codes/runs/offsets + column index metadata).
  virtual size_t SizeInBytes() const = 0;

  /// \brief Number of dictionary entries (0 for uncompressed).
  virtual size_t DictionarySize() const = 0;

  // -------------------------------------------------------------------------
  // Full-range convenience forms (non-virtual; forward to the ranged kernels)
  // -------------------------------------------------------------------------

  /// \brief Scatters this group's values into a dense matrix (which must be
  /// zero-initialized in this group's columns).
  void Decompress(la::DenseMatrix* out) const { DecompressRange(out, 0, n_, 0); }

  /// \brief y += (group block) · v, reading v at this group's columns.
  /// `v` is the full-length (cols) vector, `y` has length `n` rows.
  void MultiplyVector(const double* v, double* y, size_t n) const {
    (void)n;
    MultiplyVectorRange(v, nullptr, y, 0, n_);
  }

  /// \brief out[col] += Σ_i u[i] * value(i, col) for this group's columns.
  void VectorMultiply(const double* u, size_t n, double* out) const {
    (void)n;
    VectorMultiplyRange(u, out, 0, n_);
  }

  /// \brief y += (group block) · M for M of shape (total_cols x k); y is
  /// (n x k) row-major.
  void MultiplyMatrix(const la::DenseMatrix& m, la::DenseMatrix* y) const {
    MultiplyMatrixRange(m, nullptr, y, 0, n_, 0);
  }

  /// \brief out(col, c) += Σ_i m(i, c) * value(i, col): the (d x k) block of
  /// (group block)ᵀ · M for M of shape (n x k).
  void TransposeMultiplyMatrix(const la::DenseMatrix& m,
                               la::DenseMatrix* out) const {
    TransposeMultiplyMatrixRange(m, out->data(), 0, n_, 0);
  }

  /// \brief Sum of all values in the group.
  double Sum() const { return SumRange(0, n_); }

  /// \brief out[i] += Σ_j value(i, col_j)² — this group's contribution to
  /// per-row squared norms (used by compressed k-means).
  void AddRowSquaredNorms(double* out, size_t n) const {
    (void)n;
    AddRowSquaredNormsRange(nullptr, out, 0, n_);
  }

  // -------------------------------------------------------------------------
  // Dictionary pre-aggregation (shared, read-only op scratch)
  // -------------------------------------------------------------------------

  /// \brief preagg[e] = Σ_j dict(e, j) * v[columns_[j]] for every dictionary
  /// entry. `preagg` must hold DictionarySize() doubles. No-op for UC groups.
  virtual void PreaggregateVector(const double* v, double* preagg) const;

  /// \brief preagg(e, c) = Σ_j dict(e, j) * m(columns_[j], c): the dictionary
  /// pre-multiplied against all k columns of M. `preagg` is row-major
  /// DictionarySize() x m.cols(). No-op for UC groups.
  virtual void PreaggregateMatrix(const la::DenseMatrix& m, double* preagg) const;

  /// \brief preagg[e] = Σ_j dict(e, j)² per dictionary entry. No-op for UC.
  virtual void PreaggregateSquaredNorms(double* preagg) const;

  // -------------------------------------------------------------------------
  // Ranged kernels (operate on rows [row_begin, row_end) only)
  // -------------------------------------------------------------------------
  //
  // `preagg` arguments accept the matching Preaggregate*() buffer, or
  // nullptr to have the group compute it into thread-local scratch.
  //
  // The row-addressed kernels take an additional `row_offset`
  // (<= row_begin): matrix row i maps to buffer row i - row_offset of the
  // row-indexed output (DecompressRange, MultiplyMatrixRange) or of the
  // row-indexed M operand (TransposeMultiplyMatrixRange). Passing 0 keeps
  // the classic full-height addressing; passing the window start lets a
  // (row_begin, row_end) window operate on window-sized buffers — the
  // contiguous-fold cross-validation hot path.

  /// \brief Decompress() restricted to rows [row_begin, row_end), written at
  /// out rows (i - row_offset).
  virtual void DecompressRange(la::DenseMatrix* out, size_t row_begin,
                               size_t row_end, size_t row_offset) const = 0;

  /// \brief y[i] += (row i of the group block) · v for i in range.
  virtual void MultiplyVectorRange(const double* v, const double* preagg,
                                   double* y, size_t row_begin,
                                   size_t row_end) const = 0;

  /// \brief out[col] += Σ_{i in range} u[i] * value(i, col). `out` is a
  /// full-width (total cols) buffer — typically a per-chunk partial.
  virtual void VectorMultiplyRange(const double* u, double* out,
                                   size_t row_begin, size_t row_end) const = 0;

  /// \brief y->Row(i - row_offset) += (row i of the group block) · M for i in
  /// range.
  virtual void MultiplyMatrixRange(const la::DenseMatrix& m,
                                   const double* preagg, la::DenseMatrix* y,
                                   size_t row_begin, size_t row_end,
                                   size_t row_offset) const = 0;

  /// \brief out[col*k + c] += Σ_{i in range} m(i - row_offset, c)
  /// * value(i, col), with `out` a row-major (total cols x k) buffer —
  /// typically a per-chunk partial.
  virtual void TransposeMultiplyMatrixRange(const la::DenseMatrix& m,
                                            double* out, size_t row_begin,
                                            size_t row_end,
                                            size_t row_offset) const = 0;

  /// \brief Sum of the group's values over rows [row_begin, row_end).
  virtual double SumRange(size_t row_begin, size_t row_end) const = 0;

  /// \brief out[i] += per-row squared norm for i in range. `preagg` takes a
  /// PreaggregateSquaredNorms() buffer (or nullptr).
  virtual void AddRowSquaredNormsRange(const double* preagg, double* out,
                                       size_t row_begin,
                                       size_t row_end) const = 0;

 protected:
  ColumnGroup(std::vector<uint32_t> columns, size_t n)
      : columns_(std::move(columns)), n_(n) {}

  /// \brief The group's dictionary, or nullptr for UC groups. Drives the
  /// shared Preaggregate*() implementations.
  virtual const GroupDictionary* dictionary() const { return nullptr; }

  /// \brief Returns `preagg` if non-null, else computes PreaggregateVector
  /// into thread-local scratch and returns that.
  const double* EnsureVectorPreagg(const double* v, const double* preagg) const;

  /// \brief Same for PreaggregateMatrix (DictionarySize() x m.cols()).
  const double* EnsureMatrixPreagg(const la::DenseMatrix& m,
                                   const double* preagg) const;

  /// \brief Same for PreaggregateSquaredNorms.
  const double* EnsureSquaredNormPreagg(const double* preagg) const;

  std::vector<uint32_t> columns_;
  size_t n_ = 0;
};

/// \brief Packed code array choosing 1/2/4-byte codes from the cardinality.
class CodeArray {
 public:
  CodeArray() = default;

  /// \brief Allocates `n` codes wide enough for `cardinality` values.
  CodeArray(size_t n, size_t cardinality);

  void Set(size_t i, uint32_t code);
  uint32_t Get(size_t i) const {
    switch (width_) {
      case 1: return data8_[i];
      case 2: return data16_[i];
      default: return data32_[i];
    }
  }

  /// \brief Calls `fn(i, code)` for every i in [begin, end). The code width
  /// is dispatched once per call, not per element, so inner loops run over a
  /// raw typed pointer — the hot-path form; Get()'s per-element switch is for
  /// incidental access only.
  template <typename Fn>
  void ForEach(size_t begin, size_t end, Fn&& fn) const {
    switch (width_) {
      case 1: {
        const uint8_t* p = data8_.data();
        for (size_t i = begin; i < end; ++i) fn(i, static_cast<uint32_t>(p[i]));
        break;
      }
      case 2: {
        const uint16_t* p = data16_.data();
        for (size_t i = begin; i < end; ++i) fn(i, static_cast<uint32_t>(p[i]));
        break;
      }
      default: {
        const uint32_t* p = data32_.data();
        for (size_t i = begin; i < end; ++i) fn(i, p[i]);
        break;
      }
    }
  }

  size_t size() const { return size_; }

  /// \brief Bytes used by the code storage.
  size_t SizeInBytes() const { return size_ * width_; }

  /// \brief Code width in bytes (1, 2 or 4).
  int width() const { return width_; }

 private:
  size_t size_ = 0;
  int width_ = 1;
  std::vector<uint8_t> data8_;
  std::vector<uint16_t> data16_;
  std::vector<uint32_t> data32_;
};

/// \brief Builds the dictionary and per-row codes for `columns` of `m`.
/// Entry order is first-appearance order.
void BuildDictionary(const la::DenseMatrix& m, const std::vector<uint32_t>& columns,
                     GroupDictionary* dict, std::vector<uint32_t>* codes);

}  // namespace dmml::cla

#endif  // DMML_CLA_COLUMN_GROUP_H_
