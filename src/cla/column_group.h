/// \file column_group.h
/// \brief Compressed column-group interface and shared encoding helpers.
///
/// A compressed matrix is a set of column groups, each covering one or more
/// columns (co-coding) under one encoding: uncompressed (UC), dense
/// dictionary coding (DDC), run-length (RLE) or offset-list (OLE). All
/// linear-algebra ops are pushed down to the groups, which operate directly
/// on their compressed representation — the core idea of compressed linear
/// algebra (CLA).
#ifndef DMML_CLA_COLUMN_GROUP_H_
#define DMML_CLA_COLUMN_GROUP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "la/dense_matrix.h"

namespace dmml::cla {

/// Encoding kind of a column group.
enum class GroupFormat : uint8_t { kUncompressed, kDdc, kRle, kOle };

/// \brief Name of a format ("UC", "DDC", "RLE", "OLE").
const char* GroupFormatName(GroupFormat format);

/// \brief One compressed column group covering `columns()` of the matrix.
class ColumnGroup {
 public:
  virtual ~ColumnGroup() = default;

  /// \brief Global column indices this group encodes.
  const std::vector<uint32_t>& columns() const { return columns_; }

  /// \brief Encoding of this group.
  virtual GroupFormat format() const = 0;

  /// \brief In-memory footprint of the compressed representation in bytes
  /// (dictionary + codes/runs/offsets + column index metadata).
  virtual size_t SizeInBytes() const = 0;

  /// \brief Scatters this group's values into a dense matrix (which must be
  /// zero-initialized in this group's columns).
  virtual void Decompress(la::DenseMatrix* out) const = 0;

  /// \brief y += (group block) · v, reading v at this group's columns.
  /// `v` is the full-length (cols) vector, `y` has length `n` rows.
  virtual void MultiplyVector(const double* v, double* y, size_t n) const = 0;

  /// \brief out[col] += Σ_i u[i] * value(i, col) for this group's columns.
  virtual void VectorMultiply(const double* u, size_t n, double* out) const = 0;

  /// \brief y += (group block) · M for M of shape (total_cols x k); y is
  /// (n x k) row-major. The base implementation loops MultiplyVector per
  /// output column; encodings override it with dictionary pre-aggregation.
  virtual void MultiplyMatrix(const la::DenseMatrix& m, la::DenseMatrix* y) const;

  /// \brief out(col, c) += Σ_i m(i, c) * value(i, col): the (d x k) block of
  /// (group block)ᵀ · M for M of shape (n x k). Base implementation loops
  /// VectorMultiply per column of M.
  virtual void TransposeMultiplyMatrix(const la::DenseMatrix& m,
                                       la::DenseMatrix* out) const;

  /// \brief Sum of all values in the group.
  virtual double Sum() const = 0;

  /// \brief out[i] += Σ_j value(i, col_j)² — this group's contribution to
  /// per-row squared norms (used by compressed k-means).
  virtual void AddRowSquaredNorms(double* out, size_t n) const = 0;

  /// \brief Number of dictionary entries (0 for uncompressed).
  virtual size_t DictionarySize() const = 0;

 protected:
  explicit ColumnGroup(std::vector<uint32_t> columns) : columns_(std::move(columns)) {}

  std::vector<uint32_t> columns_;
};

/// \brief Packed code array choosing 1/2/4-byte codes from the cardinality.
class CodeArray {
 public:
  CodeArray() = default;

  /// \brief Allocates `n` codes wide enough for `cardinality` values.
  CodeArray(size_t n, size_t cardinality);

  void Set(size_t i, uint32_t code);
  uint32_t Get(size_t i) const {
    switch (width_) {
      case 1: return data8_[i];
      case 2: return data16_[i];
      default: return data32_[i];
    }
  }

  size_t size() const { return size_; }

  /// \brief Bytes used by the code storage.
  size_t SizeInBytes() const { return size_ * width_; }

  /// \brief Code width in bytes (1, 2 or 4).
  int width() const { return width_; }

 private:
  size_t size_ = 0;
  int width_ = 1;
  std::vector<uint8_t> data8_;
  std::vector<uint16_t> data16_;
  std::vector<uint32_t> data32_;
};

/// \brief Dictionary of distinct row tuples for a column group: `width`
/// doubles per entry, stored row-major.
struct GroupDictionary {
  size_t width = 1;
  std::vector<double> values;  ///< num_entries * width.

  size_t num_entries() const { return width ? values.size() / width : 0; }
  const double* Entry(size_t e) const { return values.data() + e * width; }
  size_t SizeInBytes() const { return values.size() * sizeof(double); }
};

/// \brief Builds the dictionary and per-row codes for `columns` of `m`.
/// Entry order is first-appearance order.
void BuildDictionary(const la::DenseMatrix& m, const std::vector<uint32_t>& columns,
                     GroupDictionary* dict, std::vector<uint32_t>* codes);

}  // namespace dmml::cla

#endif  // DMML_CLA_COLUMN_GROUP_H_
