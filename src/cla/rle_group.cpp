#include "cla/rle_group.h"

#include <algorithm>
#include <vector>

#include "cla/kwide.h"

namespace dmml::cla {

namespace {
bool EntryIsZero(const double* entry, size_t w) {
  for (size_t j = 0; j < w; ++j) {
    if (entry[j] != 0.0) return false;
  }
  return true;
}

thread_local std::vector<double> t_rle_acc;

double* RleScratch(size_t need) {
  if (t_rle_acc.size() < need) t_rle_acc.resize(need);
  return t_rle_acc.data();
}
}  // namespace

RleGroup::RleGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns)
    : ColumnGroup(std::move(columns), m.rows()) {
  std::vector<uint32_t> codes;
  BuildDictionary(m, columns_, &dict_, &codes);

  const size_t w = columns_.size();
  // Zero-suppression: drop runs whose dictionary tuple is entirely zero.
  std::vector<bool> is_zero(dict_.num_entries());
  for (size_t e = 0; e < dict_.num_entries(); ++e) {
    is_zero[e] = EntryIsZero(dict_.Entry(e), w);
  }

  size_t i = 0;
  while (i < n_) {
    size_t j = i;
    while (j + 1 < n_ && codes[j + 1] == codes[i]) ++j;
    if (!is_zero[codes[i]]) {
      runs_.push_back({static_cast<uint32_t>(i),
                       static_cast<uint32_t>(j - i + 1), codes[i]});
    }
    i = j + 1;
  }

  // Skip index: for each kSkipBlock-aligned block, the first run whose span
  // reaches the block start. Single sweep over the (sorted) run list.
  const size_t num_blocks = n_ / kSkipBlock + 1;
  skip_.resize(num_blocks);
  size_t run = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t row = b * kSkipBlock;
    while (run < runs_.size() &&
           runs_[run].start + runs_[run].length <= row) {
      ++run;
    }
    skip_[b] = static_cast<uint32_t>(run);
  }
}

size_t RleGroup::FirstRunReaching(size_t row) const {
  size_t r = skip_[row / kSkipBlock];
  while (r < runs_.size() && runs_[r].start + runs_[r].length <= row) ++r;
  return r;
}

size_t RleGroup::SizeInBytes() const {
  return dict_.SizeInBytes() + runs_.size() * sizeof(Run) +
         skip_.size() * sizeof(uint32_t) + columns_.size() * sizeof(uint32_t);
}

size_t RleGroup::EstimateSize(size_t num_nonzero_runs, size_t cardinality,
                              size_t width) {
  return cardinality * width * sizeof(double) + num_nonzero_runs * sizeof(Run) +
         width * sizeof(uint32_t);
}

void RleGroup::DecompressRange(la::DenseMatrix* out, size_t row_begin,
                               size_t row_end, size_t row_offset) const {
  const size_t w = columns_.size();
  for (size_t r = FirstRunReaching(row_begin); r < runs_.size(); ++r) {
    const Run& run = runs_[r];
    if (run.start >= row_end) break;
    const size_t lo = std::max<size_t>(run.start, row_begin);
    const size_t hi = std::min<size_t>(run.start + run.length, row_end);
    const double* entry = dict_.Entry(run.code);
    for (size_t i = lo; i < hi; ++i) {
      for (size_t j = 0; j < w; ++j) {
        out->At(i - row_offset, columns_[j]) = entry[j];
      }
    }
  }
}

void RleGroup::MultiplyVectorRange(const double* v, const double* preagg,
                                   double* y, size_t row_begin,
                                   size_t row_end) const {
  const double* p = EnsureVectorPreagg(v, preagg);
  for (size_t r = FirstRunReaching(row_begin); r < runs_.size(); ++r) {
    const Run& run = runs_[r];
    if (run.start >= row_end) break;
    const double add = p[run.code];
    if (add == 0.0) continue;
    const size_t lo = std::max<size_t>(run.start, row_begin);
    const size_t hi = std::min<size_t>(run.start + run.length, row_end);
    for (size_t i = lo; i < hi; ++i) y[i] += add;
  }
}

void RleGroup::VectorMultiplyRange(const double* u, double* out,
                                   size_t row_begin, size_t row_end) const {
  // Per-entry accumulation of u over each clipped run, then one expand.
  const size_t entries = dict_.num_entries();
  double* acc = RleScratch(entries);
  std::fill(acc, acc + entries, 0.0);
  for (size_t r = FirstRunReaching(row_begin); r < runs_.size(); ++r) {
    const Run& run = runs_[r];
    if (run.start >= row_end) break;
    const size_t lo = std::max<size_t>(run.start, row_begin);
    const size_t hi = std::min<size_t>(run.start + run.length, row_end);
    double s = 0;
    for (size_t i = lo; i < hi; ++i) s += u[i];
    acc[run.code] += s;
  }
  const size_t w = columns_.size();
  for (size_t e = 0; e < entries; ++e) {
    if (acc[e] == 0.0) continue;
    const double* entry = dict_.Entry(e);
    for (size_t j = 0; j < w; ++j) out[columns_[j]] += acc[e] * entry[j];
  }
}

void RleGroup::MultiplyMatrixRange(const la::DenseMatrix& m,
                                   const double* preagg, la::DenseMatrix* y,
                                   size_t row_begin, size_t row_end,
                                   size_t row_offset) const {
  const size_t k = m.cols();
  const double* p = EnsureMatrixPreagg(m, preagg);
  for (size_t r = FirstRunReaching(row_begin); r < runs_.size(); ++r) {
    const Run& run = runs_[r];
    if (run.start >= row_end) break;
    const size_t lo = std::max<size_t>(run.start, row_begin);
    const size_t hi = std::min<size_t>(run.start + run.length, row_end);
    const double* src = p + run.code * k;
    for (size_t i = lo; i < hi; ++i) {
      KWideAdd(y->Row(i - row_offset), src, k);
    }
  }
}

void RleGroup::TransposeMultiplyMatrixRange(const la::DenseMatrix& m,
                                            double* out, size_t row_begin,
                                            size_t row_end,
                                            size_t row_offset) const {
  // Accumulate rows of m per dictionary entry across clipped runs, then
  // expand through the dictionary once.
  const size_t k = m.cols();
  const size_t entries = dict_.num_entries();
  double* acc = RleScratch(entries * k);
  std::fill(acc, acc + entries * k, 0.0);
  for (size_t r = FirstRunReaching(row_begin); r < runs_.size(); ++r) {
    const Run& run = runs_[r];
    if (run.start >= row_end) break;
    const size_t lo = std::max<size_t>(run.start, row_begin);
    const size_t hi = std::min<size_t>(run.start + run.length, row_end);
    double* dst = acc + run.code * k;
    for (size_t i = lo; i < hi; ++i) {
      KWideAdd(dst, m.Row(i - row_offset), k);
    }
  }
  const size_t w = columns_.size();
  for (size_t e = 0; e < entries; ++e) {
    const double* entry = dict_.Entry(e);
    const double* a = acc + e * k;
    for (size_t j = 0; j < w; ++j) {
      const double ej = entry[j];
      if (ej == 0.0) continue;
      KWideAxpy(out + columns_[j] * k, ej, a, k);
    }
  }
}

double RleGroup::SumRange(size_t row_begin, size_t row_end) const {
  const size_t w = columns_.size();
  double acc = 0;
  for (size_t r = FirstRunReaching(row_begin); r < runs_.size(); ++r) {
    const Run& run = runs_[r];
    if (run.start >= row_end) break;
    const size_t lo = std::max<size_t>(run.start, row_begin);
    const size_t hi = std::min<size_t>(run.start + run.length, row_end);
    const double* entry = dict_.Entry(run.code);
    double tuple_sum = 0;
    for (size_t j = 0; j < w; ++j) tuple_sum += entry[j];
    acc += tuple_sum * static_cast<double>(hi - lo);
  }
  return acc;
}

void RleGroup::AddRowSquaredNormsRange(const double* preagg, double* out,
                                       size_t row_begin, size_t row_end) const {
  const double* p = EnsureSquaredNormPreagg(preagg);
  for (size_t r = FirstRunReaching(row_begin); r < runs_.size(); ++r) {
    const Run& run = runs_[r];
    if (run.start >= row_end) break;
    const double add = p[run.code];
    if (add == 0.0) continue;
    const size_t lo = std::max<size_t>(run.start, row_begin);
    const size_t hi = std::min<size_t>(run.start + run.length, row_end);
    for (size_t i = lo; i < hi; ++i) out[i] += add;
  }
}

}  // namespace dmml::cla
