#include "cla/rle_group.h"

namespace dmml::cla {

namespace {
bool EntryIsZero(const double* entry, size_t w) {
  for (size_t j = 0; j < w; ++j) {
    if (entry[j] != 0.0) return false;
  }
  return true;
}
}  // namespace

RleGroup::RleGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns)
    : ColumnGroup(std::move(columns)), n_(m.rows()) {
  std::vector<uint32_t> codes;
  BuildDictionary(m, columns_, &dict_, &codes);

  const size_t w = columns_.size();
  // Zero-suppression: drop runs whose dictionary tuple is entirely zero.
  std::vector<bool> is_zero(dict_.num_entries());
  for (size_t e = 0; e < dict_.num_entries(); ++e) {
    is_zero[e] = EntryIsZero(dict_.Entry(e), w);
  }

  size_t i = 0;
  while (i < n_) {
    size_t j = i;
    while (j + 1 < n_ && codes[j + 1] == codes[i]) ++j;
    if (!is_zero[codes[i]]) {
      runs_.push_back({static_cast<uint32_t>(i),
                       static_cast<uint32_t>(j - i + 1), codes[i]});
    }
    i = j + 1;
  }
}

size_t RleGroup::SizeInBytes() const {
  return dict_.SizeInBytes() + runs_.size() * sizeof(Run) +
         columns_.size() * sizeof(uint32_t);
}

size_t RleGroup::EstimateSize(size_t num_nonzero_runs, size_t cardinality,
                              size_t width) {
  return cardinality * width * sizeof(double) + num_nonzero_runs * sizeof(Run) +
         width * sizeof(uint32_t);
}

void RleGroup::Decompress(la::DenseMatrix* out) const {
  const size_t w = columns_.size();
  for (const Run& run : runs_) {
    const double* entry = dict_.Entry(run.code);
    for (uint32_t i = run.start; i < run.start + run.length; ++i) {
      for (size_t j = 0; j < w; ++j) out->At(i, columns_[j]) = entry[j];
    }
  }
}

void RleGroup::MultiplyVector(const double* v, double* y, size_t n) const {
  (void)n;
  const size_t w = columns_.size();
  std::vector<double> precomp(dict_.num_entries());
  for (size_t e = 0; e < precomp.size(); ++e) {
    const double* entry = dict_.Entry(e);
    double acc = 0;
    for (size_t j = 0; j < w; ++j) acc += entry[j] * v[columns_[j]];
    precomp[e] = acc;
  }
  for (const Run& run : runs_) {
    const double add = precomp[run.code];
    if (add == 0.0) continue;
    double* dst = y + run.start;
    for (uint32_t k = 0; k < run.length; ++k) dst[k] += add;
  }
}

void RleGroup::VectorMultiply(const double* u, size_t n, double* out) const {
  (void)n;
  // Per-entry accumulation of u over each run, then one dictionary expand.
  std::vector<double> acc(dict_.num_entries(), 0.0);
  for (const Run& run : runs_) {
    double s = 0;
    const double* src = u + run.start;
    for (uint32_t k = 0; k < run.length; ++k) s += src[k];
    acc[run.code] += s;
  }
  const size_t w = columns_.size();
  for (size_t e = 0; e < acc.size(); ++e) {
    if (acc[e] == 0.0) continue;
    const double* entry = dict_.Entry(e);
    for (size_t j = 0; j < w; ++j) out[columns_[j]] += acc[e] * entry[j];
  }
}

double RleGroup::Sum() const {
  const size_t w = columns_.size();
  double acc = 0;
  for (const Run& run : runs_) {
    const double* entry = dict_.Entry(run.code);
    double tuple_sum = 0;
    for (size_t j = 0; j < w; ++j) tuple_sum += entry[j];
    acc += tuple_sum * static_cast<double>(run.length);
  }
  return acc;
}

void RleGroup::AddRowSquaredNorms(double* out, size_t n) const {
  (void)n;
  const size_t w = columns_.size();
  std::vector<double> norms(dict_.num_entries());
  for (size_t e = 0; e < norms.size(); ++e) {
    const double* entry = dict_.Entry(e);
    double acc = 0;
    for (size_t j = 0; j < w; ++j) acc += entry[j] * entry[j];
    norms[e] = acc;
  }
  for (const Run& run : runs_) {
    const double add = norms[run.code];
    if (add == 0.0) continue;
    double* dst = out + run.start;
    for (uint32_t k = 0; k < run.length; ++k) dst[k] += add;
  }
}

}  // namespace dmml::cla
