#include "cla/ole_group.h"

namespace dmml::cla {

namespace {
bool EntryIsZero(const double* entry, size_t w) {
  for (size_t j = 0; j < w; ++j) {
    if (entry[j] != 0.0) return false;
  }
  return true;
}
}  // namespace

OleGroup::OleGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns)
    : ColumnGroup(std::move(columns)), n_(m.rows()) {
  GroupDictionary full_dict;
  std::vector<uint32_t> codes;
  BuildDictionary(m, columns_, &full_dict, &codes);

  // Re-number the dictionary without all-zero tuples.
  const size_t w = columns_.size();
  std::vector<int32_t> remap(full_dict.num_entries(), -1);
  dict_.width = w;
  for (size_t e = 0; e < full_dict.num_entries(); ++e) {
    if (EntryIsZero(full_dict.Entry(e), w)) continue;
    remap[e] = static_cast<int32_t>(dict_.num_entries());
    const double* entry = full_dict.Entry(e);
    dict_.values.insert(dict_.values.end(), entry, entry + w);
  }
  offsets_.resize(dict_.num_entries());
  for (size_t i = 0; i < n_; ++i) {
    int32_t e = remap[codes[i]];
    if (e >= 0) offsets_[static_cast<size_t>(e)].push_back(static_cast<uint32_t>(i));
  }
}

size_t OleGroup::SizeInBytes() const {
  size_t bytes = dict_.SizeInBytes() + columns_.size() * sizeof(uint32_t);
  for (const auto& list : offsets_) {
    bytes += list.size() * sizeof(uint32_t) + sizeof(uint32_t);  // +list length.
  }
  return bytes;
}

size_t OleGroup::EstimateSize(size_t num_nonzero_rows, size_t cardinality,
                              size_t width) {
  return cardinality * width * sizeof(double) +
         num_nonzero_rows * sizeof(uint32_t) + cardinality * sizeof(uint32_t) +
         width * sizeof(uint32_t);
}

void OleGroup::Decompress(la::DenseMatrix* out) const {
  const size_t w = columns_.size();
  for (size_t e = 0; e < offsets_.size(); ++e) {
    const double* entry = dict_.Entry(e);
    for (uint32_t i : offsets_[e]) {
      for (size_t j = 0; j < w; ++j) out->At(i, columns_[j]) = entry[j];
    }
  }
}

void OleGroup::MultiplyVector(const double* v, double* y, size_t n) const {
  (void)n;
  const size_t w = columns_.size();
  for (size_t e = 0; e < offsets_.size(); ++e) {
    const double* entry = dict_.Entry(e);
    double add = 0;
    for (size_t j = 0; j < w; ++j) add += entry[j] * v[columns_[j]];
    if (add == 0.0) continue;
    for (uint32_t i : offsets_[e]) y[i] += add;
  }
}

void OleGroup::VectorMultiply(const double* u, size_t n, double* out) const {
  (void)n;
  const size_t w = columns_.size();
  for (size_t e = 0; e < offsets_.size(); ++e) {
    double acc = 0;
    for (uint32_t i : offsets_[e]) acc += u[i];
    if (acc == 0.0) continue;
    const double* entry = dict_.Entry(e);
    for (size_t j = 0; j < w; ++j) out[columns_[j]] += acc * entry[j];
  }
}

double OleGroup::Sum() const {
  const size_t w = columns_.size();
  double acc = 0;
  for (size_t e = 0; e < offsets_.size(); ++e) {
    const double* entry = dict_.Entry(e);
    double tuple_sum = 0;
    for (size_t j = 0; j < w; ++j) tuple_sum += entry[j];
    acc += tuple_sum * static_cast<double>(offsets_[e].size());
  }
  return acc;
}

void OleGroup::AddRowSquaredNorms(double* out, size_t n) const {
  (void)n;
  const size_t w = columns_.size();
  for (size_t e = 0; e < offsets_.size(); ++e) {
    const double* entry = dict_.Entry(e);
    double acc = 0;
    for (size_t j = 0; j < w; ++j) acc += entry[j] * entry[j];
    if (acc == 0.0) continue;
    for (uint32_t i : offsets_[e]) out[i] += acc;
  }
}

}  // namespace dmml::cla
