#include "cla/ole_group.h"

#include <algorithm>
#include <vector>

#include "cla/kwide.h"

namespace dmml::cla {

namespace {
bool EntryIsZero(const double* entry, size_t w) {
  for (size_t j = 0; j < w; ++j) {
    if (entry[j] != 0.0) return false;
  }
  return true;
}

thread_local std::vector<double> t_ole_acc;

double* OleScratch(size_t need) {
  if (t_ole_acc.size() < need) t_ole_acc.resize(need);
  return t_ole_acc.data();
}
}  // namespace

OleGroup::OleGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns)
    : ColumnGroup(std::move(columns), m.rows()) {
  GroupDictionary full_dict;
  std::vector<uint32_t> codes;
  BuildDictionary(m, columns_, &full_dict, &codes);

  // Re-number the dictionary without all-zero tuples.
  const size_t w = columns_.size();
  std::vector<int32_t> remap(full_dict.num_entries(), -1);
  dict_.width = w;
  for (size_t e = 0; e < full_dict.num_entries(); ++e) {
    if (EntryIsZero(full_dict.Entry(e), w)) continue;
    remap[e] = static_cast<int32_t>(dict_.num_entries());
    const double* entry = full_dict.Entry(e);
    dict_.values.insert(dict_.values.end(), entry, entry + w);
  }

  // Counting sort into the flat CSR layout: per-entry counts, prefix sums,
  // then a second placement pass. Row order within each list stays sorted.
  const size_t entries = dict_.num_entries();
  std::vector<uint32_t> counts(entries, 0);
  for (size_t i = 0; i < n_; ++i) {
    int32_t e = remap[codes[i]];
    if (e >= 0) ++counts[static_cast<size_t>(e)];
  }
  offset_begin_.resize(entries + 1);
  offset_begin_[0] = 0;
  for (size_t e = 0; e < entries; ++e) {
    offset_begin_[e + 1] = offset_begin_[e] + counts[e];
  }
  offset_data_.resize(offset_begin_[entries]);
  std::vector<uint32_t> cursor(offset_begin_.begin(), offset_begin_.end() - 1);
  for (size_t i = 0; i < n_; ++i) {
    int32_t e = remap[codes[i]];
    if (e >= 0) {
      offset_data_[cursor[static_cast<size_t>(e)]++] =
          static_cast<uint32_t>(i);
    }
  }
}

void OleGroup::EntrySlice(size_t e, size_t row_begin, size_t row_end,
                          size_t* begin, size_t* end) const {
  const uint32_t* lo = offset_data_.data() + offset_begin_[e];
  const uint32_t* hi = offset_data_.data() + offset_begin_[e + 1];
  const uint32_t* first =
      row_begin == 0
          ? lo
          : std::lower_bound(lo, hi, static_cast<uint32_t>(row_begin));
  const uint32_t* last =
      row_end >= n_ ? hi
                    : std::lower_bound(first, hi,
                                       static_cast<uint32_t>(row_end));
  *begin = static_cast<size_t>(first - offset_data_.data());
  *end = static_cast<size_t>(last - offset_data_.data());
}

size_t OleGroup::SizeInBytes() const {
  return dict_.SizeInBytes() + columns_.size() * sizeof(uint32_t) +
         offset_data_.size() * sizeof(uint32_t) +
         offset_begin_.size() * sizeof(uint32_t);
}

size_t OleGroup::EstimateSize(size_t num_nonzero_rows, size_t cardinality,
                              size_t width) {
  return cardinality * width * sizeof(double) +
         num_nonzero_rows * sizeof(uint32_t) + cardinality * sizeof(uint32_t) +
         width * sizeof(uint32_t);
}

void OleGroup::DecompressRange(la::DenseMatrix* out, size_t row_begin,
                               size_t row_end, size_t row_offset) const {
  const size_t w = columns_.size();
  for (size_t e = 0; e < dict_.num_entries(); ++e) {
    const double* entry = dict_.Entry(e);
    size_t begin, end;
    EntrySlice(e, row_begin, row_end, &begin, &end);
    for (size_t p = begin; p < end; ++p) {
      const size_t i = offset_data_[p] - row_offset;
      for (size_t j = 0; j < w; ++j) out->At(i, columns_[j]) = entry[j];
    }
  }
}

void OleGroup::MultiplyVectorRange(const double* v, const double* preagg,
                                   double* y, size_t row_begin,
                                   size_t row_end) const {
  const double* p = EnsureVectorPreagg(v, preagg);
  for (size_t e = 0; e < dict_.num_entries(); ++e) {
    const double add = p[e];
    if (add == 0.0) continue;
    size_t begin, end;
    EntrySlice(e, row_begin, row_end, &begin, &end);
    for (size_t q = begin; q < end; ++q) y[offset_data_[q]] += add;
  }
}

void OleGroup::VectorMultiplyRange(const double* u, double* out,
                                   size_t row_begin, size_t row_end) const {
  const size_t w = columns_.size();
  for (size_t e = 0; e < dict_.num_entries(); ++e) {
    size_t begin, end;
    EntrySlice(e, row_begin, row_end, &begin, &end);
    double acc = 0;
    for (size_t q = begin; q < end; ++q) acc += u[offset_data_[q]];
    if (acc == 0.0) continue;
    const double* entry = dict_.Entry(e);
    for (size_t j = 0; j < w; ++j) out[columns_[j]] += acc * entry[j];
  }
}

void OleGroup::MultiplyMatrixRange(const la::DenseMatrix& m,
                                   const double* preagg, la::DenseMatrix* y,
                                   size_t row_begin, size_t row_end,
                                   size_t row_offset) const {
  const size_t k = m.cols();
  const double* p = EnsureMatrixPreagg(m, preagg);
  for (size_t e = 0; e < dict_.num_entries(); ++e) {
    const double* src = p + e * k;
    size_t begin, end;
    EntrySlice(e, row_begin, row_end, &begin, &end);
    for (size_t q = begin; q < end; ++q) {
      KWideAdd(y->Row(offset_data_[q] - row_offset), src, k);
    }
  }
}

void OleGroup::TransposeMultiplyMatrixRange(const la::DenseMatrix& m,
                                            double* out, size_t row_begin,
                                            size_t row_end,
                                            size_t row_offset) const {
  // Accumulate rows of m per dictionary entry, then expand through the
  // dictionary once.
  const size_t w = columns_.size();
  const size_t k = m.cols();
  double* acc = OleScratch(k);
  for (size_t e = 0; e < dict_.num_entries(); ++e) {
    size_t begin, end;
    EntrySlice(e, row_begin, row_end, &begin, &end);
    if (begin == end) continue;
    std::fill(acc, acc + k, 0.0);
    for (size_t q = begin; q < end; ++q) {
      KWideAdd(acc, m.Row(offset_data_[q] - row_offset), k);
    }
    const double* entry = dict_.Entry(e);
    for (size_t j = 0; j < w; ++j) {
      const double ej = entry[j];
      if (ej == 0.0) continue;
      KWideAxpy(out + columns_[j] * k, ej, acc, k);
    }
  }
}

double OleGroup::SumRange(size_t row_begin, size_t row_end) const {
  const size_t w = columns_.size();
  double acc = 0;
  for (size_t e = 0; e < dict_.num_entries(); ++e) {
    size_t begin, end;
    EntrySlice(e, row_begin, row_end, &begin, &end);
    if (begin == end) continue;
    const double* entry = dict_.Entry(e);
    double tuple_sum = 0;
    for (size_t j = 0; j < w; ++j) tuple_sum += entry[j];
    acc += tuple_sum * static_cast<double>(end - begin);
  }
  return acc;
}

void OleGroup::AddRowSquaredNormsRange(const double* preagg, double* out,
                                       size_t row_begin, size_t row_end) const {
  const double* p = EnsureSquaredNormPreagg(preagg);
  for (size_t e = 0; e < dict_.num_entries(); ++e) {
    const double add = p[e];
    if (add == 0.0) continue;
    size_t begin, end;
    EntrySlice(e, row_begin, row_end, &begin, &end);
    for (size_t q = begin; q < end; ++q) out[offset_data_[q]] += add;
  }
}

}  // namespace dmml::cla
