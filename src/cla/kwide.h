/// \file kwide.h
/// \brief k-wide row primitives shared by the column-group matrix kernels.
///
/// Every ranged matrix kernel spends its time in one of two element-wise
/// loops over the k output columns: dst[c] += src[c] (code scatter /
/// accumulate) and dst[c] += a * src[c] (dictionary expansion). The trip
/// count k is only known at run time, which keeps the compiler's cheap
/// vectorizer out of the plain loop; the fixed 4-wide bodies below give it
/// a vectorizable kernel without changing any FP result — each dst[c] is an
/// independent accumulation, so unrolling reassociates nothing.
#ifndef DMML_CLA_KWIDE_H_
#define DMML_CLA_KWIDE_H_

#include <cstddef>

namespace dmml::cla {

/// dst[c] += src[c] for c in [0, k).
inline void KWideAdd(double* dst, const double* src, size_t k) {
  size_t c = 0;
  for (; c + 4 <= k; c += 4) {
    dst[c] += src[c];
    dst[c + 1] += src[c + 1];
    dst[c + 2] += src[c + 2];
    dst[c + 3] += src[c + 3];
  }
  for (; c < k; ++c) dst[c] += src[c];
}

/// dst[c] += a * src[c] for c in [0, k).
inline void KWideAxpy(double* dst, double a, const double* src, size_t k) {
  size_t c = 0;
  for (; c + 4 <= k; c += 4) {
    dst[c] += a * src[c];
    dst[c + 1] += a * src[c + 1];
    dst[c + 2] += a * src[c + 2];
    dst[c + 3] += a * src[c + 3];
  }
  for (; c < k; ++c) dst[c] += a * src[c];
}

}  // namespace dmml::cla

#endif  // DMML_CLA_KWIDE_H_
