/// \file compressed_kmeans.h
/// \brief Lloyd's k-means executed entirely on a compressed matrix — the
/// CLA execution model: iterative ML without decompression.
///
/// Uses the same distance decomposition as the factorized variant
/// (rownorms − 2·X·Cᵀ + colnorms), with X·Cᵀ evaluated by the compressed
/// MultiplyMatrix kernel and the update step by TransposeMultiplyMatrix.
#ifndef DMML_CLA_COMPRESSED_KMEANS_H_
#define DMML_CLA_COMPRESSED_KMEANS_H_

#include "cla/compressed_matrix.h"
#include "ml/kmeans.h"
#include "util/result.h"

namespace dmml::cla {

/// \brief Runs Lloyd's k-means on the logical content of `x` using only
/// compressed operators. Initial centers are decompressed sample rows.
/// The iteration loop uses the `...Into` compressed kernels with hoisted
/// buffers (zero steady-state allocations); a pool parallelizes every
/// compressed op.
Result<ml::KMeansModel> TrainCompressedKMeans(const CompressedMatrix& x,
                                              const ml::KMeansConfig& config,
                                              ThreadPool* pool = nullptr);

}  // namespace dmml::cla

#endif  // DMML_CLA_COMPRESSED_KMEANS_H_
