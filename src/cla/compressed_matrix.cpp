#include "cla/compressed_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "cla/ddc_group.h"
#include "cla/ole_group.h"
#include "cla/rle_group.h"
#include "cla/uncompressed_group.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dmml::cla {

using la::DenseMatrix;

ColumnStats CompressedMatrix::AnalyzeColumn(const DenseMatrix& dense, size_t col) {
  const size_t n = dense.rows();
  ColumnStats stats;
  std::unordered_set<double> distinct;
  size_t i = 0;
  while (i < n) {
    double v = dense.At(i, col);
    distinct.insert(v);
    size_t j = i;
    while (j + 1 < n && dense.At(j + 1, col) == v) ++j;
    if (v != 0.0) {
      stats.num_runs++;
      stats.num_nonzero += j - i + 1;
    }
    i = j + 1;
  }
  stats.cardinality = distinct.size();
  stats.uc_size = n * sizeof(double) + sizeof(uint32_t);
  stats.ddc_size = DdcGroup::EstimateSize(n, stats.cardinality, 1);
  // RLE/OLE dictionaries exclude the zero tuple.
  size_t nz_card = stats.cardinality - (distinct.count(0.0) ? 1 : 0);
  stats.rle_size = RleGroup::EstimateSize(stats.num_runs, nz_card, 1);
  stats.ole_size = OleGroup::EstimateSize(stats.num_nonzero, nz_card, 1);
  return stats;
}

ColumnStats CompressedMatrix::AnalyzeColumnSampled(const DenseMatrix& dense,
                                                   size_t col, size_t sample_rows) {
  const size_t n = dense.rows();
  if (sample_rows == 0 || sample_rows >= n) return AnalyzeColumn(dense, col);
  const size_t stride = n / sample_rows;

  // Sample statistics over evenly-spaced rows; adjacent-pair comparisons
  // estimate the run density at the sampled stride.
  std::unordered_map<double, size_t> freq;
  size_t sampled = 0, value_changes = 0, nonzero = 0;
  double prev = 0;
  bool has_prev = false;
  for (size_t i = 0; i < n; i += stride) {
    double v = dense.At(i, col);
    freq[v]++;
    ++sampled;
    if (v != 0.0) ++nonzero;
    if (has_prev && v != prev) ++value_changes;
    prev = v;
    has_prev = true;
  }

  ColumnStats stats;
  // Chao1 cardinality estimate: d_obs + f1^2 / (2 f2), capped by n.
  size_t f1 = 0, f2 = 0;
  bool zero_seen = freq.count(0.0) > 0;
  for (const auto& [_, c] : freq) {
    if (c == 1) ++f1;
    else if (c == 2) ++f2;
  }
  double chao = static_cast<double>(freq.size());
  if (f1 > 0) {
    chao += static_cast<double>(f1) * static_cast<double>(f1) /
            (2.0 * static_cast<double>(f2 > 0 ? f2 : 1));
  }
  stats.cardinality = static_cast<size_t>(std::min<double>(chao, static_cast<double>(n)));
  // Runs: the change rate among sampled neighbors scales to full length.
  double change_rate =
      sampled > 1 ? static_cast<double>(value_changes) / static_cast<double>(sampled - 1)
                  : 0.0;
  // At stride > 1 the sampled change rate overestimates per-row changes for
  // clustered data but is exact in the limit of random order — the same
  // upper-bound bias the CLA estimators accept.
  stats.num_runs = std::max<size_t>(
      1, static_cast<size_t>(change_rate * static_cast<double>(n)));
  stats.num_nonzero = static_cast<size_t>(
      static_cast<double>(nonzero) / static_cast<double>(sampled) *
      static_cast<double>(n));

  stats.uc_size = n * sizeof(double) + sizeof(uint32_t);
  stats.ddc_size = DdcGroup::EstimateSize(n, stats.cardinality, 1);
  size_t nz_card = stats.cardinality - (zero_seen ? 1 : 0);
  if (nz_card == 0) nz_card = 1;
  stats.rle_size = RleGroup::EstimateSize(stats.num_runs, nz_card, 1);
  stats.ole_size = OleGroup::EstimateSize(stats.num_nonzero, nz_card, 1);
  return stats;
}

namespace {

GroupFormat BestFormat(const ColumnStats& stats, double min_gain, size_t* best_size) {
  GroupFormat fmt = GroupFormat::kUncompressed;
  size_t best = stats.uc_size;
  auto consider = [&](GroupFormat f, size_t size) {
    if (size < best) {
      best = size;
      fmt = f;
    }
  };
  consider(GroupFormat::kDdc, stats.ddc_size);
  consider(GroupFormat::kRle, stats.rle_size);
  consider(GroupFormat::kOle, stats.ole_size);
  if (static_cast<double>(best) >
      min_gain * static_cast<double>(stats.uc_size)) {
    fmt = GroupFormat::kUncompressed;
    best = stats.uc_size;
  }
  *best_size = best;
  return fmt;
}

std::unique_ptr<ColumnGroup> BuildGroup(const DenseMatrix& dense,
                                        std::vector<uint32_t> cols, GroupFormat fmt) {
  switch (fmt) {
    case GroupFormat::kDdc: return std::make_unique<DdcGroup>(dense, std::move(cols));
    case GroupFormat::kRle: return std::make_unique<RleGroup>(dense, std::move(cols));
    case GroupFormat::kOle: return std::make_unique<OleGroup>(dense, std::move(cols));
    case GroupFormat::kUncompressed:
      return std::make_unique<UncompressedGroup>(dense, std::move(cols));
  }
  return nullptr;
}

// Exact joint cardinality of a column pair.
size_t JointCardinality(const DenseMatrix& dense, uint32_t a, uint32_t b) {
  std::unordered_set<std::string> distinct;
  std::string key(2 * sizeof(double), '\0');
  for (size_t i = 0; i < dense.rows(); ++i) {
    double va = dense.At(i, a), vb = dense.At(i, b);
    std::memcpy(key.data(), &va, sizeof(double));
    std::memcpy(key.data() + sizeof(double), &vb, sizeof(double));
    distinct.insert(key);
  }
  return distinct.size();
}

}  // namespace

namespace {

// Records planner outcomes: how many columns landed in each encoding, how
// many groups were co-coded, and the achieved compression ratio.
void RecordCompressionMetrics(const CompressedMatrix& cm) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter* per_format[] = {
      reg.GetCounter("cla.columns.uncompressed"),
      reg.GetCounter("cla.columns.ddc"),
      reg.GetCounter("cla.columns.rle"),
      reg.GetCounter("cla.columns.ole"),
  };
  for (const auto& g : cm.groups()) {
    size_t f = static_cast<size_t>(g->format());
    if (f < 4) per_format[f]->Add(g->columns().size());
    if (g->columns().size() > 1) DMML_COUNTER_INC("cla.cocoded_groups");
  }
  DMML_GAUGE_SET("cla.compression_ratio", cm.CompressionRatio());
}

}  // namespace

CompressedMatrix CompressedMatrix::Compress(const DenseMatrix& dense,
                                            const CompressionOptions& options) {
  DMML_TRACE_SPAN("cla.compress");
  CompressedMatrix cm;
  cm.rows_ = dense.rows();
  cm.cols_ = dense.cols();

  struct Plan {
    uint32_t col;
    GroupFormat fmt;
    size_t size;
    size_t cardinality;
    bool merged = false;
  };
  std::vector<Plan> plans;
  plans.reserve(dense.cols());
  for (size_t c = 0; c < dense.cols(); ++c) {
    ColumnStats stats = options.sample_rows > 0
                            ? AnalyzeColumnSampled(dense, c, options.sample_rows)
                            : AnalyzeColumn(dense, c);
    size_t best_size = 0;
    GroupFormat fmt = BestFormat(stats, options.min_compression_gain, &best_size);
    plans.push_back({static_cast<uint32_t>(c), fmt, best_size, stats.cardinality});
  }

  // Greedy pairwise co-coding among DDC-compressible columns with small
  // dictionaries: merge when the joint DDC size undercuts the separate plans.
  if (options.enable_cocoding) {
    std::vector<size_t> candidates;
    for (size_t p = 0; p < plans.size(); ++p) {
      if (plans[p].fmt == GroupFormat::kDdc) candidates.push_back(p);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](size_t a, size_t b) {
                return plans[a].cardinality < plans[b].cardinality;
              });
    for (size_t k = 0; k + 1 < candidates.size(); k += 1) {
      size_t pa = candidates[k];
      if (plans[pa].merged) continue;
      for (size_t l = k + 1; l < candidates.size(); ++l) {
        size_t pb = candidates[l];
        if (plans[pb].merged) continue;
        size_t joint_card = JointCardinality(dense, plans[pa].col, plans[pb].col);
        size_t joint_size = DdcGroup::EstimateSize(dense.rows(), joint_card, 2);
        if (static_cast<double>(joint_size) <=
            options.cocode_threshold *
                static_cast<double>(plans[pa].size + plans[pb].size)) {
          cm.groups_.push_back(BuildGroup(dense, {plans[pa].col, plans[pb].col},
                                          GroupFormat::kDdc));
          plans[pa].merged = plans[pb].merged = true;
          break;
        }
      }
    }
  }

  for (const Plan& plan : plans) {
    if (plan.merged) continue;
    cm.groups_.push_back(BuildGroup(dense, {plan.col}, plan.fmt));
  }
  RecordCompressionMetrics(cm);
  return cm;
}

size_t CompressedMatrix::SizeInBytes() const {
  size_t bytes = 0;
  for (const auto& g : groups_) bytes += g->SizeInBytes();
  return bytes;
}

double CompressedMatrix::CompressionRatio() const {
  size_t dense_bytes = rows_ * cols_ * sizeof(double);
  size_t compressed = SizeInBytes();
  return compressed ? static_cast<double>(dense_bytes) /
                          static_cast<double>(compressed)
                    : 0.0;
}

Result<DenseMatrix> CompressedMatrix::MultiplyVector(const DenseMatrix& v) const {
  if (v.rows() != cols_ || v.cols() != 1) {
    return Status::InvalidArgument("MultiplyVector expects a (cols x 1) vector");
  }
  DMML_TRACE_SPAN("cla.matvec");
  DMML_COUNTER_INC("cla.matvec_calls");
  DenseMatrix y(rows_, 1);
  for (const auto& g : groups_) g->MultiplyVector(v.data(), y.data(), rows_);
  return y;
}

Result<DenseMatrix> CompressedMatrix::VectorMultiply(const DenseMatrix& u) const {
  if (u.rows() != rows_ || u.cols() != 1) {
    return Status::InvalidArgument("VectorMultiply expects a (rows x 1) vector");
  }
  DenseMatrix y(1, cols_);
  for (const auto& g : groups_) g->VectorMultiply(u.data(), rows_, y.data());
  return y;
}

Result<DenseMatrix> CompressedMatrix::MultiplyMatrix(const DenseMatrix& m) const {
  if (m.rows() != cols_) {
    return Status::InvalidArgument("MultiplyMatrix expects a (cols x k) matrix");
  }
  DenseMatrix y(rows_, m.cols());
  for (const auto& g : groups_) g->MultiplyMatrix(m, &y);
  return y;
}

Result<DenseMatrix> CompressedMatrix::TransposeMultiplyMatrix(
    const DenseMatrix& m) const {
  if (m.rows() != rows_) {
    return Status::InvalidArgument("TransposeMultiplyMatrix expects a (rows x k) matrix");
  }
  DenseMatrix y(cols_, m.cols());
  for (const auto& g : groups_) g->TransposeMultiplyMatrix(m, &y);
  return y;
}

DenseMatrix CompressedMatrix::RowSquaredNorms() const {
  DenseMatrix out(rows_, 1);
  for (const auto& g : groups_) g->AddRowSquaredNorms(out.data(), rows_);
  return out;
}

double CompressedMatrix::Sum() const {
  double acc = 0;
  for (const auto& g : groups_) acc += g->Sum();
  return acc;
}

DenseMatrix CompressedMatrix::Decompress() const {
  // Falling back to the dense form forfeits the compressed-ops win; worth
  // watching in production workloads.
  DMML_COUNTER_INC("cla.decompress_fallback");
  DMML_TRACE_SPAN("cla.decompress");
  DenseMatrix out(rows_, cols_);
  for (const auto& g : groups_) g->Decompress(&out);
  return out;
}

std::string CompressedMatrix::FormatSummary() const {
  std::ostringstream os;
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (i) os << " ";
    os << "[";
    const auto& cols = groups_[i]->columns();
    for (size_t j = 0; j < cols.size(); ++j) {
      if (j) os << ",";
      os << cols[j];
    }
    os << "]:" << GroupFormatName(groups_[i]->format()) << "("
       << groups_[i]->SizeInBytes() << "B)";
  }
  return os.str();
}

}  // namespace dmml::cla
