#include "cla/compressed_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "cla/ddc_group.h"
#include "cla/ole_group.h"
#include "cla/rle_group.h"
#include "cla/uncompressed_group.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dmml::cla {

using la::DenseMatrix;

ColumnStats CompressedMatrix::AnalyzeColumn(const DenseMatrix& dense, size_t col) {
  const size_t n = dense.rows();
  ColumnStats stats;
  std::unordered_set<double> distinct;
  size_t i = 0;
  while (i < n) {
    double v = dense.At(i, col);
    distinct.insert(v);
    size_t j = i;
    while (j + 1 < n && dense.At(j + 1, col) == v) ++j;
    if (v != 0.0) {
      stats.num_runs++;
      stats.num_nonzero += j - i + 1;
    }
    i = j + 1;
  }
  stats.cardinality = distinct.size();
  stats.uc_size = n * sizeof(double) + sizeof(uint32_t);
  stats.ddc_size = DdcGroup::EstimateSize(n, stats.cardinality, 1);
  // RLE/OLE dictionaries exclude the zero tuple.
  size_t nz_card = stats.cardinality - (distinct.count(0.0) ? 1 : 0);
  stats.rle_size = RleGroup::EstimateSize(stats.num_runs, nz_card, 1);
  stats.ole_size = OleGroup::EstimateSize(stats.num_nonzero, nz_card, 1);
  return stats;
}

ColumnStats CompressedMatrix::AnalyzeColumnSampled(const DenseMatrix& dense,
                                                   size_t col, size_t sample_rows) {
  const size_t n = dense.rows();
  if (sample_rows == 0 || sample_rows >= n) return AnalyzeColumn(dense, col);
  const size_t stride = n / sample_rows;

  // Sample statistics over evenly-spaced rows; adjacent-pair comparisons
  // estimate the run density at the sampled stride.
  std::unordered_map<double, size_t> freq;
  size_t sampled = 0, value_changes = 0, nonzero = 0;
  double prev = 0;
  bool has_prev = false;
  for (size_t i = 0; i < n; i += stride) {
    double v = dense.At(i, col);
    freq[v]++;
    ++sampled;
    if (v != 0.0) ++nonzero;
    if (has_prev && v != prev) ++value_changes;
    prev = v;
    has_prev = true;
  }

  ColumnStats stats;
  // Chao1 cardinality estimate: d_obs + f1^2 / (2 f2), capped by n.
  size_t f1 = 0, f2 = 0;
  bool zero_seen = freq.count(0.0) > 0;
  for (const auto& [_, c] : freq) {
    if (c == 1) ++f1;
    else if (c == 2) ++f2;
  }
  double chao = static_cast<double>(freq.size());
  if (f1 > 0) {
    chao += static_cast<double>(f1) * static_cast<double>(f1) /
            (2.0 * static_cast<double>(f2 > 0 ? f2 : 1));
  }
  stats.cardinality = static_cast<size_t>(std::min<double>(chao, static_cast<double>(n)));
  // Runs: the change rate among sampled neighbors scales to full length.
  double change_rate =
      sampled > 1 ? static_cast<double>(value_changes) / static_cast<double>(sampled - 1)
                  : 0.0;
  // At stride > 1 the sampled change rate overestimates per-row changes for
  // clustered data but is exact in the limit of random order — the same
  // upper-bound bias the CLA estimators accept.
  stats.num_runs = std::max<size_t>(
      1, static_cast<size_t>(change_rate * static_cast<double>(n)));
  stats.num_nonzero = static_cast<size_t>(
      static_cast<double>(nonzero) / static_cast<double>(sampled) *
      static_cast<double>(n));

  stats.uc_size = n * sizeof(double) + sizeof(uint32_t);
  stats.ddc_size = DdcGroup::EstimateSize(n, stats.cardinality, 1);
  size_t nz_card = stats.cardinality - (zero_seen ? 1 : 0);
  if (nz_card == 0) nz_card = 1;
  stats.rle_size = RleGroup::EstimateSize(stats.num_runs, nz_card, 1);
  stats.ole_size = OleGroup::EstimateSize(stats.num_nonzero, nz_card, 1);
  return stats;
}

namespace {

// Rows per chunk for the row-partitioned ops: small enough to load-balance
// skewed group costs, large enough that pool dispatch stays negligible.
constexpr size_t kRowGrain = 2048;

// Row sub-block for the k-wide forward multiply: all groups scatter into the
// same (block x k) output window before moving on, so the window stays cache
// resident instead of the whole (chunk x k) output streaming once per group.
// Per output element the group accumulation order is unchanged, so blocking
// is bit-exact; the size is fixed (k-independent) so wide and width-1 runs
// chunk identically.
constexpr size_t kMatrixRowBlock = 256;

// Sentinel offset for groups without a dictionary (UC, empty OLE).
constexpr size_t kNoPreagg = static_cast<size_t>(-1);

// Per-op scratch, reused across calls on the calling thread: the hoisted
// dictionary pre-aggregation buffer (one slice per group) and the flat
// per-chunk partial buffers for the reduction ops. Workers only read preaggs
// and write disjoint partial slices, so sharing via raw pointer is race-free.
struct OpScratch {
  std::vector<double> preagg;
  std::vector<size_t> preagg_off;
  std::vector<double> partials;
};
thread_local OpScratch t_scratch;

using GroupVec = std::vector<std::unique_ptr<ColumnGroup>>;

// Lays out one preagg slice per dictionary-bearing group (entry count scaled
// by `per_entry`) and fills them, fanning per-group computation on the pool.
// Returns the buffer base; offsets land in t_scratch.preagg_off.
const double* ComputePreaggs(const GroupVec& groups, size_t per_entry,
                             ThreadPool* pool,
                             const std::function<void(const ColumnGroup&, double*)>& fill) {
  auto& s = t_scratch;
  s.preagg_off.assign(groups.size(), kNoPreagg);
  size_t total = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    const size_t entries = groups[g]->DictionarySize();
    if (entries == 0) continue;
    s.preagg_off[g] = total;
    total += entries * per_entry;
  }
  if (s.preagg.size() < total) s.preagg.resize(total);
  double* base = s.preagg.data();
  ParallelFor(pool, groups.size(), [&](size_t begin, size_t end) {
    for (size_t g = begin; g < end; ++g) {
      if (s.preagg_off[g] != kNoPreagg) fill(*groups[g], base + s.preagg_off[g]);
    }
  });
  return base;
}

double* PartialBuffer(size_t need) {
  auto& s = t_scratch;
  if (s.partials.size() < need) s.partials.resize(need);
  return s.partials.data();
}

// Reshapes `out`, counting buffer reuse the same way la::EnsureOut does for
// the dense kernels.
void EnsureClaOut(DenseMatrix* out, size_t rows, size_t cols) {
  if (out->Reshape(rows, cols)) {
    DMML_COUNTER_INC("cla.inplace.reuses");
  } else {
    DMML_COUNTER_INC("cla.inplace.allocs");
  }
}

void CountRangedCalls(size_t chunks, size_t num_groups) {
  if (chunks > 1) DMML_COUNTER_ADD("cla.ops.ranged_calls", chunks * num_groups);
}

GroupFormat BestFormat(const ColumnStats& stats, double min_gain, size_t* best_size) {
  GroupFormat fmt = GroupFormat::kUncompressed;
  size_t best = stats.uc_size;
  auto consider = [&](GroupFormat f, size_t size) {
    if (size < best) {
      best = size;
      fmt = f;
    }
  };
  consider(GroupFormat::kDdc, stats.ddc_size);
  consider(GroupFormat::kRle, stats.rle_size);
  consider(GroupFormat::kOle, stats.ole_size);
  if (static_cast<double>(best) >
      min_gain * static_cast<double>(stats.uc_size)) {
    fmt = GroupFormat::kUncompressed;
    best = stats.uc_size;
  }
  *best_size = best;
  return fmt;
}

std::unique_ptr<ColumnGroup> BuildGroup(const DenseMatrix& dense,
                                        std::vector<uint32_t> cols, GroupFormat fmt) {
  switch (fmt) {
    case GroupFormat::kDdc: return std::make_unique<DdcGroup>(dense, std::move(cols));
    case GroupFormat::kRle: return std::make_unique<RleGroup>(dense, std::move(cols));
    case GroupFormat::kOle: return std::make_unique<OleGroup>(dense, std::move(cols));
    case GroupFormat::kUncompressed:
      return std::make_unique<UncompressedGroup>(dense, std::move(cols));
  }
  return nullptr;
}

// Exact joint cardinality of a column pair.
size_t JointCardinality(const DenseMatrix& dense, uint32_t a, uint32_t b) {
  std::unordered_set<std::string> distinct;
  std::string key(2 * sizeof(double), '\0');
  for (size_t i = 0; i < dense.rows(); ++i) {
    double va = dense.At(i, a), vb = dense.At(i, b);
    std::memcpy(key.data(), &va, sizeof(double));
    std::memcpy(key.data() + sizeof(double), &vb, sizeof(double));
    distinct.insert(key);
  }
  return distinct.size();
}

// Records planner outcomes: how many columns landed in each encoding, how
// many groups were co-coded, and the achieved compression ratio.
void RecordCompressionMetrics(const CompressedMatrix& cm) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter* per_format[] = {
      reg.GetCounter("cla.columns.uncompressed"),
      reg.GetCounter("cla.columns.ddc"),
      reg.GetCounter("cla.columns.rle"),
      reg.GetCounter("cla.columns.ole"),
  };
  for (const auto& g : cm.groups()) {
    size_t f = static_cast<size_t>(g->format());
    if (f < 4) per_format[f]->Add(g->columns().size());
    if (g->columns().size() > 1) DMML_COUNTER_INC("cla.cocoded_groups");
  }
  DMML_GAUGE_SET("cla.compression_ratio", cm.CompressionRatio());
}

}  // namespace

CompressedMatrix CompressedMatrix::Compress(const DenseMatrix& dense,
                                            const CompressionOptions& options,
                                            ThreadPool* pool) {
  DMML_TRACE_SPAN("cla.compress");
  CompressedMatrix cm;
  cm.rows_ = dense.rows();
  cm.cols_ = dense.cols();

  struct Plan {
    uint32_t col;
    GroupFormat fmt;
    size_t size;
    size_t cardinality;
    bool merged = false;
  };

  // Phase 1 — per-column analysis, one independent O(n) pass per column.
  std::vector<Plan> plans(dense.cols());
  const size_t analyze_chunks = ParallelChunkCount(pool, dense.cols(), 1);
  ParallelForChunks(pool, dense.cols(), 1,
                    [&](size_t, size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      ColumnStats stats = options.sample_rows > 0
                              ? AnalyzeColumnSampled(dense, c, options.sample_rows)
                              : AnalyzeColumn(dense, c);
      size_t best_size = 0;
      GroupFormat fmt = BestFormat(stats, options.min_compression_gain, &best_size);
      plans[c] = {static_cast<uint32_t>(c), fmt, best_size, stats.cardinality};
    }
  });
  DMML_COUNTER_ADD("cla.compress.columns_analyzed", dense.cols());
  if (analyze_chunks > 1) {
    DMML_COUNTER_ADD("cla.compress.parallel_tasks", analyze_chunks);
  }

  // Phase 2 — greedy pairwise co-coding among DDC-compressible columns with
  // small dictionaries: merge when the joint DDC size undercuts the separate
  // plans. Pair scoring (exact joint cardinality, O(n) each) fans out per
  // candidate; picking the first qualifying partner in candidate order keeps
  // the outcome identical to the sequential greedy scan.
  std::vector<std::pair<uint32_t, uint32_t>> merges;
  if (options.enable_cocoding) {
    std::vector<size_t> candidates;
    for (size_t p = 0; p < plans.size(); ++p) {
      if (plans[p].fmt == GroupFormat::kDdc) candidates.push_back(p);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](size_t a, size_t b) {
                return plans[a].cardinality < plans[b].cardinality;
              });
    std::vector<size_t> pending;
    std::vector<char> qualifies;
    for (size_t k = 0; k + 1 < candidates.size(); k += 1) {
      size_t pa = candidates[k];
      if (plans[pa].merged) continue;
      pending.clear();
      for (size_t l = k + 1; l < candidates.size(); ++l) {
        if (!plans[candidates[l]].merged) pending.push_back(candidates[l]);
      }
      if (pending.empty()) continue;
      qualifies.assign(pending.size(), 0);
      const size_t score_chunks = ParallelChunkCount(pool, pending.size(), 1);
      ParallelForChunks(pool, pending.size(), 1,
                        [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          size_t pb = pending[i];
          size_t joint_card = JointCardinality(dense, plans[pa].col, plans[pb].col);
          size_t joint_size = DdcGroup::EstimateSize(dense.rows(), joint_card, 2);
          qualifies[i] = static_cast<double>(joint_size) <=
                         options.cocode_threshold *
                             static_cast<double>(plans[pa].size + plans[pb].size);
        }
      });
      if (score_chunks > 1) {
        DMML_COUNTER_ADD("cla.compress.parallel_tasks", score_chunks);
      }
      for (size_t i = 0; i < pending.size(); ++i) {
        if (!qualifies[i]) continue;
        size_t pb = pending[i];
        merges.emplace_back(plans[pa].col, plans[pb].col);
        plans[pa].merged = plans[pb].merged = true;
        break;
      }
    }
  }

  // Phase 3 — encode groups in a deterministic order (co-coded pairs in merge
  // order, then unmerged singles by column), each into its own slot.
  struct GroupSpec {
    std::vector<uint32_t> cols;
    GroupFormat fmt;
  };
  std::vector<GroupSpec> specs;
  specs.reserve(merges.size() + plans.size());
  for (const auto& [a, b] : merges) {
    specs.push_back({{a, b}, GroupFormat::kDdc});
  }
  for (const Plan& plan : plans) {
    if (plan.merged) continue;
    specs.push_back({{plan.col}, plan.fmt});
  }
  cm.groups_.resize(specs.size());
  const size_t encode_chunks = ParallelChunkCount(pool, specs.size(), 1);
  ParallelForChunks(pool, specs.size(), 1,
                    [&](size_t, size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      cm.groups_[s] = BuildGroup(dense, specs[s].cols, specs[s].fmt);
    }
  });
  DMML_COUNTER_ADD("cla.compress.groups_encoded", specs.size());
  if (encode_chunks > 1) {
    DMML_COUNTER_ADD("cla.compress.parallel_tasks", encode_chunks);
  }

  RecordCompressionMetrics(cm);
  return cm;
}

size_t CompressedMatrix::SizeInBytes() const {
  size_t bytes = 0;
  for (const auto& g : groups_) bytes += g->SizeInBytes();
  return bytes;
}

double CompressedMatrix::CompressionRatio() const {
  size_t dense_bytes = rows_ * cols_ * sizeof(double);
  size_t compressed = SizeInBytes();
  return compressed ? static_cast<double>(dense_bytes) /
                          static_cast<double>(compressed)
                    : 0.0;
}

Status CompressedMatrix::MultiplyVectorInto(const DenseMatrix& v,
                                            DenseMatrix* out,
                                            ThreadPool* pool) const {
  if (v.rows() != cols_ || v.cols() != 1) {
    return Status::InvalidArgument("MultiplyVector expects a (cols x 1) vector");
  }
  DMML_TRACE_SPAN("cla.matvec");
  DMML_COUNTER_INC("cla.matvec_calls");
  EnsureClaOut(out, rows_, 1);
  const double* vd = v.data();
  double* y = out->data();
  const double* pre = ComputePreaggs(
      groups_, 1, pool,
      [&](const ColumnGroup& g, double* dst) { g.PreaggregateVector(vd, dst); });
  const auto& off = t_scratch.preagg_off;
  const size_t chunks = ParallelChunkCount(pool, rows_, kRowGrain);
  ParallelForChunks(pool, rows_, kRowGrain,
                    [&](size_t, size_t begin, size_t end) {
    std::fill(y + begin, y + end, 0.0);
    for (size_t g = 0; g < groups_.size(); ++g) {
      groups_[g]->MultiplyVectorRange(
          vd, off[g] == kNoPreagg ? nullptr : pre + off[g], y, begin, end);
    }
  });
  CountRangedCalls(chunks, groups_.size());
  return Status::OK();
}

Status CompressedMatrix::VectorMultiplyInto(const DenseMatrix& u,
                                            DenseMatrix* out,
                                            ThreadPool* pool) const {
  if (u.rows() != rows_ || u.cols() != 1) {
    return Status::InvalidArgument("VectorMultiply expects a (rows x 1) vector");
  }
  EnsureClaOut(out, 1, cols_);
  const double* ud = u.data();
  double* y = out->data();
  const size_t chunks = ParallelChunkCount(pool, rows_, kRowGrain);
  if (chunks <= 1) {
    std::fill(y, y + cols_, 0.0);
    for (const auto& g : groups_) g->VectorMultiplyRange(ud, y, 0, rows_);
    return Status::OK();
  }
  // Per-chunk private partial rows, reduced serially — no atomics.
  double* partials = PartialBuffer(chunks * cols_);
  ParallelForChunks(pool, rows_, kRowGrain,
                    [&](size_t chunk, size_t begin, size_t end) {
    double* p = partials + chunk * cols_;
    std::fill(p, p + cols_, 0.0);
    for (const auto& g : groups_) g->VectorMultiplyRange(ud, p, begin, end);
  });
  std::fill(y, y + cols_, 0.0);
  for (size_t c = 0; c < chunks; ++c) {
    const double* p = partials + c * cols_;
    for (size_t j = 0; j < cols_; ++j) y[j] += p[j];
  }
  DMML_COUNTER_INC("cla.ops.partial_reductions");
  CountRangedCalls(chunks, groups_.size());
  return Status::OK();
}

Status CompressedMatrix::MultiplyMatrixInto(const DenseMatrix& m,
                                            DenseMatrix* out,
                                            ThreadPool* pool) const {
  if (m.rows() != cols_) {
    return Status::InvalidArgument("MultiplyMatrix expects a (cols x k) matrix");
  }
  const size_t k = m.cols();
  EnsureClaOut(out, rows_, k);
  const double* pre = ComputePreaggs(
      groups_, k, pool,
      [&](const ColumnGroup& g, double* dst) { g.PreaggregateMatrix(m, dst); });
  const auto& off = t_scratch.preagg_off;
  const size_t chunks = ParallelChunkCount(pool, rows_, kRowGrain);
  ParallelForChunks(pool, rows_, kRowGrain,
                    [&](size_t, size_t begin, size_t end) {
    for (size_t b = begin; b < end; b += kMatrixRowBlock) {
      const size_t e = std::min(end, b + kMatrixRowBlock);
      std::fill(out->Row(b), out->Row(b) + (e - b) * k, 0.0);
      for (size_t g = 0; g < groups_.size(); ++g) {
        groups_[g]->MultiplyMatrixRange(
            m, off[g] == kNoPreagg ? nullptr : pre + off[g], out, b, e, 0);
      }
    }
  });
  CountRangedCalls(chunks, groups_.size());
  return Status::OK();
}

Status CompressedMatrix::MultiplyMatrixRangeInto(const DenseMatrix& m,
                                                 size_t row_begin,
                                                 size_t row_end,
                                                 DenseMatrix* out,
                                                 ThreadPool* pool) const {
  if (m.rows() != cols_) {
    return Status::InvalidArgument("MultiplyMatrixRange expects a (cols x k) matrix");
  }
  if (row_begin > row_end || row_end > rows_) {
    return Status::InvalidArgument("MultiplyMatrixRange: bad row window");
  }
  const size_t k = m.cols();
  const size_t range = row_end - row_begin;
  EnsureClaOut(out, range, k);
  const double* pre = ComputePreaggs(
      groups_, k, pool,
      [&](const ColumnGroup& g, double* dst) { g.PreaggregateMatrix(m, dst); });
  const auto& off = t_scratch.preagg_off;
  const size_t chunks = ParallelChunkCount(pool, range, kRowGrain);
  ParallelForChunks(pool, range, kRowGrain,
                    [&](size_t, size_t begin, size_t end) {
    for (size_t b = begin; b < end; b += kMatrixRowBlock) {
      const size_t e = std::min(end, b + kMatrixRowBlock);
      std::fill(out->Row(b), out->Row(b) + (e - b) * k, 0.0);
      for (size_t g = 0; g < groups_.size(); ++g) {
        groups_[g]->MultiplyMatrixRange(
            m, off[g] == kNoPreagg ? nullptr : pre + off[g], out,
            row_begin + b, row_begin + e, row_begin);
      }
    }
  });
  CountRangedCalls(chunks, groups_.size());
  return Status::OK();
}

Status CompressedMatrix::TransposeMultiplyMatrixInto(const DenseMatrix& m,
                                                     DenseMatrix* out,
                                                     ThreadPool* pool) const {
  if (m.rows() != rows_) {
    return Status::InvalidArgument("TransposeMultiplyMatrix expects a (rows x k) matrix");
  }
  const size_t k = m.cols();
  EnsureClaOut(out, cols_, k);
  double* y = out->data();
  const size_t chunks = ParallelChunkCount(pool, rows_, kRowGrain);
  // Row sub-blocks with the groups loop inner: every group reads the same
  // (block x k) window of m while it is cache resident, instead of each group
  // streaming the whole operand. The accumulator is expanded per block rather
  // than per chunk — a bracketing change within the usual FP tolerance — and
  // the block size is fixed (k-independent), so k-wide and width-1 runs sum
  // in identical order.
  if (chunks <= 1) {
    std::fill(y, y + cols_ * k, 0.0);
    for (size_t b = 0; b < rows_; b += kMatrixRowBlock) {
      const size_t e = std::min(rows_, b + kMatrixRowBlock);
      for (const auto& g : groups_) {
        g->TransposeMultiplyMatrixRange(m, y, b, e, 0);
      }
    }
    return Status::OK();
  }
  // Per-chunk private (cols x k) partials, reduced serially — no atomics.
  double* partials = PartialBuffer(chunks * cols_ * k);
  ParallelForChunks(pool, rows_, kRowGrain,
                    [&](size_t chunk, size_t begin, size_t end) {
    double* p = partials + chunk * cols_ * k;
    std::fill(p, p + cols_ * k, 0.0);
    for (size_t b = begin; b < end; b += kMatrixRowBlock) {
      const size_t e = std::min(end, b + kMatrixRowBlock);
      for (const auto& g : groups_) {
        g->TransposeMultiplyMatrixRange(m, p, b, e, 0);
      }
    }
  });
  std::fill(y, y + cols_ * k, 0.0);
  for (size_t c = 0; c < chunks; ++c) {
    const double* p = partials + c * cols_ * k;
    for (size_t j = 0; j < cols_ * k; ++j) y[j] += p[j];
  }
  DMML_COUNTER_INC("cla.ops.partial_reductions");
  CountRangedCalls(chunks, groups_.size());
  return Status::OK();
}

Status CompressedMatrix::TransposeMultiplyMatrixRangeInto(const DenseMatrix& m,
                                                          size_t row_begin,
                                                          size_t row_end,
                                                          DenseMatrix* out,
                                                          ThreadPool* pool) const {
  if (row_begin > row_end || row_end > rows_) {
    return Status::InvalidArgument("TransposeMultiplyMatrixRange: bad row window");
  }
  const size_t range = row_end - row_begin;
  if (m.rows() != range) {
    return Status::InvalidArgument(
        "TransposeMultiplyMatrixRange expects a window-relative (range x k) matrix");
  }
  const size_t k = m.cols();
  EnsureClaOut(out, cols_, k);
  double* y = out->data();
  const size_t chunks = ParallelChunkCount(pool, range, kRowGrain);
  if (chunks <= 1) {
    std::fill(y, y + cols_ * k, 0.0);
    for (size_t b = 0; b < range; b += kMatrixRowBlock) {
      const size_t e = std::min(range, b + kMatrixRowBlock);
      for (const auto& g : groups_) {
        g->TransposeMultiplyMatrixRange(m, y, row_begin + b, row_begin + e,
                                        row_begin);
      }
    }
    return Status::OK();
  }
  double* partials = PartialBuffer(chunks * cols_ * k);
  ParallelForChunks(pool, range, kRowGrain,
                    [&](size_t chunk, size_t begin, size_t end) {
    double* p = partials + chunk * cols_ * k;
    std::fill(p, p + cols_ * k, 0.0);
    for (size_t b = begin; b < end; b += kMatrixRowBlock) {
      const size_t e = std::min(end, b + kMatrixRowBlock);
      for (const auto& g : groups_) {
        g->TransposeMultiplyMatrixRange(m, p, row_begin + b, row_begin + e,
                                        row_begin);
      }
    }
  });
  std::fill(y, y + cols_ * k, 0.0);
  for (size_t c = 0; c < chunks; ++c) {
    const double* p = partials + c * cols_ * k;
    for (size_t j = 0; j < cols_ * k; ++j) y[j] += p[j];
  }
  DMML_COUNTER_INC("cla.ops.partial_reductions");
  CountRangedCalls(chunks, groups_.size());
  return Status::OK();
}

Status CompressedMatrix::RowSquaredNormsInto(DenseMatrix* out,
                                             ThreadPool* pool) const {
  EnsureClaOut(out, rows_, 1);
  double* y = out->data();
  const double* pre = ComputePreaggs(
      groups_, 1, pool,
      [&](const ColumnGroup& g, double* dst) { g.PreaggregateSquaredNorms(dst); });
  const auto& off = t_scratch.preagg_off;
  const size_t chunks = ParallelChunkCount(pool, rows_, kRowGrain);
  ParallelForChunks(pool, rows_, kRowGrain,
                    [&](size_t, size_t begin, size_t end) {
    std::fill(y + begin, y + end, 0.0);
    for (size_t g = 0; g < groups_.size(); ++g) {
      groups_[g]->AddRowSquaredNormsRange(
          off[g] == kNoPreagg ? nullptr : pre + off[g], y, begin, end);
    }
  });
  CountRangedCalls(chunks, groups_.size());
  return Status::OK();
}

Result<DenseMatrix> CompressedMatrix::MultiplyVector(const DenseMatrix& v,
                                                     ThreadPool* pool) const {
  DenseMatrix y;
  DMML_RETURN_IF_ERROR(MultiplyVectorInto(v, &y, pool));
  return y;
}

Result<DenseMatrix> CompressedMatrix::VectorMultiply(const DenseMatrix& u,
                                                     ThreadPool* pool) const {
  DenseMatrix y;
  DMML_RETURN_IF_ERROR(VectorMultiplyInto(u, &y, pool));
  return y;
}

Result<DenseMatrix> CompressedMatrix::MultiplyMatrix(const DenseMatrix& m,
                                                     ThreadPool* pool) const {
  DenseMatrix y;
  DMML_RETURN_IF_ERROR(MultiplyMatrixInto(m, &y, pool));
  return y;
}

Result<DenseMatrix> CompressedMatrix::TransposeMultiplyMatrix(
    const DenseMatrix& m, ThreadPool* pool) const {
  DenseMatrix y;
  DMML_RETURN_IF_ERROR(TransposeMultiplyMatrixInto(m, &y, pool));
  return y;
}

DenseMatrix CompressedMatrix::RowSquaredNorms(ThreadPool* pool) const {
  DenseMatrix out;
  (void)RowSquaredNormsInto(&out, pool);  // Cannot fail: no operand shapes.
  return out;
}

double CompressedMatrix::Sum(ThreadPool* pool) const {
  const size_t chunks = ParallelChunkCount(pool, rows_, kRowGrain);
  if (chunks <= 1) {
    double acc = 0;
    for (const auto& g : groups_) acc += g->SumRange(0, rows_);
    return acc;
  }
  double* partials = PartialBuffer(chunks);
  ParallelForChunks(pool, rows_, kRowGrain,
                    [&](size_t chunk, size_t begin, size_t end) {
    double acc = 0;
    for (const auto& g : groups_) acc += g->SumRange(begin, end);
    partials[chunk] = acc;
  });
  double acc = 0;
  for (size_t c = 0; c < chunks; ++c) acc += partials[c];
  DMML_COUNTER_INC("cla.ops.partial_reductions");
  CountRangedCalls(chunks, groups_.size());
  return acc;
}

DenseMatrix CompressedMatrix::Decompress(ThreadPool* pool) const {
  // Falling back to the dense form forfeits the compressed-ops win; worth
  // watching in production workloads.
  DMML_COUNTER_INC("cla.decompress_fallback");
  DMML_TRACE_SPAN("cla.decompress");
  DenseMatrix out(rows_, cols_);
  const size_t chunks = ParallelChunkCount(pool, rows_, kRowGrain);
  ParallelForChunks(pool, rows_, kRowGrain,
                    [&](size_t, size_t begin, size_t end) {
    // Zero-suppressed encodings only scatter non-zero rows, so clear the
    // slice first (fresh matrices are already zero; reused ones may not be).
    std::fill(out.Row(begin), out.Row(begin) + (end - begin) * cols_, 0.0);
    for (const auto& g : groups_) g->DecompressRange(&out, begin, end, 0);
  });
  CountRangedCalls(chunks, groups_.size());
  return out;
}

Status CompressedMatrix::DecompressRangeInto(size_t row_begin, size_t row_end,
                                             DenseMatrix* out,
                                             ThreadPool* pool) const {
  if (row_begin > row_end || row_end > rows_) {
    return Status::InvalidArgument("DecompressRange: bad row window");
  }
  const size_t range = row_end - row_begin;
  EnsureClaOut(out, range, cols_);
  const size_t chunks = ParallelChunkCount(pool, range, kRowGrain);
  ParallelForChunks(pool, range, kRowGrain,
                    [&](size_t, size_t begin, size_t end) {
    std::fill(out->Row(begin), out->Row(begin) + (end - begin) * cols_, 0.0);
    for (const auto& g : groups_) {
      g->DecompressRange(out, row_begin + begin, row_begin + end, row_begin);
    }
  });
  CountRangedCalls(chunks, groups_.size());
  return Status::OK();
}

std::string CompressedMatrix::FormatSummary() const {
  std::ostringstream os;
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (i) os << " ";
    os << "[";
    const auto& cols = groups_[i]->columns();
    for (size_t j = 0; j < cols.size(); ++j) {
      if (j) os << ",";
      os << cols[j];
    }
    os << "]:" << GroupFormatName(groups_[i]->format()) << "("
       << groups_[i]->SizeInBytes() << "B)";
  }
  return os.str();
}

}  // namespace dmml::cla
