/// \file uncompressed_group.h
/// \brief Fallback column group storing its columns as plain dense data.
#ifndef DMML_CLA_UNCOMPRESSED_GROUP_H_
#define DMML_CLA_UNCOMPRESSED_GROUP_H_

#include "cla/column_group.h"

namespace dmml::cla {

/// \brief Plain dense storage (row-major over the group's columns) used when
/// no encoding beats 8 bytes/value.
class UncompressedGroup : public ColumnGroup {
 public:
  /// \brief Copies `columns` of `m` into the group.
  UncompressedGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns);

  GroupFormat format() const override { return GroupFormat::kUncompressed; }
  size_t SizeInBytes() const override;
  void Decompress(la::DenseMatrix* out) const override;
  void MultiplyVector(const double* v, double* y, size_t n) const override;
  void VectorMultiply(const double* u, size_t n, double* out) const override;
  double Sum() const override;
  void AddRowSquaredNorms(double* out, size_t n) const override;
  size_t DictionarySize() const override { return 0; }

 private:
  size_t n_ = 0;
  std::vector<double> data_;  // n_ rows x columns_.size(), row-major.
};

}  // namespace dmml::cla

#endif  // DMML_CLA_UNCOMPRESSED_GROUP_H_
