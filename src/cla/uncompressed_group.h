/// \file uncompressed_group.h
/// \brief Fallback column group storing its columns as plain dense data.
#ifndef DMML_CLA_UNCOMPRESSED_GROUP_H_
#define DMML_CLA_UNCOMPRESSED_GROUP_H_

#include "cla/column_group.h"

namespace dmml::cla {

/// \brief Plain dense storage (row-major over the group's columns) used when
/// no encoding beats 8 bytes/value. Ranged kernels are plain row loops over
/// the contiguous slab; with no dictionary, preagg buffers are unused.
class UncompressedGroup : public ColumnGroup {
 public:
  /// \brief Copies `columns` of `m` into the group.
  UncompressedGroup(const la::DenseMatrix& m, std::vector<uint32_t> columns);

  GroupFormat format() const override { return GroupFormat::kUncompressed; }
  size_t SizeInBytes() const override;
  size_t DictionarySize() const override { return 0; }

  void DecompressRange(la::DenseMatrix* out, size_t row_begin, size_t row_end,
                       size_t row_offset) const override;
  void MultiplyVectorRange(const double* v, const double* preagg, double* y,
                           size_t row_begin, size_t row_end) const override;
  void VectorMultiplyRange(const double* u, double* out, size_t row_begin,
                           size_t row_end) const override;
  void MultiplyMatrixRange(const la::DenseMatrix& m, const double* preagg,
                           la::DenseMatrix* y, size_t row_begin,
                           size_t row_end, size_t row_offset) const override;
  void TransposeMultiplyMatrixRange(const la::DenseMatrix& m, double* out,
                                    size_t row_begin, size_t row_end,
                                    size_t row_offset) const override;
  double SumRange(size_t row_begin, size_t row_end) const override;
  void AddRowSquaredNormsRange(const double* preagg, double* out,
                               size_t row_begin, size_t row_end) const override;

 private:
  std::vector<double> data_;  // n_ rows x columns_.size(), row-major.
};

}  // namespace dmml::cla

#endif  // DMML_CLA_UNCOMPRESSED_GROUP_H_
