#include "cla/uncompressed_group.h"

#include "cla/kwide.h"

namespace dmml::cla {

UncompressedGroup::UncompressedGroup(const la::DenseMatrix& m,
                                     std::vector<uint32_t> columns)
    : ColumnGroup(std::move(columns), m.rows()) {
  const size_t w = columns_.size();
  data_.resize(n_ * w);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < w; ++j) data_[i * w + j] = m.At(i, columns_[j]);
  }
}

size_t UncompressedGroup::SizeInBytes() const {
  return data_.size() * sizeof(double) + columns_.size() * sizeof(uint32_t);
}

void UncompressedGroup::DecompressRange(la::DenseMatrix* out, size_t row_begin,
                                        size_t row_end,
                                        size_t row_offset) const {
  const size_t w = columns_.size();
  for (size_t i = row_begin; i < row_end; ++i) {
    for (size_t j = 0; j < w; ++j) {
      out->At(i - row_offset, columns_[j]) = data_[i * w + j];
    }
  }
}

void UncompressedGroup::MultiplyVectorRange(const double* v,
                                            const double* preagg, double* y,
                                            size_t row_begin,
                                            size_t row_end) const {
  (void)preagg;  // No dictionary to pre-aggregate.
  const size_t w = columns_.size();
  for (size_t i = row_begin; i < row_end; ++i) {
    double acc = 0;
    for (size_t j = 0; j < w; ++j) acc += data_[i * w + j] * v[columns_[j]];
    y[i] += acc;
  }
}

void UncompressedGroup::VectorMultiplyRange(const double* u, double* out,
                                            size_t row_begin,
                                            size_t row_end) const {
  const size_t w = columns_.size();
  for (size_t i = row_begin; i < row_end; ++i) {
    const double ui = u[i];
    if (ui == 0.0) continue;
    for (size_t j = 0; j < w; ++j) out[columns_[j]] += ui * data_[i * w + j];
  }
}

void UncompressedGroup::MultiplyMatrixRange(const la::DenseMatrix& m,
                                            const double* preagg,
                                            la::DenseMatrix* y,
                                            size_t row_begin, size_t row_end,
                                            size_t row_offset) const {
  (void)preagg;
  const size_t w = columns_.size();
  const size_t k = m.cols();
  for (size_t i = row_begin; i < row_end; ++i) {
    double* dst = y->Row(i - row_offset);
    for (size_t j = 0; j < w; ++j) {
      const double val = data_[i * w + j];
      if (val == 0.0) continue;
      KWideAxpy(dst, val, m.Row(columns_[j]), k);
    }
  }
}

void UncompressedGroup::TransposeMultiplyMatrixRange(const la::DenseMatrix& m,
                                                     double* out,
                                                     size_t row_begin,
                                                     size_t row_end,
                                                     size_t row_offset) const {
  const size_t w = columns_.size();
  const size_t k = m.cols();
  for (size_t i = row_begin; i < row_end; ++i) {
    const double* src = m.Row(i - row_offset);
    for (size_t j = 0; j < w; ++j) {
      const double val = data_[i * w + j];
      if (val == 0.0) continue;
      KWideAxpy(out + columns_[j] * k, val, src, k);
    }
  }
}

double UncompressedGroup::SumRange(size_t row_begin, size_t row_end) const {
  const size_t w = columns_.size();
  double acc = 0;
  const double* p = data_.data() + row_begin * w;
  const double* end = data_.data() + row_end * w;
  for (; p < end; ++p) acc += *p;
  return acc;
}

void UncompressedGroup::AddRowSquaredNormsRange(const double* preagg,
                                                double* out, size_t row_begin,
                                                size_t row_end) const {
  (void)preagg;
  const size_t w = columns_.size();
  for (size_t i = row_begin; i < row_end; ++i) {
    double acc = 0;
    for (size_t j = 0; j < w; ++j) acc += data_[i * w + j] * data_[i * w + j];
    out[i] += acc;
  }
}

}  // namespace dmml::cla
