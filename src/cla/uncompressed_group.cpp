#include "cla/uncompressed_group.h"

namespace dmml::cla {

UncompressedGroup::UncompressedGroup(const la::DenseMatrix& m,
                                     std::vector<uint32_t> columns)
    : ColumnGroup(std::move(columns)), n_(m.rows()) {
  const size_t w = columns_.size();
  data_.resize(n_ * w);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < w; ++j) data_[i * w + j] = m.At(i, columns_[j]);
  }
}

size_t UncompressedGroup::SizeInBytes() const {
  return data_.size() * sizeof(double) + columns_.size() * sizeof(uint32_t);
}

void UncompressedGroup::Decompress(la::DenseMatrix* out) const {
  const size_t w = columns_.size();
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < w; ++j) out->At(i, columns_[j]) = data_[i * w + j];
  }
}

void UncompressedGroup::MultiplyVector(const double* v, double* y, size_t n) const {
  (void)n;
  const size_t w = columns_.size();
  for (size_t i = 0; i < n_; ++i) {
    double acc = 0;
    for (size_t j = 0; j < w; ++j) acc += data_[i * w + j] * v[columns_[j]];
    y[i] += acc;
  }
}

void UncompressedGroup::VectorMultiply(const double* u, size_t n, double* out) const {
  (void)n;
  const size_t w = columns_.size();
  for (size_t i = 0; i < n_; ++i) {
    const double ui = u[i];
    if (ui == 0.0) continue;
    for (size_t j = 0; j < w; ++j) out[columns_[j]] += ui * data_[i * w + j];
  }
}

double UncompressedGroup::Sum() const {
  double acc = 0;
  for (double v : data_) acc += v;
  return acc;
}

void UncompressedGroup::AddRowSquaredNorms(double* out, size_t n) const {
  (void)n;
  const size_t w = columns_.size();
  for (size_t i = 0; i < n_; ++i) {
    double acc = 0;
    for (size_t j = 0; j < w; ++j) acc += data_[i * w + j] * data_[i * w + j];
    out[i] += acc;
  }
}

}  // namespace dmml::cla
