#include "cla/compressed_kmeans.h"

#include <memory>

#include "ml/unified_trainers.h"

namespace dmml::cla {

// Thin representation binding over the unified operand trainer: the
// executor routes X·Cᵀ to MultiplyMatrix, Xᵀ·A to TransposeMultiplyMatrix
// and rowSums(X ⊙ X) to the fused RowSquaredNorms kernel, so the iteration
// never decompresses X — identical to the hand-written compressed loop
// this replaced.
Result<ml::KMeansModel> TrainCompressedKMeans(const CompressedMatrix& x,
                                              const ml::KMeansConfig& config,
                                              ThreadPool* pool) {
  return ml::TrainKMeansOnOperand(
      laopt::Operand(std::shared_ptr<const CompressedMatrix>(
          std::shared_ptr<void>(), &x)),
      config, pool);
}

}  // namespace dmml::cla
