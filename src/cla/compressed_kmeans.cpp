#include "cla/compressed_kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/kernels.h"
#include "util/rng.h"

namespace dmml::cla {

using la::DenseMatrix;
using ml::KMeansConfig;
using ml::KMeansModel;

Result<KMeansModel> TrainCompressedKMeans(const CompressedMatrix& x,
                                          const KMeansConfig& config,
                                          ThreadPool* pool) {
  const size_t n = x.rows(), d = x.cols(), k = config.k;
  if (k == 0 || k > n) return Status::InvalidArgument("k must be in [1, n]");

  // Initial centers: k sampled rows, extracted via a one-hot
  // transpose-multiply so no decompression is needed.
  KMeansModel model;
  model.centers = DenseMatrix(k, d);
  {
    Rng rng(config.seed);
    DenseMatrix onehots(n, k);
    for (size_t c = 0; c < k; ++c) {
      onehots.At(rng.UniformInt(static_cast<uint64_t>(n)), c) = 1.0;
    }
    DMML_ASSIGN_OR_RETURN(DenseMatrix cols, x.TransposeMultiplyMatrix(onehots, pool));
    model.centers = la::Transpose(cols);  // k x d.
  }
  model.labels.assign(n, 0);

  DenseMatrix row_norms = x.RowSquaredNorms(pool);

  // Per-iteration scratch, hoisted so the loop reuses its allocations — the
  // compressed ops below all write Into these buffers.
  DenseMatrix ct;
  DenseMatrix cross;
  DenseMatrix sums;
  DenseMatrix assign(n, k);
  std::vector<double> center_norms(k);
  std::vector<size_t> counts(k);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < config.max_iters; ++iter) {
    la::TransposeInto(model.centers, &ct);  // d x k.
    DMML_RETURN_IF_ERROR(x.MultiplyMatrixInto(ct, &cross, pool));

    for (size_t c = 0; c < k; ++c) {
      center_norms[c] = la::Dot(model.centers.Row(c), model.centers.Row(c), d);
    }

    double inertia = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        double dist = row_norms.At(i, 0) - 2.0 * cross.At(i, c) + center_norms[c];
        if (dist < best_d) {
          best_d = dist;
          best = c;
        }
      }
      model.labels[i] = static_cast<int>(best);
      inertia += std::max(0.0, best_d);
    }

    assign.Fill(0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      assign.At(i, static_cast<size_t>(model.labels[i])) = 1.0;
      counts[static_cast<size_t>(model.labels[i])]++;
    }
    DMML_RETURN_IF_ERROR(x.TransposeMultiplyMatrixInto(assign, &sums, pool));
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // Keep the stale center.
      double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t j = 0; j < d; ++j) model.centers.At(c, j) = sums.At(j, c) * inv;
    }

    model.inertia = inertia;
    model.inertia_history.push_back(inertia);
    model.iters_run = iter + 1;
    if (std::isfinite(prev_inertia) &&
        std::fabs(prev_inertia - inertia) <=
            config.tolerance * std::max(1.0, prev_inertia)) {
      break;
    }
    prev_inertia = inertia;
  }
  return model;
}

}  // namespace dmml::cla
