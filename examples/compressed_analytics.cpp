// Iterative analytics directly on compressed data.
//
// Compresses a telemetry-like matrix (low-cardinality status codes, sorted
// timestamps bucketed into runs, a sparse error-count column), inspects the
// chosen encodings, then runs ridge regression *entirely on the compressed
// matrix* — the CLA execution model.
#include <cstdio>

#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "la/kernels.h"
#include "ml/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace dmml;  // NOLINT

int main() {
  std::printf("== compressed analytics: ridge regression on compressed data ==\n\n");

  const size_t n = 60000;
  // Build an 8-column telemetry matrix with mixed compressibility.
  la::DenseMatrix x(n, 8);
  {
    auto status = data::LowCardinalityMatrix(n, 3, 6, false, 1);     // Status codes.
    auto buckets = data::LowCardinalityMatrix(n, 2, 24, true, 2);    // Hour buckets.
    Rng rng(3);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < 3; ++j) x.At(i, j) = status.At(i, j);
      for (size_t j = 0; j < 2; ++j) x.At(i, 3 + j) = buckets.At(i, j);
      if (rng.Bernoulli(0.03)) x.At(i, 5) = rng.UniformInt(int64_t{1}, int64_t{20});
      x.At(i, 6) = rng.Normal(50, 10);   // Continuous gauge (incompressible).
      x.At(i, 7) = rng.Normal(0, 1);     // Continuous gauge (incompressible).
    }
  }

  Stopwatch wc;
  auto cm = cla::CompressedMatrix::Compress(x);
  std::printf("compressed %zux%zu in %.1f ms\n", x.rows(), x.cols(),
              wc.ElapsedMillis());
  std::printf("encodings: %s\n", cm.FormatSummary().c_str());
  std::printf("compression ratio: %.2fx (%.1f MB -> %.1f MB)\n\n",
              cm.CompressionRatio(),
              static_cast<double>(n * 8 * 8) / (1024 * 1024.0),
              static_cast<double>(cm.SizeInBytes()) / (1024 * 1024.0));

  // Synthesize a target and run ridge regression on the compressed matrix:
  // w -= lr * (X^T (X w - y) / n + l2 w), all ops on compressed X.
  Rng rng(4);
  la::DenseMatrix w_true(8, 1);
  for (size_t j = 0; j < 8; ++j) w_true.At(j, 0) = rng.Normal();
  la::DenseMatrix y = *cm.MultiplyVector(w_true);
  for (size_t i = 0; i < n; ++i) y.At(i, 0) += rng.Normal(0, 0.5);

  la::DenseMatrix w(8, 1);
  const double lr = 2e-4, l2 = 1e-4, inv_n = 1.0 / static_cast<double>(n);
  Stopwatch wt;
  for (int epoch = 0; epoch < 150; ++epoch) {
    auto scores = *cm.MultiplyVector(w);
    la::DenseMatrix residual = la::Subtract(scores, y);
    auto grad = *cm.VectorMultiply(residual);
    for (size_t j = 0; j < 8; ++j) {
      w.At(j, 0) -= lr * (grad.At(0, j) * inv_n + l2 * w.At(j, 0));
    }
  }
  std::printf("150 GD epochs on compressed data: %.1f ms\n", wt.ElapsedMillis());

  auto fitted = *cm.MultiplyVector(w);
  std::printf("fit quality R^2 = %.4f\n", *ml::R2(y, fitted));
  std::printf("recovered weights vs truth (first 4): ");
  for (size_t j = 0; j < 4; ++j) {
    std::printf("%.2f/%.2f ", w.At(j, 0), w_true.At(j, 0));
  }
  std::printf("\n");
  return 0;
}
