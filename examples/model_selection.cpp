// Hyperparameter search with shared data scans.
//
// Cross-validates a grid of logistic-regression configurations two ways —
// one model at a time, and as a single batched run — prints the leaderboard,
// and refits the winner on the full training set.
#include <cstdio>

#include "data/generators.h"
#include "ml/glm.h"
#include "ml/metrics.h"
#include "modelsel/model_selection.h"

using namespace dmml;  // NOLINT

int main() {
  std::printf("== model selection: CV grid search over a GLM ==\n\n");

  auto ds = data::MakeClassification(4000, 12, 0.1, 99);

  modelsel::GridSpec grid;
  grid.base.family = ml::GlmFamily::kBinomial;
  grid.base.max_epochs = 60;
  grid.base.tolerance = 0;
  grid.learning_rates = {0.01, 0.1, 0.5};
  grid.l2_penalties = {0.0, 0.01, 0.1};

  auto sequential = modelsel::GridSearchSequential(ds.x, ds.y, grid, 5, 3);
  auto batched = modelsel::GridSearchBatched(ds.x, ds.y, grid, 5, 3);
  if (!sequential.ok() || !batched.ok()) {
    std::fprintf(stderr, "grid search failed\n");
    return 1;
  }

  std::printf("%-6s %-6s %-12s %-12s\n", "lr", "l2", "cv_accuracy", "stddev");
  for (const auto& score : batched->scores) {
    std::printf("%-6.2f %-6.2f %-12.4f %-12.4f\n", score.config.learning_rate,
                score.config.l2, score.mean_score, score.std_score);
  }
  const auto& best = batched->scores[batched->best_index];
  std::printf("\nbest config: lr=%.2f l2=%.2f (cv accuracy %.4f)\n",
              best.config.learning_rate, best.config.l2, best.mean_score);
  std::printf("sequential search: %.0f ms, batched search: %.0f ms (%.2fx)\n",
              sequential->seconds * 1e3, batched->seconds * 1e3,
              sequential->seconds / batched->seconds);
  bool agree = sequential->best_index == batched->best_index;
  std::printf("both strategies picked the same winner: %s\n\n",
              agree ? "yes" : "no");

  // Refit the winner on everything and report training metrics.
  auto final_model = ml::TrainGlm(ds.x, ds.y, best.config);
  if (!final_model.ok()) return 1;
  auto labels = *final_model->PredictLabels(ds.x);
  auto probs = *final_model->Predict(ds.x);
  std::printf("refit on all data: accuracy %.4f, AUC %.4f\n",
              *ml::Accuracy(ds.y, labels), *ml::RocAuc(ds.y, probs));
  return 0;
}
