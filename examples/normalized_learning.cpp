// Learning over normalized data without materializing the join.
//
// Models a retail scenario: an orders (fact) table holding a few
// order-level features and a foreign key into a products (dimension) table
// holding many product-level features. Trains the same regression both ways
// and shows the factorized path is equivalent but avoids the join blow-up.
#include <cstdio>

#include "data/generators.h"
#include "factorized/factorized_glm.h"
#include "factorized/factorized_kmeans.h"
#include "factorized/normalized_matrix.h"
#include "ml/metrics.h"
#include "util/stopwatch.h"

using namespace dmml;  // NOLINT

int main() {
  std::printf("== learning over normalized data (orders |><| products) ==\n\n");

  // 50k orders over 1k products; 2 order features, 30 product features.
  data::StarSchemaOptions options;
  options.ns = 50000;
  options.nr = 1000;
  options.ds = 2;
  options.dr = 30;
  options.noise_sigma = 0.1;
  auto ds = data::MakeStarSchema(options, 42);

  auto nm = *factorized::NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});
  std::printf("orders: %zu rows x %zu features\n", ds.ns, ds.ds);
  std::printf("products: %zu rows x %zu features\n", ds.nr, ds.dr);
  std::printf("logical join output: %zu x %zu (%.1f MB dense)\n", nm.rows(),
              nm.cols(),
              static_cast<double>(nm.rows() * nm.cols() * 8) / (1024.0 * 1024.0));
  std::printf("redundancy avoided by staying normalized: %.1fx\n\n",
              nm.RedundancyRatio());

  ml::GlmConfig config;
  config.family = ml::GlmFamily::kGaussian;
  config.learning_rate = 0.01;
  config.max_epochs = 50;

  Stopwatch w1;
  auto factorized_model = factorized::TrainFactorizedGlm(nm, ds.y, config);
  double fact_ms = w1.ElapsedMillis();
  Stopwatch w2;
  auto materialized_model = factorized::TrainMaterializedGlm(nm, ds.y, config);
  double mat_ms = w2.ElapsedMillis();
  if (!factorized_model.ok() || !materialized_model.ok()) return 1;

  std::printf("factorized training:   %7.1f ms (loss %.5f)\n", fact_ms,
              factorized_model->loss_history.back());
  std::printf("materialized training: %7.1f ms (loss %.5f)\n", mat_ms,
              materialized_model->loss_history.back());
  std::printf("speedup: %.2fx\n", mat_ms / fact_ms);
  bool same = factorized_model->weights.ApproxEquals(materialized_model->weights,
                                                     1e-7);
  std::printf("identical weights: %s\n\n", same ? "yes" : "NO (bug!)");

  // Segment orders with k-means, also without materializing the join.
  ml::KMeansConfig kmeans_config;
  kmeans_config.k = 5;
  kmeans_config.max_iters = 25;
  Stopwatch w3;
  auto clusters = factorized::TrainFactorizedKMeans(nm, kmeans_config);
  if (!clusters.ok()) return 1;
  std::printf("factorized k-means: k=5 in %zu iterations, %.1f ms, inertia %.1f\n",
              clusters->iters_run, w3.ElapsedMillis(), clusters->inertia);
  std::vector<size_t> sizes(5, 0);
  for (int label : clusters->labels) sizes[static_cast<size_t>(label)]++;
  std::printf("cluster sizes:");
  for (size_t s : sizes) std::printf(" %zu", s);
  std::printf("\n");
  return 0;
}
