// Learning over normalized data without materializing the join — now
// through the declarative pipeline front-end: the analyst states the
// feature query (orders |><| products) and the trainer once; the chooser
// decides whether the join is ever materialized.
#include <cstdio>

#include "data/generators.h"
#include "pipeline/pipeline.h"
#include "storage/catalog.h"
#include "util/stopwatch.h"

using namespace dmml;  // NOLINT

namespace {

std::vector<std::string> StarFeatures(size_t ds, size_t dr) {
  std::vector<std::string> f;
  for (size_t j = 0; j < ds; ++j) f.push_back("xs" + std::to_string(j));
  for (size_t j = 0; j < dr; ++j) f.push_back("xr" + std::to_string(j));
  return f;
}

}  // namespace

int main() {
  std::printf("== learning over normalized data (orders |><| products) ==\n\n");

  // 50k orders over 1k products; 2 order features, 30 product features.
  data::StarSchemaOptions options;
  options.ns = 50000;
  options.nr = 1000;
  options.ds = 2;
  options.dr = 30;
  options.noise_sigma = 0.1;
  auto ds = data::MakeStarSchema(options, 42);

  storage::Catalog catalog;
  catalog.PutTable("orders", std::move(ds.s));
  catalog.PutTable("products", std::move(ds.r));

  ml::GlmConfig config;
  config.family = ml::GlmFamily::kGaussian;
  config.learning_rate = 0.01;
  config.max_epochs = 50;
  const auto features = StarFeatures(options.ds, options.dr);

  auto run = [&](pipeline::Route route) {
    pipeline::PipelineOptions popts;
    popts.route = route;
    return pipeline::Pipeline::From(&catalog, "orders")
        .Join("products", "fk", "rid")
        .Features(features)
        .Label("y")
        .WithOptions(popts)
        .TrainGlm(config);
  };

  // One pipeline program, trained through both physical routes.
  Stopwatch w1;
  auto fact = run(pipeline::Route::kFactorized);
  double fact_ms = w1.ElapsedMillis();
  Stopwatch w2;
  auto mat = run(pipeline::Route::kMaterialize);
  double mat_ms = w2.ElapsedMillis();
  if (!fact.ok() || !mat.ok()) {
    std::printf("pipeline failed: %s\n",
                (!fact.ok() ? fact.status() : mat.status()).ToString().c_str());
    return 1;
  }

  std::printf("factorized training:   %7.1f ms (loss %.5f)\n", fact_ms,
              fact->model.loss_history.back());
  std::printf("materialized training: %7.1f ms (loss %.5f)\n", mat_ms,
              mat->model.loss_history.back());
  std::printf("speedup: %.2fx\n", mat_ms / fact_ms);
  bool same =
      fact->model.weights.ApproxEquals(mat->model.weights, 1e-7);
  std::printf("identical weights: %s\n\n", same ? "yes" : "NO (bug!)");

  // What would the optimizer have picked on its own? Ask it.
  auto chosen = run(pipeline::Route::kAuto);
  if (!chosen.ok()) return 1;
  std::printf("%s\n", chosen->report.ExplainText().c_str());

  // Segment orders with k-means through the same front-end — still no join.
  ml::KMeansConfig kmeans_config;
  kmeans_config.k = 5;
  kmeans_config.max_iters = 25;
  pipeline::PipelineOptions popts;
  popts.route = pipeline::Route::kFactorized;
  Stopwatch w3;
  auto clusters = pipeline::Pipeline::From(&catalog, "orders")
                      .Join("products", "fk", "rid")
                      .Features(features)
                      .WithOptions(popts)
                      .TrainKMeans(kmeans_config);
  if (!clusters.ok()) return 1;
  std::printf("factorized k-means: k=5 in %zu iterations, %.1f ms, inertia %.1f\n",
              clusters->model.iters_run, w3.ElapsedMillis(),
              clusters->model.inertia);
  std::vector<size_t> sizes(5, 0);
  for (int label : clusters->model.labels) sizes[static_cast<size_t>(label)]++;
  std::printf("cluster sizes:");
  for (size_t s : sizes) std::printf(" %zu", s);
  std::printf("\n");
  return 0;
}
