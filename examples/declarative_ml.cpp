// Declarative ML: write linear algebra as strings, let the optimizer pick
// the execution plan (the SystemML idea, end to end).
//
// Implements ridge-regression gradient descent where every step is a parsed
// DML-style expression; the optimizer reassociates the matrix chain so the
// per-step cost is two skinny GEMVs instead of a d x d Gramian build.
#include <cstdio>
#include <memory>

#include "data/generators.h"
#include "laopt/cse.h"
#include "laopt/executor.h"
#include "laopt/optimizer.h"
#include "laopt/parser.h"
#include "laopt/pipeline.h"
#include "ml/metrics.h"
#include "util/stopwatch.h"

using namespace dmml;  // NOLINT

int main() {
  std::printf("== declarative ML: a GD step as a parsed expression ==\n\n");

  const size_t n = 5000, d = 40;
  auto ds = data::MakeRegression(n, d, 0.1, 123);
  auto x = std::make_shared<la::DenseMatrix>(ds.x);
  auto y = std::make_shared<la::DenseMatrix>(ds.y);
  auto w = std::make_shared<la::DenseMatrix>(d, 1);

  const std::string gradient_src = "t(X) %*% (X %*% w - y) + 0.01 * w";
  std::printf("gradient expression: %s\n", gradient_src.c_str());

  laopt::Environment env = {{"X", x}, {"y", y}, {"w", w}};
  auto parsed = laopt::ParseExpression(gradient_src, env);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  // Full pipeline: static analysis (shape/sparsity/footprint validation),
  // rewrites, CSE. Set DMML_EXPLAIN=1 to log the per-node analysis table.
  laopt::PlanReport report;
  auto optimized = laopt::CompilePlan(*parsed, {}, &report);
  if (!optimized.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n", (*optimized)->ToString().c_str());
  std::printf("estimated Mflops: %.1f -> %.1f\n",
              report.rewriter.flops_before / 1e6, report.rewriter.flops_after / 1e6);
  std::printf("analysis: %zu nodes, output sparsity %.2f, est. result %.1f KB\n\n",
              report.analysis_nodes, report.output_sparsity,
              static_cast<double>(report.output_est_bytes) / 1024.0);

  // Gradient descent where each step re-executes the optimized DAG. The
  // leaf `w` is shared, so updating the buffer in place re-feeds the plan.
  // The parsed gradient is the *sum* over examples, so scale lr by 1/n.
  const double lr = 0.05 / static_cast<double>(n);
  Stopwatch watch;
  for (int epoch = 0; epoch < 300; ++epoch) {
    auto grad = laopt::Execute(*optimized);
    if (!grad.ok()) return 1;
    for (size_t j = 0; j < d; ++j) {
      w->At(j, 0) -= lr * grad->At(j, 0);
    }
  }
  std::printf("300 declarative GD steps in %.1f ms\n", watch.ElapsedMillis());

  // Validate the fit with one more parsed expression.
  auto pred = laopt::EvalExpression("X %*% w", env);
  if (!pred.ok()) return 1;
  std::printf("R^2 = %.4f (true weights recovered within noise)\n",
              *ml::R2(ds.y, *pred));
  return 0;
}
