// Quickstart: the 60-second tour of dmml.
//
// Generates a small churn-like CSV, loads it through the storage layer,
// standardizes features, trains a logistic regression, and evaluates it —
// the minimal end-to-end loop a new user writes first.
#include <cstdio>

#include "data/generators.h"
#include "ml/glm.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "storage/table.h"

using namespace dmml;  // NOLINT

int main() {
  std::printf("== dmml quickstart ==\n\n");

  // 1. Fabricate a CSV on disk (stand-in for your exported dataset).
  auto dataset = data::MakeClassification(1200, 5, 0.05, 7);
  {
    storage::Schema schema({{"f0", storage::DataType::kDouble, false},
                            {"f1", storage::DataType::kDouble, false},
                            {"f2", storage::DataType::kDouble, false},
                            {"f3", storage::DataType::kDouble, false},
                            {"f4", storage::DataType::kDouble, false},
                            {"churned", storage::DataType::kInt64, false}});
    storage::Table table(schema);
    for (size_t i = 0; i < dataset.x.rows(); ++i) {
      table
          .AppendRow({dataset.x.At(i, 0), dataset.x.At(i, 1), dataset.x.At(i, 2),
                      dataset.x.At(i, 3), dataset.x.At(i, 4),
                      static_cast<int64_t>(dataset.y.At(i, 0))})
          .ok();
    }
    if (!table.ToCsvFile("/tmp/dmml_quickstart.csv").ok()) return 1;
  }

  // 2. Load it back with a typed schema.
  storage::Schema schema({{"f0", storage::DataType::kDouble, false},
                          {"f1", storage::DataType::kDouble, false},
                          {"f2", storage::DataType::kDouble, false},
                          {"f3", storage::DataType::kDouble, false},
                          {"f4", storage::DataType::kDouble, false},
                          {"churned", storage::DataType::kInt64, false}});
  auto table = storage::Table::FromCsvFile("/tmp/dmml_quickstart.csv", schema);
  if (!table.ok()) {
    std::fprintf(stderr, "load failed: %s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s\n", table->ToString().c_str());

  // 3. Table -> matrices, with a train/test split.
  auto x_all = *table->ToMatrix({"f0", "f1", "f2", "f3", "f4"});
  auto y_all = *table->ToMatrix({"churned"});
  size_t split = x_all.rows() * 8 / 10;
  auto x_train = x_all.SliceRows(0, split);
  auto y_train = y_all.SliceRows(0, split);
  auto x_test = x_all.SliceRows(split, x_all.rows());
  auto y_test = y_all.SliceRows(split, x_all.rows());

  // 4. Standardize, then train a logistic regression.
  ml::StandardScaler scaler;
  x_train = *scaler.FitTransform(x_train);
  x_test = *scaler.Transform(x_test);

  ml::GlmConfig config;
  config.family = ml::GlmFamily::kBinomial;
  config.solver = ml::GlmSolver::kBatchGd;
  config.learning_rate = 0.5;
  config.max_epochs = 300;
  auto model = ml::TrainGlm(x_train, y_train, config);
  if (!model.ok()) {
    std::fprintf(stderr, "train failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("trained in %zu epochs, final loss %.4f\n", model->epochs_run,
              model->loss_history.back());

  // 5. Evaluate on the held-out rows.
  auto probs = *model->Predict(x_test);
  auto labels = *model->PredictLabels(x_test);
  std::printf("test accuracy: %.3f\n", *ml::Accuracy(y_test, labels));
  std::printf("test AUC:      %.3f\n", *ml::RocAuc(y_test, probs));
  std::printf("test log-loss: %.3f\n", *ml::LogLoss(y_test, probs));
  auto prf = *ml::BinaryPrf(y_test, labels);
  std::printf("precision %.3f / recall %.3f / F1 %.3f\n", prf.precision, prf.recall,
              prf.f1);
  return 0;
}
