// Collaborative filtering end to end: sparse ratings -> ALS factorization ->
// top-N recommendations, with a held-out evaluation.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "la/kernels.h"
#include "la/sparse_matrix.h"
#include "ml/als.h"
#include "util/rng.h"

using namespace dmml;  // NOLINT

int main() {
  std::printf("== recommender: ALS over a sparse ratings matrix ==\n\n");

  // Synthesize 500 users x 200 items with planted taste vectors; observe 15%
  // of cells for training and hold out a disjoint slice for evaluation.
  const size_t users = 500, items = 200, rank = 5;
  Rng rng(2026);
  la::DenseMatrix taste(users, rank), traits(items, rank);
  for (size_t e = 0; e < taste.size(); ++e) taste.data()[e] = rng.Normal(0, 1);
  for (size_t e = 0; e < traits.size(); ++e) traits.data()[e] = rng.Normal(0, 1);

  std::vector<la::Triplet> train_cells, test_cells;
  for (size_t u = 0; u < users; ++u) {
    for (size_t i = 0; i < items; ++i) {
      double draw = rng.Uniform();
      if (draw >= 0.17) continue;
      double rating =
          la::Dot(taste.Row(u), traits.Row(i), rank) + rng.Normal(0, 0.2);
      if (draw < 0.15) train_cells.push_back({u, i, rating});
      else test_cells.push_back({u, i, rating});
    }
  }
  auto train = la::SparseMatrix::FromTriplets(users, items, train_cells);
  auto test = la::SparseMatrix::FromTriplets(users, items, test_cells);
  std::printf("observed ratings: %zu train / %zu held out (%.1f%% density)\n",
              train.nnz(), test.nnz(), 100.0 * train.Density());

  ml::AlsConfig config;
  config.rank = rank;
  config.l2 = 1.0;
  config.max_iters = 25;
  auto model = ml::TrainAls(train, config);
  if (!model.ok()) {
    std::fprintf(stderr, "ALS failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("ALS converged in %zu sweeps: train RMSE %.4f, held-out RMSE %.4f\n\n",
              model->iters_run, model->rmse_history.back(), *model->Rmse(test));

  // Top-5 recommendations for one user, excluding already-rated items.
  const size_t who = 7;
  std::vector<bool> seen(items, false);
  for (size_t k = train.RowBegin(who); k < train.RowEnd(who); ++k) {
    seen[train.col_idx()[k]] = true;
  }
  std::vector<std::pair<double, size_t>> scored;
  for (size_t i = 0; i < items; ++i) {
    if (!seen[i]) scored.push_back({*model->Predict(who, i), i});
  }
  std::sort(scored.rbegin(), scored.rend());
  std::printf("top-5 recommendations for user %zu:\n", who);
  for (int r = 0; r < 5; ++r) {
    double truth = la::Dot(taste.Row(who), traits.Row(scored[r].second), rank);
    std::printf("  item %3zu  predicted %+.2f  (true affinity %+.2f)\n",
                scored[r].second, scored[r].first, truth);
  }
  return 0;
}
