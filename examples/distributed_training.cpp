// Data-parallel training through the parameter server.
//
// Trains the same logistic-regression model with 4 workers under all three
// consistency protocols, with a simulated straggler, and prints the loss
// trajectory of each — the trade-off the parameter-server literature (and
// the target tutorial) describes.
#include <cstdio>

#include "data/generators.h"
#include "ml/metrics.h"
#include "ps/parameter_server.h"

using namespace dmml;  // NOLINT

int main() {
  std::printf("== data-parallel SGD with a parameter server ==\n\n");
  auto ds = data::MakeClassification(12000, 15, 0.05, 31);

  ps::PsConfig base;
  base.num_workers = 4;
  base.epochs = 10;
  base.batch_size = 64;
  base.learning_rate = 0.3;
  base.family = ml::GlmFamily::kBinomial;
  base.straggler_jitter = 0.0003;  // Worker 3 is the systematic straggler.

  for (auto mode : {ps::ConsistencyMode::kBsp, ps::ConsistencyMode::kAsync,
                    ps::ConsistencyMode::kSsp}) {
    ps::PsConfig config = base;
    config.mode = mode;
    config.staleness_bound = 2;
    auto result = ps::TrainGlmParameterServer(ds.x, ds.y, config);
    if (!result.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    auto labels = *result->model.PredictLabels(ds.x);
    std::printf("%-4s wall %5.0f ms | pushes %5zu | max staleness %zu | "
                "accuracy %.4f\n",
                ps::ConsistencyModeName(mode), result->wall_seconds * 1e3,
                result->total_pushes, result->max_observed_staleness,
                *ml::Accuracy(ds.y, labels));
    std::printf("     loss/epoch:");
    for (double loss : result->loss_per_epoch) std::printf(" %.3f", loss);
    std::printf("\n\n");
  }
  std::printf(
      "BSP pays barrier stalls for freshness; ASP runs ahead of the straggler\n"
      "with stale gradients; SSP bounds how far ahead it may run.\n");
  return 0;
}
