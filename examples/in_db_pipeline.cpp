// A full in-engine pipeline: catalog -> filter -> join -> aggregate ->
// feature matrix -> two classifiers (decision tree and naive Bayes).
//
// Everything happens inside the dmml relational substrate, the MADlib-style
// usage the target tutorial surveys: the analyst never leaves the engine.
#include <cstdio>

#include "data/generators.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "relational/operators.h"
#include "storage/catalog.h"

using namespace dmml;  // NOLINT

int main() {
  std::printf("== in-engine ML pipeline (filter -> join -> train) ==\n\n");

  // Generate a normalized classification dataset and register both tables.
  data::StarSchemaOptions options;
  options.ns = 8000;
  options.nr = 200;
  options.ds = 3;
  options.dr = 5;
  options.classification = true;
  auto ds = data::MakeStarSchema(options, 5);

  storage::Catalog catalog;
  catalog.PutTable("events", std::move(ds.s));
  catalog.PutTable("devices", std::move(ds.r));
  std::printf("catalog tables:");
  for (const auto& name : catalog.TableNames()) std::printf(" %s", name.c_str());
  std::printf("\n");

  auto events = *catalog.GetTable("events");
  auto devices = *catalog.GetTable("devices");

  // SQL-ish: SELECT ... FROM events JOIN devices ON fk = rid WHERE xs0 > -2.
  auto filtered = relational::Filter(
      *events, relational::Compare("xs0", relational::CompareOp::kGt, -2.0));
  if (!filtered.ok()) return 1;
  std::printf("filter kept %zu / %zu events\n", filtered->num_rows(),
              events->num_rows());

  auto joined = relational::HashJoin(*filtered, *devices, "fk", "rid");
  if (!joined.ok()) return 1;
  std::printf("join produced %zu rows x %zu columns\n", joined->num_rows(),
              joined->schema().num_fields());

  // A quick aggregate for sanity: label rate per device decile.
  auto by_device = relational::GroupBy(
      *joined, {"fk"},
      {{relational::AggFunc::kCount, "", "n"},
       {relational::AggFunc::kAvg, "y", "label_rate"}});
  if (!by_device.ok()) return 1;
  std::printf("per-device label rates computed for %zu devices\n\n",
              by_device->num_rows());

  // Feature matrix straight out of the join output.
  std::vector<std::string> features = {"xs0", "xs1", "xs2",
                                       "xr0", "xr1", "xr2", "xr3", "xr4"};
  auto x = *joined->ToMatrix(features);
  auto y = *joined->ToMatrix({"y"});
  size_t split = x.rows() * 8 / 10;
  auto x_train = x.SliceRows(0, split);
  auto y_train = y.SliceRows(0, split);
  auto x_test = x.SliceRows(split, x.rows());
  auto y_test = y.SliceRows(split, x.rows());

  // Classifier 1: CART decision tree.
  ml::TreeConfig tree_config;
  tree_config.max_depth = 6;
  auto tree = ml::TrainTreeClassifier(x_train, y_train, tree_config);
  if (!tree.ok()) return 1;
  auto tree_pred = *tree->Predict(x_test);
  std::printf("decision tree: depth %zu, %zu leaves, test accuracy %.3f\n",
              tree->Depth(), tree->NumLeaves(),
              *ml::Accuracy(y_test, tree_pred));

  // Classifier 2: Gaussian naive Bayes.
  std::vector<int> labels_int(x_train.rows());
  for (size_t i = 0; i < x_train.rows(); ++i) {
    labels_int[i] = static_cast<int>(y_train.At(i, 0));
  }
  auto nb = ml::TrainNaiveBayes(x_train, labels_int);
  if (!nb.ok()) return 1;
  auto nb_pred_int = *nb->Predict(x_test);
  la::DenseMatrix nb_pred(x_test.rows(), 1);
  for (size_t i = 0; i < x_test.rows(); ++i) {
    nb_pred.At(i, 0) = static_cast<double>(nb_pred_int[i]);
  }
  std::printf("naive Bayes:   test accuracy %.3f\n", *ml::Accuracy(y_test, nb_pred));
  return 0;
}
