// A full in-engine pipeline: catalog -> filter -> join -> feature matrix ->
// trained model, written as ONE declarative program. The pipeline front-end
// replaces the hand-wired Filter/HashJoin/ToMatrix glue this example used to
// carry: the optimizer validates the plan, estimates cardinalities, picks the
// physical route, and trains — the analyst never leaves the engine.
#include <cstdio>
#include <cstdlib>

#include "data/generators.h"
#include "pipeline/pipeline.h"
#include "relational/predicate.h"
#include "storage/catalog.h"

using namespace dmml;  // NOLINT

int main() {
  std::printf("== in-engine ML pipeline (filter -> join -> train) ==\n\n");

  // Generate a normalized classification dataset and register both tables.
  data::StarSchemaOptions options;
  options.ns = 8000;
  options.nr = 200;
  options.ds = 3;
  options.dr = 5;
  options.classification = true;
  auto ds = data::MakeStarSchema(options, 5);

  storage::Catalog catalog;
  catalog.PutTable("events", std::move(ds.s));
  catalog.PutTable("devices", std::move(ds.r));
  std::printf("catalog tables:");
  for (const auto& name : catalog.TableNames()) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  // SQL-ish: SELECT ... FROM events JOIN devices ON fk = rid WHERE xs0 > -2,
  // feeding logistic regression — stated once, as a single program.
  ml::GlmConfig config;
  config.family = ml::GlmFamily::kBinomial;
  config.learning_rate = 0.05;
  config.max_epochs = 40;

  auto fit = pipeline::Pipeline::From(&catalog, "events")
                 .Filter(relational::Compare("xs0", relational::CompareOp::kGt,
                                             -2.0))
                 .Join("devices", "fk", "rid")
                 .Features({"xs0", "xs1", "xs2", "xr0", "xr1", "xr2", "xr3",
                            "xr4"})
                 .Label("y")
                 .TrainGlm(config);
  if (!fit.ok()) {
    std::printf("pipeline failed: %s\n", fit.status().ToString().c_str());
    return 1;
  }

  // The optimizer's report: relational prefix with est-vs-actual
  // cardinalities, the chosen physical route, and the laopt epoch program.
  std::printf("%s\n", fit->report.ExplainText().c_str());
  std::printf("logistic regression: %zu epochs, final loss %.5f\n",
              fit->model.epochs_run, fit->model.loss_history.back());

  // The same front-end rejects malformed programs with the offending stage.
  auto bad = pipeline::Pipeline::From(&catalog, "events")
                 .Join("devices", "fk", "rid")
                 .Features({"xs0", "no_such_column"})
                 .Label("y")
                 .TrainGlm(config);
  std::printf("\nmalformed plan rejected as expected:\n  %s\n",
              bad.status().ToString().c_str());
  return 0;
}
