// Tests for the declarative pipeline front-end: one logical program, two
// physical routes. Materialized and factorized lowerings must produce
// identical models (<= 1e-9) across dense/CSR/CLA bindings; the cost-based
// chooser must flip routes as the tuple ratio crosses the crossover; invalid
// plans must be rejected with the offending pipeline stage named; and the
// est-vs-actual cardinality counters must move.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "data/generators.h"
#include "ml/encoding.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"
#include "relational/logical_plan.h"
#include "relational/predicate.h"
#include "storage/catalog.h"

namespace dmml::pipeline {
namespace {

using relational::CompareOp;
using relational::LogicalNode;

storage::Catalog StarCatalog(size_t ns, size_t nr, size_t ds, size_t dr,
                             uint64_t seed = 7) {
  data::StarSchemaOptions o;
  o.ns = ns;
  o.nr = nr;
  o.ds = ds;
  o.dr = dr;
  o.noise_sigma = 0.1;
  auto gen = data::MakeStarSchema(o, seed);
  storage::Catalog catalog;
  catalog.PutTable("orders", std::move(gen.s));
  catalog.PutTable("products", std::move(gen.r));
  return catalog;
}

std::vector<std::string> StarFeatures(size_t ds, size_t dr) {
  std::vector<std::string> f;
  for (size_t j = 0; j < ds; ++j) f.push_back("xs" + std::to_string(j));
  for (size_t j = 0; j < dr; ++j) f.push_back("xr" + std::to_string(j));
  return f;
}

Pipeline StarPipeline(const storage::Catalog* catalog, size_t ds, size_t dr,
                      Route route) {
  PipelineOptions opts;
  opts.route = route;
  return Pipeline::From(catalog, "orders")
      .Join("products", "fk", "rid")
      .Features(StarFeatures(ds, dr))
      .Label("y")
      .WithOptions(opts);
}

void ExpectModelsAgree(const ml::GlmModel& a, const ml::GlmModel& b,
                       double tol) {
  ASSERT_EQ(a.weights.rows(), b.weights.rows());
  for (size_t i = 0; i < a.weights.rows(); ++i) {
    EXPECT_NEAR(a.weights.At(i, 0), b.weights.At(i, 0), tol) << "weight " << i;
  }
  EXPECT_NEAR(a.intercept, b.intercept, tol);
  EXPECT_EQ(a.epochs_run, b.epochs_run);
}

// ---------------------------------------------------------------------------
// Logical plan layer.

TEST(LogicalPlanTest, EstimatesScanFilterJoin) {
  storage::Catalog catalog = StarCatalog(500, 20, 2, 3);
  relational::StatisticsCache stats(&catalog);

  auto scan = LogicalNode::Scan("orders");
  auto scan_est = relational::EstimateCardinality(*scan, &stats);
  ASSERT_TRUE(scan_est.ok());
  EXPECT_DOUBLE_EQ(*scan_est, 500.0);

  auto filtered = LogicalNode::Filter(
      scan, relational::Compare("xs0", CompareOp::kGt, 0.0));
  auto filter_est = relational::EstimateCardinality(*filtered, &stats);
  ASSERT_TRUE(filter_est.ok());
  // Gaussian features: roughly half the rows qualify.
  EXPECT_GT(*filter_est, 100.0);
  EXPECT_LT(*filter_est, 400.0);

  auto joined = LogicalNode::Join(filtered, LogicalNode::Scan("products"),
                                  "fk", "rid");
  auto join_est = relational::EstimateCardinality(*joined, &stats);
  ASSERT_TRUE(join_est.ok());
  // PK-FK join keeps the (filtered) fact cardinality.
  EXPECT_NEAR(*join_est, *filter_est, 1.0);
}

TEST(LogicalPlanTest, ExecuteRecordsObservationsAndCounters) {
  storage::Catalog catalog = StarCatalog(300, 10, 2, 3);
  auto plan = LogicalNode::Join(
      LogicalNode::Filter(LogicalNode::Scan("orders"),
                          relational::Compare("xs0", CompareOp::kGt, -10.0)),
      LogicalNode::Scan("products"), "fk", "rid");

  auto* est_counter = obs::MetricsRegistry::Global().GetCounter(
      "relational.stats.estimated_rows");
  auto* act_counter = obs::MetricsRegistry::Global().GetCounter(
      "relational.stats.actual_rows");
  const uint64_t est_before = est_counter->Value();
  const uint64_t act_before = act_counter->Value();

  std::vector<relational::OperatorObservation> ops;
  auto out = relational::ExecutePlan(*plan, catalog, nullptr, &ops);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_rows(), 300u);  // xs0 > -10 keeps everything; PK-FK join.

  ASSERT_EQ(ops.size(), 4u);  // Scan, Filter, Scan, Join.
  EXPECT_EQ(ops[0].op_name, "Scan(orders)");
  EXPECT_EQ(ops[1].op_name, "Filter(orders)");
  EXPECT_EQ(ops[3].op_name, "Join(orders.fk = products.rid)");
  EXPECT_EQ(ops[3].actual_rows, 300u);
  EXPECT_GT(ops[3].estimated_rows, 0.0);

  EXPECT_GT(est_counter->Value(), est_before);
  EXPECT_GT(act_counter->Value(), act_before);
}

TEST(LogicalPlanTest, SchemaErrorsNameTheStage) {
  storage::Catalog catalog = StarCatalog(50, 5, 1, 1);
  auto bad_filter = LogicalNode::Filter(
      LogicalNode::Scan("orders"),
      relational::Compare("nope", CompareOp::kGt, 0.0));
  auto s = relational::OutputSchema(*bad_filter, catalog);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("Filter(orders)"), std::string::npos);

  auto bad_join = LogicalNode::Join(LogicalNode::Scan("orders"),
                                    LogicalNode::Scan("products"), "xs0",
                                    "rid");
  auto j = relational::OutputSchema(*bad_join, catalog);
  ASSERT_FALSE(j.ok());
  EXPECT_NE(j.status().message().find("Join("), std::string::npos);
  EXPECT_NE(j.status().message().find("type mismatch"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Route parity: one pipeline program, identical models on every route.

TEST(PipelineParityTest, GlmMaterializedVsFactorized) {
  storage::Catalog catalog = StarCatalog(400, 16, 2, 4);
  ml::GlmConfig config;
  config.learning_rate = 0.05;
  config.max_epochs = 40;

  auto mat = StarPipeline(&catalog, 2, 4, Route::kMaterialize)
                 .TrainGlm(config);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  auto fact = StarPipeline(&catalog, 2, 4, Route::kFactorized)
                  .TrainGlm(config);
  ASSERT_TRUE(fact.ok()) << fact.status().ToString();

  EXPECT_EQ(mat->report.chosen_route, Route::kMaterialize);
  EXPECT_EQ(fact->report.chosen_route, Route::kFactorized);
  ExpectModelsAgree(mat->model, fact->model, 1e-9);
  EXPECT_EQ(mat->report.actual_rows, 400u);
  EXPECT_EQ(fact->report.actual_rows, 400u);
  EXPECT_EQ(mat->report.feature_names, fact->report.feature_names);
}

TEST(PipelineParityTest, GlmWithFilterOnBaseTable) {
  storage::Catalog catalog = StarCatalog(500, 10, 2, 3);
  ml::GlmConfig config;
  config.learning_rate = 0.05;
  config.max_epochs = 30;
  auto pred = relational::Compare("xs0", CompareOp::kGt, -0.5);

  PipelineOptions mat_opts;
  mat_opts.route = Route::kMaterialize;
  auto mat = Pipeline::From(&catalog, "orders")
                 .Filter(pred)
                 .Join("products", "fk", "rid")
                 .Features(StarFeatures(2, 3))
                 .Label("y")
                 .WithOptions(mat_opts)
                 .TrainGlm(config);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();

  PipelineOptions fact_opts;
  fact_opts.route = Route::kFactorized;
  auto fact = Pipeline::From(&catalog, "orders")
                  .Filter(pred)
                  .Join("products", "fk", "rid")
                  .Features(StarFeatures(2, 3))
                  .Label("y")
                  .WithOptions(fact_opts)
                  .TrainGlm(config);
  ASSERT_TRUE(fact.ok()) << fact.status().ToString();

  EXPECT_LT(mat->report.actual_rows, 500u);
  EXPECT_EQ(mat->report.actual_rows, fact->report.actual_rows);
  ExpectModelsAgree(mat->model, fact->model, 1e-9);
}

TEST(PipelineParityTest, GlmAcrossCsrAndClaBindings) {
  storage::Catalog catalog = StarCatalog(300, 12, 2, 3);
  ml::GlmConfig config;
  config.learning_rate = 0.05;
  config.max_epochs = 30;

  auto fact = StarPipeline(&catalog, 2, 3, Route::kFactorized)
                  .TrainGlm(config);
  ASSERT_TRUE(fact.ok()) << fact.status().ToString();

  for (Binding binding : {Binding::kDense, Binding::kCsr, Binding::kCla}) {
    PipelineOptions opts;
    opts.route = Route::kMaterialize;
    opts.binding = binding;
    auto mat = Pipeline::From(&catalog, "orders")
                   .Join("products", "fk", "rid")
                   .Features(StarFeatures(2, 3))
                   .Label("y")
                   .WithOptions(opts)
                   .TrainGlm(config);
    ASSERT_TRUE(mat.ok()) << BindingName(binding) << ": "
                          << mat.status().ToString();
    EXPECT_EQ(mat->report.chosen_binding, binding);
    ExpectModelsAgree(mat->model, fact->model, 1e-9);
  }
}

TEST(PipelineParityTest, NormalEquationsBothRoutes) {
  storage::Catalog catalog = StarCatalog(250, 10, 2, 3);
  ml::GlmConfig config;
  config.l2 = 1e-3;

  auto mat = StarPipeline(&catalog, 2, 3, Route::kMaterialize)
                 .NormalEquations(config);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  auto fact = StarPipeline(&catalog, 2, 3, Route::kFactorized)
                  .NormalEquations(config);
  ASSERT_TRUE(fact.ok()) << fact.status().ToString();
  ExpectModelsAgree(mat->model, fact->model, 1e-9);
}

TEST(PipelineParityTest, KMeansBothRoutes) {
  storage::Catalog catalog = StarCatalog(300, 12, 2, 4);
  ml::KMeansConfig config;
  config.k = 4;
  config.max_iters = 15;

  auto mat = StarPipeline(&catalog, 2, 4, Route::kMaterialize)
                 .TrainKMeans(config);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  auto fact = StarPipeline(&catalog, 2, 4, Route::kFactorized)
                  .TrainKMeans(config);
  ASSERT_TRUE(fact.ok()) << fact.status().ToString();

  ASSERT_EQ(mat->model.centers.rows(), fact->model.centers.rows());
  ASSERT_EQ(mat->model.centers.cols(), fact->model.centers.cols());
  for (size_t c = 0; c < mat->model.centers.rows(); ++c) {
    for (size_t j = 0; j < mat->model.centers.cols(); ++j) {
      EXPECT_NEAR(mat->model.centers.At(c, j), fact->model.centers.At(c, j),
                  1e-9);
    }
  }
  EXPECT_EQ(mat->model.labels, fact->model.labels);
  EXPECT_NEAR(mat->model.inertia, fact->model.inertia,
              1e-9 * std::max(1.0, mat->model.inertia));
}

// ---------------------------------------------------------------------------
// The chooser.

TEST(PipelineChooserTest, PicksFactorizedAboveCrossover) {
  // High tuple ratio (3000 facts over 10 dims) and a wide dimension table:
  // per-epoch factorized work is a fraction of the materialized GEMM.
  storage::Catalog catalog = StarCatalog(3000, 10, 1, 40);
  ml::GlmConfig config;
  config.learning_rate = 0.01;
  config.max_epochs = 60;
  auto fit = StarPipeline(&catalog, 1, 40, Route::kAuto).TrainGlm(config);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(fit->report.chosen_route, Route::kFactorized);
  EXPECT_EQ(fit->report.route_reason, "cost");
  EXPECT_GT(fit->report.materialized_cost, fit->report.factorized_cost);
  EXPECT_GT(fit->report.est_rows, 0.0);
}

TEST(PipelineChooserTest, PicksMaterializedBelowCrossover) {
  // Tuple ratio < 1: the "dimension" table is taller than the fact table,
  // so each epoch's factorized pass touches more cells than the small
  // materialized join output — no redundancy to exploit.
  storage::Catalog catalog = StarCatalog(100, 400, 2, 3);
  ml::GlmConfig config;
  config.learning_rate = 0.05;
  config.max_epochs = 30;
  auto fit = StarPipeline(&catalog, 2, 3, Route::kAuto).TrainGlm(config);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(fit->report.chosen_route, Route::kMaterialize);
  EXPECT_EQ(fit->report.route_reason, "cost");
  EXPECT_LT(fit->report.materialized_cost, fit->report.factorized_cost);
}

TEST(PipelineChooserTest, ExplainRendersRelationalPrefixAndRoute) {
  storage::Catalog catalog = StarCatalog(2000, 8, 1, 30);
  ml::GlmConfig config;
  config.max_epochs = 50;
  auto fit = StarPipeline(&catalog, 1, 30, Route::kAuto).TrainGlm(config);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const std::string text = fit->report.ExplainText();
  EXPECT_NE(text.find("route: factorized"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan(orders)"), std::string::npos);
  EXPECT_NE(text.find("Join(orders.fk = products.rid)"), std::string::npos);
  EXPECT_NE(text.find("[factorized: join not materialized]"),
            std::string::npos);
  EXPECT_NE(text.find("laopt epoch program"), std::string::npos);
  EXPECT_NE(text.find("est"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rejection: errors name the offending pipeline stage.

TEST(PipelineRejectionTest, UnknownFeatureColumn) {
  storage::Catalog catalog = StarCatalog(50, 5, 1, 2);
  auto fit = Pipeline::From(&catalog, "orders")
                 .Join("products", "fk", "rid")
                 .Features({"xs0", "bogus"})
                 .Label("y")
                 .TrainGlm({});
  ASSERT_FALSE(fit.ok());
  EXPECT_NE(fit.status().message().find("pipeline stage Features"),
            std::string::npos)
      << fit.status().ToString();
}

TEST(PipelineRejectionTest, UnknownLabelColumn) {
  storage::Catalog catalog = StarCatalog(50, 5, 1, 2);
  auto fit = Pipeline::From(&catalog, "orders")
                 .Join("products", "fk", "rid")
                 .Features({"xs0"})
                 .Label("not_y")
                 .TrainGlm({});
  ASSERT_FALSE(fit.ok());
  EXPECT_NE(fit.status().message().find("pipeline stage Label"),
            std::string::npos);
}

TEST(PipelineRejectionTest, JoinKeyShapeMismatch) {
  storage::Catalog catalog = StarCatalog(50, 5, 1, 2);
  // xs0 is a double column: joining it against the int64 rid must be
  // rejected at plan time, naming the Join stage.
  auto fit = Pipeline::From(&catalog, "orders")
                 .Join("products", "xs0", "rid")
                 .Features({"xs0"})
                 .Label("y")
                 .TrainGlm({});
  ASSERT_FALSE(fit.ok());
  EXPECT_NE(fit.status().message().find("Join("), std::string::npos);
  EXPECT_NE(fit.status().message().find("type mismatch"), std::string::npos);
}

TEST(PipelineRejectionTest, FilterOverUnknownColumn) {
  storage::Catalog catalog = StarCatalog(50, 5, 1, 2);
  auto fit = Pipeline::From(&catalog, "orders")
                 .Filter(relational::Compare("ghost", CompareOp::kLt, 1.0))
                 .Join("products", "fk", "rid")
                 .Features({"xs0"})
                 .Label("y")
                 .TrainGlm({});
  ASSERT_FALSE(fit.ok());
  EXPECT_NE(fit.status().message().find("Filter("), std::string::npos);
}

TEST(PipelineRejectionTest, ForcedFactorizedButIneligible) {
  storage::Catalog catalog = StarCatalog(50, 5, 1, 2);
  PipelineOptions opts;
  opts.route = Route::kFactorized;
  // Filter placed after the join makes the factorized lowering ineligible.
  auto fit = Pipeline::From(&catalog, "orders")
                 .Join("products", "fk", "rid")
                 .Filter(relational::Compare("xr0", CompareOp::kGt, 0.0))
                 .Features({"xs0"})
                 .Label("y")
                 .WithOptions(opts)
                 .TrainGlm({});
  ASSERT_FALSE(fit.ok());
  EXPECT_NE(fit.status().message().find("ineligible"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CSR feature assembly (numeric + one-hot in one sparse matrix).

storage::Table CarsTable() {
  storage::Schema schema({{"y", storage::DataType::kDouble, false},
                          {"mileage", storage::DataType::kDouble, false},
                          {"color", storage::DataType::kString, true}});
  storage::Table t(schema);
  const char* colors[] = {"red", "blue", "green", "blue", "red", "green",
                          "red", "blue", "green", "red", "blue", "green"};
  for (size_t i = 0; i < 12; ++i) {
    double mileage = 1.0 + static_cast<double>(i % 5);
    double y = 2.0 * mileage + (colors[i][0] == 'r' ? 1.0 : -1.0);
    (void)t.AppendRow({y, mileage, std::string(colors[i])});
  }
  return t;
}

TEST(FeatureAssemblyTest, CsrMatchesDenseAssembly) {
  storage::Table t = CarsTable();
  auto assembled = ml::AssembleFeaturesCsr(t, {"mileage"}, {"color"});
  ASSERT_TRUE(assembled.ok()) << assembled.status().ToString();
  // 1 numeric + 3 one-hot slots (blue, green, red — sorted dictionaries).
  EXPECT_EQ(assembled->matrix.cols(), 4u);
  EXPECT_EQ(assembled->feature_names.size(), 4u);
  EXPECT_EQ(assembled->feature_names[0], "mileage");
  EXPECT_EQ(assembled->feature_names[1], "color=blue");

  la::DenseMatrix dense = assembled->matrix.ToDense();
  auto mileage = *t.ColumnToVector("mileage");
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(dense.At(i, 0), mileage.At(i, 0));
    double onehot_sum = 0;
    for (size_t j = 1; j < 4; ++j) onehot_sum += dense.At(i, j);
    EXPECT_DOUBLE_EQ(onehot_sum, 1.0);  // Exactly one indicator per row.
  }
}

TEST(FeatureAssemblyTest, PipelineWithCategoricalsUsesCsrBinding) {
  storage::Catalog catalog;
  catalog.PutTable("cars", CarsTable());
  ml::GlmConfig config;
  config.l2 = 1e-6;
  auto fit = Pipeline::From(&catalog, "cars")
                 .Features({"mileage"})
                 .CategoricalFeatures({"color"})
                 .Label("y")
                 .NormalEquations(config);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(fit->report.chosen_route, Route::kMaterialize);
  EXPECT_EQ(fit->report.chosen_binding, Binding::kCsr);
  EXPECT_EQ(fit->report.feature_cols, 4u);
  ASSERT_EQ(fit->report.feature_names.size(), 4u);
  EXPECT_EQ(fit->report.feature_names[2], "color=green");
  // The ridge fit should recover the mileage effect almost exactly.
  EXPECT_NEAR(fit->model.weights.At(0, 0), 2.0, 0.05);
}

// ---------------------------------------------------------------------------
// Fallback: duplicate dimension keys cannot be factorized.

TEST(PipelineFallbackTest, DuplicateDimensionKeysMaterialize) {
  storage::Schema orders_schema({{"fk", storage::DataType::kInt64, false},
                                 {"y", storage::DataType::kDouble, false},
                                 {"xs0", storage::DataType::kDouble, false}});
  storage::Table orders(orders_schema);
  for (int i = 0; i < 20; ++i) {
    (void)orders.AppendRow(
        {static_cast<int64_t>(i % 3), 0.5 * i, static_cast<double>(i)});
  }
  storage::Schema dims_schema({{"rid", storage::DataType::kInt64, false},
                               {"xr0", storage::DataType::kDouble, false}});
  storage::Table dims(dims_schema);
  for (int i = 0; i < 4; ++i) {
    // rid 0 appears twice: not a PK side.
    (void)dims.AppendRow({static_cast<int64_t>(i % 3), 1.0 * i});
  }
  storage::Catalog catalog;
  catalog.PutTable("orders", std::move(orders));
  catalog.PutTable("dims", std::move(dims));

  PipelineOptions opts;
  opts.route = Route::kFactorized;
  ml::GlmConfig config;
  config.max_epochs = 5;
  auto fit = Pipeline::From(&catalog, "orders")
                 .Join("dims", "fk", "rid")
                 .Features({"xs0", "xr0"})
                 .Label("y")
                 .WithOptions(opts)
                 .TrainGlm(config);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(fit->report.chosen_route, Route::kMaterialize);
  EXPECT_NE(fit->report.route_reason.find("duplicate"), std::string::npos);
  // The duplicated rid fans out: more output rows than fact rows.
  EXPECT_GT(fit->report.actual_rows, 20u);
}

}  // namespace
}  // namespace dmml::pipeline
