// Tests for table statistics and cardinality estimation.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "relational/operators.h"
#include "relational/statistics.h"

namespace dmml::relational {
namespace {

using storage::DataType;
using storage::Schema;
using storage::Table;

Table NumbersTable() {
  Table t(Schema({{"v", DataType::kDouble, true},
                  {"cat", DataType::kString, true},
                  {"id", DataType::kInt64, false}}));
  for (int i = 0; i < 100; ++i) {
    storage::Value v = i < 90 ? storage::Value(static_cast<double>(i % 10))
                              : storage::Value(std::monostate{});
    EXPECT_TRUE(t.AppendRow({v, std::string(i % 2 ? "odd" : "even"),
                             static_cast<int64_t>(i)})
                    .ok());
  }
  return t;
}

TEST(StatisticsTest, CollectsBasicFacts) {
  auto stats = CollectStatistics(NumbersTable());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_rows, 100u);
  const auto* v = stats->Find("v");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->null_count, 10u);
  EXPECT_EQ(v->distinct_count, 10u);
  EXPECT_DOUBLE_EQ(*v->min_value, 0.0);
  EXPECT_DOUBLE_EQ(*v->max_value, 9.0);
  size_t total = 0;
  for (size_t b : v->histogram) total += b;
  EXPECT_EQ(total, 90u);  // Non-NULL rows.

  const auto* cat = stats->Find("cat");
  ASSERT_NE(cat, nullptr);
  EXPECT_EQ(cat->distinct_count, 2u);
  EXPECT_FALSE(cat->min_value.has_value());

  const auto* id = stats->Find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->distinct_count, 100u);
  EXPECT_EQ(stats->Find("ghost"), nullptr);
}

TEST(StatisticsTest, EqualitySelectivityIsOneOverNdv) {
  auto stats = *CollectStatistics(NumbersTable());
  auto sel = EstimateSelectivity(stats, "v", CompareOp::kEq, 3.0);
  ASSERT_TRUE(sel.ok());
  // 1/10 distinct, scaled by 90% non-NULL.
  EXPECT_NEAR(*sel, 0.1 * 0.9, 1e-12);
  // Out-of-range equality is zero.
  EXPECT_DOUBLE_EQ(*EstimateSelectivity(stats, "v", CompareOp::kEq, 42.0), 0.0);
}

TEST(StatisticsTest, RangeSelectivityTracksActualFractions) {
  auto table = NumbersTable();
  auto stats = *CollectStatistics(table);
  for (double threshold : {2.0, 5.0, 8.0}) {
    auto est = EstimateSelectivity(stats, "v", CompareOp::kLt, threshold);
    ASSERT_TRUE(est.ok());
    auto filtered = Filter(table, Compare("v", CompareOp::kLt, threshold));
    ASSERT_TRUE(filtered.ok());
    double actual = static_cast<double>(filtered->num_rows()) / 100.0;
    EXPECT_NEAR(*est, actual, 0.1) << "threshold " << threshold;
  }
}

TEST(StatisticsTest, GtComplementsLt) {
  auto stats = *CollectStatistics(NumbersTable());
  auto lt = *EstimateSelectivity(stats, "v", CompareOp::kLt, 5.0);
  auto ge = *EstimateSelectivity(stats, "v", CompareOp::kGe, 5.0);
  EXPECT_NEAR(lt + ge, 0.9, 1e-9);  // Non-NULL fraction.
}

TEST(StatisticsTest, StringColumnsHaveNoRangeEstimates) {
  auto stats = *CollectStatistics(NumbersTable());
  auto sel = EstimateSelectivity(stats, "cat", CompareOp::kEq, 1.0);
  ASSERT_TRUE(sel.ok());
  EXPECT_DOUBLE_EQ(*sel, 0.0);  // No numeric min/max collected.
}

TEST(StatisticsTest, JoinCardinalityPkFk) {
  data::StarSchemaOptions options;
  options.ns = 500;
  options.nr = 25;
  auto ds = data::MakeStarSchema(options, 1);
  auto s_stats = *CollectStatistics(ds.s);
  auto r_stats = *CollectStatistics(ds.r);
  auto est = EstimateJoinCardinality(s_stats, "fk", r_stats, "rid");
  ASSERT_TRUE(est.ok());
  // PK-FK join output is exactly nS; the formula gives |S|*|R|/max(ndv).
  EXPECT_NEAR(*est, 500.0, 1.0);
}

TEST(StatisticsTest, Validation) {
  auto table = NumbersTable();
  EXPECT_FALSE(CollectStatistics(table, 0).ok());
  auto stats = *CollectStatistics(table);
  EXPECT_FALSE(EstimateSelectivity(stats, "ghost", CompareOp::kEq, 1.0).ok());
  TableStatistics empty;
  EXPECT_FALSE(
      EstimateJoinCardinality(empty, "a", empty, "b").ok());
}

TEST(StatisticsTest, ConstantColumn) {
  Table t(Schema({{"c", DataType::kDouble, false}}));
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(t.AppendRow({7.0}).ok());
  auto stats = *CollectStatistics(t);
  const auto* c = stats.Find("c");
  EXPECT_EQ(c->distinct_count, 1u);
  EXPECT_DOUBLE_EQ(*c->min_value, 7.0);
  EXPECT_DOUBLE_EQ(*c->max_value, 7.0);
  EXPECT_NEAR(*EstimateSelectivity(stats, "c", CompareOp::kEq, 7.0), 1.0, 1e-12);
  EXPECT_NEAR(*EstimateSelectivity(stats, "c", CompareOp::kLe, 7.0), 1.0, 1e-12);
  EXPECT_NEAR(*EstimateSelectivity(stats, "c", CompareOp::kLt, 7.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace dmml::relational
