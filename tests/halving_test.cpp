// Tests for successive-halving hyperparameter search.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "ml/metrics.h"
#include "modelsel/successive_halving.h"

namespace dmml::modelsel {
namespace {

using la::DenseMatrix;
using ml::GlmConfig;
using ml::GlmFamily;

std::vector<GlmConfig> MixedQualityConfigs() {
  // One clearly-good configuration among several hopeless ones.
  GlmConfig base;
  base.family = GlmFamily::kBinomial;
  std::vector<GlmConfig> configs(6, base);
  configs[0].learning_rate = 1e-5;   // Barely moves.
  configs[1].learning_rate = 1e-4;
  configs[2].learning_rate = 0.4;    // The good one.
  configs[3].learning_rate = 1e-5;
  configs[3].l2 = 10.0;              // Over-regularized.
  configs[4].learning_rate = 1e-4;
  configs[4].l2 = 5.0;
  configs[5].learning_rate = 2e-5;
  return configs;
}

TEST(HalvingTest, FindsTheGoodConfiguration) {
  auto ds = data::MakeClassification(800, 6, 0.05, 1);
  HalvingConfig config;
  config.min_epochs = 5;
  config.eta = 2.0;
  auto result = SuccessiveHalving(ds.x, ds.y, MixedQualityConfigs(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_index, 2u);
  auto labels = result->best_model.PredictLabels(ds.x);
  ASSERT_TRUE(labels.ok());
  EXPECT_GT(*ml::Accuracy(ds.y, *labels), 0.8);
}

TEST(HalvingTest, RungsShrinkGeometrically) {
  auto ds = data::MakeClassification(400, 4, 0.1, 2);
  HalvingConfig config;
  config.min_epochs = 3;
  config.eta = 2.0;
  std::vector<GlmConfig> configs(8, GlmConfig{});
  for (size_t i = 0; i < 8; ++i) {
    configs[i].family = GlmFamily::kBinomial;
    configs[i].learning_rate = 0.01 * static_cast<double>(i + 1);
  }
  auto result = SuccessiveHalving(ds.x, ds.y, configs, config);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->rungs.size(), 3u);
  EXPECT_EQ(result->rungs[0].survivors.size(), 8u);
  EXPECT_EQ(result->rungs[1].survivors.size(), 4u);
  EXPECT_EQ(result->rungs[2].survivors.size(), 2u);
  // Budget grows by eta per rung.
  EXPECT_EQ(result->rungs[0].epochs, 3u);
  EXPECT_EQ(result->rungs[1].epochs, 6u);
  EXPECT_EQ(result->rungs[2].epochs, 12u);
}

TEST(HalvingTest, SpendsFewerEpochsThanFullGrid) {
  auto ds = data::MakeClassification(300, 4, 0.1, 3);
  std::vector<GlmConfig> configs(16, GlmConfig{});
  for (size_t i = 0; i < 16; ++i) {
    configs[i].family = GlmFamily::kBinomial;
    configs[i].learning_rate = 0.02 * static_cast<double>(i + 1);
  }
  HalvingConfig config;
  config.min_epochs = 4;
  config.eta = 2.0;
  auto result = SuccessiveHalving(ds.x, ds.y, configs, config);
  ASSERT_TRUE(result.ok());
  // Full grid at the final budget: 16 configs x final epochs.
  size_t final_epochs = result->rungs.back().epochs;
  EXPECT_LT(result->total_epoch_equivalents, 16 * final_epochs);
}

TEST(HalvingTest, SingleConfigDegeneratesGracefully) {
  auto ds = data::MakeClassification(200, 3, 0.1, 4);
  GlmConfig only;
  only.family = GlmFamily::kBinomial;
  only.learning_rate = 0.3;
  HalvingConfig config;
  config.min_epochs = 5;
  auto result = SuccessiveHalving(ds.x, ds.y, {only}, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_index, 0u);
  EXPECT_EQ(result->rungs.size(), 1u);
}

TEST(HalvingTest, GaussianFamilyUsesRmseScore) {
  auto ds = data::MakeRegression(300, 4, 0.1, 5);
  std::vector<GlmConfig> configs(4, GlmConfig{});
  configs[0].learning_rate = 1e-6;
  configs[1].learning_rate = 0.05;  // Good.
  configs[2].learning_rate = 1e-6;
  configs[3].learning_rate = 1e-5;
  HalvingConfig config;
  config.min_epochs = 10;
  auto result = SuccessiveHalving(ds.x, ds.y, configs, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_index, 1u);
}

TEST(HalvingTest, Validation) {
  auto ds = data::MakeClassification(100, 3, 0.1, 6);
  HalvingConfig config;
  EXPECT_FALSE(SuccessiveHalving(ds.x, ds.y, {}, config).ok());
  config.eta = 1.0;
  EXPECT_FALSE(SuccessiveHalving(ds.x, ds.y, {GlmConfig{}}, config).ok());
  config = HalvingConfig{};
  config.min_epochs = 0;
  EXPECT_FALSE(SuccessiveHalving(ds.x, ds.y, {GlmConfig{}}, config).ok());
  config = HalvingConfig{};
  config.validation_fraction = 1.5;
  EXPECT_FALSE(SuccessiveHalving(ds.x, ds.y, {GlmConfig{}}, config).ok());
}

}  // namespace
}  // namespace dmml::modelsel
