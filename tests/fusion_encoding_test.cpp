// Tests for fused elementwise execution and categorical encoding.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "data/generators.h"
#include "la/kernels.h"
#include "laopt/executor.h"
#include "laopt/fusion.h"
#include "ml/encoding.h"
#include "ml/glm.h"
#include "ml/metrics.h"
#include "ml/sparse_glm.h"

namespace dmml {
namespace {

using la::DenseMatrix;
using laopt::ExprNode;
using laopt::ExprPtr;

ExprPtr Leaf(const DenseMatrix& m, const char* name = "M") {
  return *ExprNode::Input(std::make_shared<DenseMatrix>(m), name);
}

// --------------------------------------------------------------------------
// Fusion
// --------------------------------------------------------------------------

TEST(FusionTest, DetectsFusibleRegions) {
  auto a = Leaf(DenseMatrix(3, 3), "A");
  auto b = Leaf(DenseMatrix(3, 3), "B");
  // Single op: not worth fusing.
  EXPECT_FALSE(laopt::IsFusibleRegion(*ExprNode::Add(a, b)));
  // Two chained elementwise ops: fusible.
  auto chain = *ExprNode::Add(*ExprNode::ScalarMul(2.0, a), b);
  EXPECT_TRUE(laopt::IsFusibleRegion(chain));
  // MatMul roots are never fusible regions.
  auto mm = *ExprNode::MatMul(a, b);
  EXPECT_FALSE(laopt::IsFusibleRegion(mm));
  EXPECT_FALSE(laopt::IsFusibleRegion(a));
}

TEST(FusionTest, FusedResultMatchesUnfused) {
  auto a = Leaf(data::GaussianMatrix(20, 10, 1), "A");
  auto b = Leaf(data::GaussianMatrix(20, 10, 2), "B");
  auto c = Leaf(data::GaussianMatrix(20, 10, 3), "C");
  // 2*A + B .* C - 0.5*B
  auto expr = *ExprNode::Subtract(
      *ExprNode::Add(*ExprNode::ScalarMul(2.0, a), *ExprNode::ElemMul(b, c)),
      *ExprNode::ScalarMul(0.5, b));
  laopt::FusionStats stats;
  auto fused = laopt::ExecuteWithFusion(expr, &stats);
  auto plain = laopt::Execute(expr);
  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(fused->ApproxEquals(*plain, 1e-12));
  EXPECT_EQ(stats.regions_fused, 1u);
  EXPECT_GE(stats.ops_fused, 4u);
}

TEST(FusionTest, FusesAroundMatMulBoundaries) {
  auto x = Leaf(data::GaussianMatrix(30, 8, 4), "X");
  auto v = Leaf(data::GaussianMatrix(8, 1, 5), "v");
  auto y = Leaf(data::GaussianMatrix(30, 1, 6), "y");
  // (X*v - y) .* (X*v - y) ... shares the matmul; fused region sits on top.
  auto mv = *ExprNode::MatMul(x, v);
  auto residual = *ExprNode::Subtract(mv, y);
  auto squared = *ExprNode::ElemMul(residual, residual);
  laopt::FusionStats stats;
  auto fused = laopt::ExecuteWithFusion(squared, &stats);
  auto plain = laopt::Execute(squared);
  ASSERT_TRUE(fused.ok());
  EXPECT_TRUE(fused->ApproxEquals(*plain, 1e-12));
  EXPECT_GE(stats.regions_fused, 1u);
}

TEST(FusionTest, AggregatesAndTransposesStillWork) {
  auto a = Leaf(data::GaussianMatrix(7, 5, 7), "A");
  auto expr = *ExprNode::Sum(
      *ExprNode::Add(*ExprNode::ScalarMul(3.0, a), *ExprNode::ElemMul(a, a)));
  auto fused = laopt::ExecuteWithFusion(expr);
  auto plain = laopt::Execute(expr);
  ASSERT_TRUE(fused.ok());
  EXPECT_NEAR(fused->At(0, 0), plain->At(0, 0), 1e-9);
}

TEST(FusionTest, DuplicateLeafLoadsOnce) {
  auto am = std::make_shared<DenseMatrix>(data::GaussianMatrix(5, 5, 8));
  auto a = *ExprNode::Input(am, "A");
  // a + a + a: one distinct input, three loads of the same slot.
  auto expr = *ExprNode::Add(*ExprNode::Add(a, a), a);
  laopt::FusionStats stats;
  auto fused = laopt::ExecuteWithFusion(expr, &stats);
  ASSERT_TRUE(fused.ok());
  EXPECT_TRUE(fused->ApproxEquals(la::Scale(*am, 3.0), 1e-12));
}

TEST(FusionTest, NullAndNonRegionErrors) {
  EXPECT_FALSE(laopt::ExecuteWithFusion(nullptr).ok());
  auto a = Leaf(DenseMatrix(2, 2), "A");
  EXPECT_FALSE(
      laopt::ExecuteFused(a, [](const ExprPtr&) -> Result<DenseMatrix> {
        return DenseMatrix(2, 2);
      }).ok());
}

// --------------------------------------------------------------------------
// One-hot encoding
// --------------------------------------------------------------------------

storage::Table CityTable() {
  storage::Table t(storage::Schema({{"city", storage::DataType::kString, true},
                                    {"tier", storage::DataType::kString, true}}));
  auto add = [&](const char* city, const char* tier) {
    EXPECT_TRUE(t.AppendRow({std::string(city), std::string(tier)}).ok());
  };
  add("lyon", "b");
  add("paris", "a");
  add("lyon", "a");
  add("nice", "b");
  return t;
}

TEST(OneHotTest, EncodesSortedDictionaries) {
  ml::OneHotEncoder encoder;
  auto encoded = encoder.FitTransform(CityTable(), {"city", "tier"});
  ASSERT_TRUE(encoded.ok());
  // city dict: {lyon, nice, paris}; tier dict: {a, b} -> width 5.
  EXPECT_EQ(encoder.TotalWidth(), 5u);
  EXPECT_EQ(encoded->rows(), 4u);
  EXPECT_EQ(encoded->cols(), 5u);
  auto names = encoder.FeatureNames();
  EXPECT_EQ(names[0], "city=lyon");
  EXPECT_EQ(names[2], "city=paris");
  EXPECT_EQ(names[3], "tier=a");
  // Row 1 = paris/a: indicators at city=paris (2) and tier=a (3).
  EXPECT_DOUBLE_EQ(encoded->At(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(encoded->At(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(encoded->At(1, 0), 0.0);
  // Exactly one indicator per block per row.
  for (size_t i = 0; i < 4; ++i) {
    double city_block = encoded->At(i, 0) + encoded->At(i, 1) + encoded->At(i, 2);
    EXPECT_DOUBLE_EQ(city_block, 1.0);
  }
}

TEST(OneHotTest, UnseenValuesAndNullsEncodeAsZero) {
  ml::OneHotEncoder encoder;
  ASSERT_TRUE(encoder.Fit(CityTable(), {"city"}).ok());
  storage::Table fresh(
      storage::Schema({{"city", storage::DataType::kString, true}}));
  ASSERT_TRUE(fresh.AppendRow({std::string("tokyo")}).ok());  // Unseen.
  ASSERT_TRUE(fresh.AppendRow({std::monostate{}}).ok());      // NULL.
  ASSERT_TRUE(fresh.AppendRow({std::string("lyon")}).ok());
  auto encoded = encoder.Transform(fresh);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->nnz(), 1u);  // Only the lyon row.
  EXPECT_DOUBLE_EQ(encoded->At(2, 0), 1.0);
}

TEST(OneHotTest, TrainableEndToEnd) {
  // Category determines the label; one-hot + sparse logistic nails it.
  storage::Table t(storage::Schema({{"cat", storage::DataType::kString, false}}));
  Rng rng(9);
  DenseMatrix y(400, 1);
  const char* values[] = {"red", "green", "blue", "cyan"};
  for (size_t i = 0; i < 400; ++i) {
    size_t v = rng.UniformInt(uint64_t{4});
    ASSERT_TRUE(t.AppendRow({std::string(values[v])}).ok());
    y.At(i, 0) = (v < 2) ? 1.0 : 0.0;
  }
  ml::OneHotEncoder encoder;
  auto x = encoder.FitTransform(t, {"cat"});
  ASSERT_TRUE(x.ok());
  ml::GlmConfig config;
  config.family = ml::GlmFamily::kBinomial;
  config.learning_rate = 1.0;
  config.max_epochs = 200;
  auto model = ml::TrainGlmSparse(*x, y, config);
  ASSERT_TRUE(model.ok());
  auto labels = model->PredictLabels(x->ToDense());
  EXPECT_DOUBLE_EQ(*ml::Accuracy(y, *labels), 1.0);
}

TEST(OneHotTest, Validation) {
  ml::OneHotEncoder encoder;
  EXPECT_FALSE(encoder.Fit(CityTable(), {}).ok());
  EXPECT_FALSE(encoder.Fit(CityTable(), {"ghost"}).ok());
  EXPECT_FALSE(encoder.Transform(CityTable()).ok());  // Unfitted.
  storage::Table numeric(
      storage::Schema({{"n", storage::DataType::kInt64, false}}));
  EXPECT_FALSE(encoder.Fit(numeric, {"n"}).ok());
}

// --------------------------------------------------------------------------
// Hash encoding
// --------------------------------------------------------------------------

TEST(HashEncodeTest, OneEntryPerNonNullCell) {
  auto encoded = ml::HashEncode(CityTable(), {"city", "tier"}, 32);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->rows(), 4u);
  EXPECT_EQ(encoded->cols(), 32u);
  // 8 cells, all non-NULL; collisions within a row could merge entries but
  // with 32 buckets and 2 columns that's unlikely for this fixed data.
  EXPECT_EQ(encoded->nnz(), 8u);
}

TEST(HashEncodeTest, DeterministicAndSeedSensitive) {
  auto a = ml::HashEncode(CityTable(), {"city"}, 16, 1);
  auto b = ml::HashEncode(CityTable(), {"city"}, 16, 1);
  auto c = ml::HashEncode(CityTable(), {"city"}, 16, 2);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);  // Different seed relocates features (w.h.p.).
}

TEST(HashEncodeTest, SameValueDifferentColumnsHashApart) {
  storage::Table t(storage::Schema({{"c1", storage::DataType::kString, false},
                                    {"c2", storage::DataType::kString, false}}));
  ASSERT_TRUE(t.AppendRow({std::string("x"), std::string("x")}).ok());
  auto encoded = ml::HashEncode(t, {"c1", "c2"}, 1024);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->nnz(), 2u);  // Column namespacing separates them.
}

TEST(HashEncodeTest, Validation) {
  EXPECT_FALSE(ml::HashEncode(CityTable(), {"city"}, 0).ok());
  EXPECT_FALSE(ml::HashEncode(CityTable(), {}, 8).ok());
  EXPECT_FALSE(ml::HashEncode(CityTable(), {"ghost"}, 8).ok());
}

}  // namespace
}  // namespace dmml
