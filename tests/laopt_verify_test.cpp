// Plan verifier, lint diagnostics, and static schedule/liveness analysis.
//
//  * Corrupted DAGs — cycles, wrong arity, null children, stale cached
//    shapes — must be rejected with a diagnostic naming the rule and node,
//    and a verifying pass failure must name the pass.
//  * VerifyRewrite catches passes that invent leaves, change the root shape,
//    or (for CSE) lose or duplicate structural value classes.
//  * Every lint rule demonstrated failing, then clean on the fixed plan.
//  * ComputeSchedule: wavefront levels, interference, concurrency, max_live.
//  * Liveness-driven buffer sharing in BufferedExecutor: fewer buffers than
//    dedicated mode (counter-asserted) with bit-identical results.
//
// This suite rides the sanitizer gates (thread, address+undefined): the
// cyclic-plan tests explicitly break their reference cycles so LeakSanitizer
// stays quiet.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "la/kernels.h"
#include "laopt/analysis.h"
#include "laopt/cse.h"
#include "laopt/executor.h"
#include "laopt/expr.h"
#include "laopt/optimizer.h"
#include "laopt/parser.h"
#include "laopt/pipeline.h"
#include "laopt/verify.h"
#include "ml/unified_trainers.h"
#include "obs/metrics.h"

namespace dmml::laopt {

// Test-only corruption hook (befriended by ExprNode): manufactures the
// ill-formed DAGs the public factories correctly refuse to build.
struct ExprNodeTestAccess {
  static void SetRows(const ExprPtr& n, size_t rows) {
    const_cast<ExprNode*>(n.get())->rows_ = rows;
  }
  static void SetCols(const ExprPtr& n, size_t cols) {
    const_cast<ExprNode*>(n.get())->cols_ = cols;
  }
  static std::vector<ExprPtr>& Children(const ExprPtr& n) {
    return const_cast<ExprNode*>(n.get())->children_;
  }
};

namespace {

using cla::CompressedMatrix;
using la::DenseMatrix;
using la::SparseMatrix;

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

// Scoped environment override; restores the previous value on destruction.
// Only used from single-threaded test bodies (setenv is not thread-safe).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    setenv(name, value, 1);  // NOLINT(concurrency-mt-unsafe)
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_.c_str(), 1);  // NOLINT(concurrency-mt-unsafe)
    } else {
      unsetenv(name_);  // NOLINT(concurrency-mt-unsafe)
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::string old_;
  bool had_old_ = false;
};

bool HasRule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) return true;
  }
  return false;
}

size_t ErrorCount(const std::vector<Diagnostic>& diags) {
  size_t n = 0;
  for (const Diagnostic& d : diags) n += d.severity == Severity::kError ? 1 : 0;
  return n;
}

std::shared_ptr<DenseMatrix> Gaussian(size_t rows, size_t cols, uint64_t seed) {
  return std::make_shared<DenseMatrix>(data::GaussianMatrix(rows, cols, seed));
}

SparseMatrix ToCsr(const DenseMatrix& x) {
  std::vector<la::Triplet> triplets;
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      if (x.At(r, c) != 0.0) triplets.push_back({r, c, x.At(r, c)});
    }
  }
  return SparseMatrix::FromTriplets(x.rows(), x.cols(), triplets);
}

// ---------------------------------------------------------------------------
// Verifier: corrupted DAGs are rejected, rule and node named.
// ---------------------------------------------------------------------------

TEST(VerifyPlanTest, CleanPlanHasNoDiagnostics) {
  auto x = *ExprNode::Input(Gaussian(40, 6, 1), "X");
  auto w = *ExprNode::Input(Gaussian(6, 1, 2), "w");
  auto plan = *ExprNode::MatMul(*ExprNode::Transpose(x), *ExprNode::MatMul(x, w));
  const uint64_t runs_before = CounterValue("laopt.verify.runs");
  EXPECT_TRUE(VerifyPlan(plan).empty());
  EXPECT_EQ(CounterValue("laopt.verify.runs"), runs_before + 1);
}

TEST(VerifyPlanTest, RejectsCycle) {
  auto x = *ExprNode::Input(Gaussian(5, 5, 3), "X");
  auto a = *ExprNode::Transpose(x);
  auto b = *ExprNode::Transpose(a);
  // Corrupt a's child edge to point back at b: a -> b -> a.
  ExprNodeTestAccess::Children(a)[0] = b;
  std::vector<Diagnostic> diags = VerifyPlan(b);
  EXPECT_TRUE(HasRule(diags, "verify.cycle")) << RenderDiagnostics(diags);
  EXPECT_GE(ErrorCount(diags), 1u);
  // A cyclic plan must also be rejected by the scheduler, not crash it.
  EXPECT_FALSE(ComputeSchedule(b).ok());
  // Break the shared_ptr cycle so LeakSanitizer stays quiet.
  ExprNodeTestAccess::Children(a).clear();
}

TEST(VerifyPlanTest, RejectsWrongArity) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 4), "X");
  auto y = *ExprNode::Input(Gaussian(4, 3, 5), "Y");
  auto add = *ExprNode::Add(x, y);
  ExprNodeTestAccess::Children(add).pop_back();  // kAdd with one child.
  std::vector<Diagnostic> diags = VerifyPlan(add);
  EXPECT_TRUE(HasRule(diags, "verify.arity")) << RenderDiagnostics(diags);
}

TEST(VerifyPlanTest, RejectsNullChild) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 6), "X");
  auto t = *ExprNode::Transpose(x);
  ExprNodeTestAccess::Children(t)[0] = nullptr;
  std::vector<Diagnostic> diags = VerifyPlan(t);
  EXPECT_TRUE(HasRule(diags, "verify.null_child")) << RenderDiagnostics(diags);
}

TEST(VerifyPlanTest, RejectsStaleDerivedShape) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 7), "X");
  auto t = *ExprNode::Transpose(x);  // Correctly 3x4.
  ExprNodeTestAccess::SetRows(t, 7);
  std::vector<Diagnostic> diags = VerifyPlan(t);
  ASSERT_TRUE(HasRule(diags, "verify.stale_shape")) << RenderDiagnostics(diags);
  // The diagnostic names the offending node.
  for (const Diagnostic& d : diags) {
    if (d.rule == "verify.stale_shape") EXPECT_FALSE(d.node.empty());
  }
}

TEST(VerifyPlanTest, RejectsStaleBoundLeafShape) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 8), "X");
  ExprNodeTestAccess::SetCols(x, 9);  // Leaf no longer matches its operand.
  std::vector<Diagnostic> diags = VerifyPlan(x);
  EXPECT_TRUE(HasRule(diags, "verify.stale_shape")) << RenderDiagnostics(diags);
}

TEST(VerifyRewriteTest, OptimizerAndCseOutputsVerifyClean) {
  auto x = *ExprNode::Input(Gaussian(50, 4, 9), "X");
  auto w = *ExprNode::Input(Gaussian(4, 1, 10), "w");
  // Doubly-transposed chain with a shared Gram: exercises transpose
  // elimination, chain reordering, and CSE merging.
  auto gram1 = *ExprNode::MatMul(*ExprNode::Transpose(x), x);
  auto gram2 = *ExprNode::MatMul(*ExprNode::Transpose(x), x);
  auto before = *ExprNode::MatMul(*ExprNode::Add(gram1, gram2), w);

  auto optimized = Optimize(before);
  ASSERT_TRUE(optimized.ok()) << optimized.status().message();
  EXPECT_EQ(ErrorCount(VerifyRewrite("optimizer", before, *optimized)), 0u);

  auto consed = EliminateCommonSubexpressions(*optimized);
  ASSERT_TRUE(consed.ok()) << consed.status().message();
  EXPECT_EQ(ErrorCount(VerifyRewrite("cse", *optimized, *consed,
                                     /*expect_hash_consed=*/true)),
            0u);
}

TEST(VerifyRewriteTest, FlagsForeignLeaf) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 11), "X");
  auto z = *ExprNode::Input(Gaussian(4, 3, 12), "Z");
  std::vector<Diagnostic> diags =
      VerifyRewrite("optimizer", *ExprNode::Transpose(x), *ExprNode::Transpose(z));
  EXPECT_TRUE(HasRule(diags, "verify.foreign_leaf")) << RenderDiagnostics(diags);
}

TEST(VerifyRewriteTest, FlagsRootShapeChange) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 13), "X");
  std::vector<Diagnostic> diags =
      VerifyRewrite("optimizer", *ExprNode::Transpose(x), x);  // 3x4 -> 4x3.
  EXPECT_TRUE(HasRule(diags, "verify.root_shape")) << RenderDiagnostics(diags);
}

TEST(VerifyRewriteTest, HashConsingChecksValueCoverage) {
  auto x = *ExprNode::Input(Gaussian(30, 4, 14), "X");
  auto gram1 = *ExprNode::MatMul(*ExprNode::Transpose(x), x);
  auto gram2 = *ExprNode::MatMul(*ExprNode::Transpose(x), x);
  auto before = *ExprNode::Add(gram1, gram2);

  // A "CSE output" that still contains two nodes of the same value class.
  std::vector<Diagnostic> dup =
      VerifyRewrite("cse", before, before, /*expect_hash_consed=*/true);
  EXPECT_TRUE(HasRule(dup, "verify.duplicate_value")) << RenderDiagnostics(dup);

  // A "CSE output" that dropped the Add value class entirely (the root shape
  // happens to match, so only the coverage check can catch this).
  std::vector<Diagnostic> lost =
      VerifyRewrite("cse", before, gram1, /*expect_hash_consed=*/true);
  EXPECT_TRUE(HasRule(lost, "verify.value_lost")) << RenderDiagnostics(lost);
}

// ---------------------------------------------------------------------------
// Verifier surfacing: pass and node are named; DMML_VERIFY toggles.
// ---------------------------------------------------------------------------

TEST(VerifyGateTest, ExecutorRejectsCorruptPlanNamingPass) {
  ScopedEnv verify_on("DMML_VERIFY", "1");
  auto x = *ExprNode::Input(Gaussian(4, 3, 15), "X");
  auto t = *ExprNode::Transpose(x);
  ExprNodeTestAccess::SetRows(t, 7);
  BufferedExecutor executor;
  auto result = executor.Run(t);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("executor"), std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("verify.stale_shape"),
            std::string::npos)
      << result.status().message();
}

TEST(VerifyGateTest, PipelineRejectsCorruptPlanNamingPass) {
  ScopedEnv verify_on("DMML_VERIFY", "1");
  auto x = *ExprNode::Input(Gaussian(4, 3, 16), "X");
  auto t = *ExprNode::Transpose(x);
  ExprNodeTestAccess::SetRows(t, 7);
  PipelineOptions options;
  options.run_analysis = false;  // Isolate the verifier as the rejector.
  auto result = CompilePlan(t, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("input"), std::string::npos)
      << result.status().message();
}

TEST(VerifyGateTest, DisabledVerifierSkipsTheGate) {
  ScopedEnv verify_off("DMML_VERIFY", "0");
  EXPECT_FALSE(VerifyEnabled());
  auto x = *ExprNode::Input(Gaussian(4, 3, 17), "X");
  auto t = *ExprNode::Transpose(x);
  ExprNodeTestAccess::SetRows(t, 7);
  PipelineOptions options;
  options.run_analysis = false;
  // Compile-only: the optimizer rebuilds nodes through the checked factories,
  // so the stale cached shape is simply recomputed away.
  EXPECT_TRUE(CompilePlan(t, options).ok());
}

TEST(VerifyGateTest, ExplainCarriesDiagnosticsLine) {
  ScopedEnv verify_on("DMML_VERIFY", "1");
  auto x = *ExprNode::Input(Gaussian(20, 4, 18), "X");
  auto plan = *ExprNode::MatMul(*ExprNode::Transpose(x), x);
  PipelineOptions options;
  options.capture_explain = true;
  PlanReport report;
  ASSERT_TRUE(CompilePlan(plan, options, &report).ok());
  EXPECT_NE(report.explain.find("diagnostics"), std::string::npos)
      << report.explain;
}

// ---------------------------------------------------------------------------
// Lint rules: each failing, then clean.
// ---------------------------------------------------------------------------

TEST(LintPlanTest, DeadZeroScalar) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 20), "X");
  EXPECT_TRUE(HasRule(LintPlan(*ExprNode::ScalarMul(0.0, x)),
                      "lint.dead_zero_scalar"));
  EXPECT_FALSE(HasRule(LintPlan(*ExprNode::ScalarMul(2.0, x)),
                       "lint.dead_zero_scalar"));
}

TEST(LintPlanTest, NonfiniteScalar) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 21), "X");
  auto inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(HasRule(LintPlan(*ExprNode::ScalarMul(inf, x)),
                      "lint.nonfinite_scalar"));
  EXPECT_FALSE(HasRule(LintPlan(*ExprNode::ScalarMul(-2.5, x)),
                       "lint.nonfinite_scalar"));
}

TEST(LintPlanTest, RedundantTranspose) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 22), "X");
  auto tt = *ExprNode::Transpose(*ExprNode::Transpose(x));
  EXPECT_TRUE(HasRule(LintPlan(tt), "lint.redundant_transpose"));
  EXPECT_FALSE(HasRule(LintPlan(*ExprNode::Transpose(x)),
                       "lint.redundant_transpose"));
}

TEST(LintPlanTest, SelfSubtract) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 23), "X");
  auto y = *ExprNode::Input(Gaussian(4, 3, 24), "Y");
  EXPECT_TRUE(HasRule(LintPlan(*ExprNode::Subtract(x, x)), "lint.self_subtract"));
  EXPECT_FALSE(HasRule(LintPlan(*ExprNode::Subtract(x, y)), "lint.self_subtract"));
}

TEST(LintPlanTest, StaticallyZeroOperand) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 25), "X");
  auto zero = *ExprNode::Input(std::make_shared<DenseMatrix>(4, 3), "Z");
  EXPECT_TRUE(HasRule(LintPlan(*ExprNode::ElemMul(x, zero)), "lint.zero_operand"));
  auto y = *ExprNode::Input(Gaussian(4, 3, 26), "Y");
  EXPECT_FALSE(HasRule(LintPlan(*ExprNode::ElemMul(x, y)), "lint.zero_operand"));
}

TEST(LintPlanTest, DensifyBoundReprChoices) {
  auto dense = Gaussian(4, 3, 27);
  DenseMatrix holey = *dense;
  for (size_t i = 0; i < holey.size(); i += 2) holey.data()[i] = 0.0;
  auto sparse = std::make_shared<SparseMatrix>(ToCsr(holey));
  auto xd = *ExprNode::Input(dense, "Xd");
  auto xs = *ExprNode::InputOperand(Operand(sparse), "Xs");

  // Elementwise over a sparse operand densifies on every run.
  EXPECT_TRUE(HasRule(LintPlan(*ExprNode::Add(xs, xd)), "lint.densify_bound"));
  EXPECT_FALSE(HasRule(LintPlan(*ExprNode::Add(xd, xd)), "lint.densify_bound"));

  // The generic matmul path densifies its right operand.
  auto y = *ExprNode::Input(Gaussian(2, 4, 28), "Y");
  EXPECT_TRUE(HasRule(LintPlan(*ExprNode::MatMul(y, xs)), "lint.densify_bound"));
  EXPECT_FALSE(HasRule(LintPlan(*ExprNode::MatMul(y, xd)), "lint.densify_bound"));

  // Standalone transpose of a compressed operand densifies; the same
  // transpose consumed as a matmul's left factor is fused and native.
  auto compressed =
      std::make_shared<CompressedMatrix>(CompressedMatrix::Compress(holey));
  auto xc = *ExprNode::InputOperand(Operand(compressed), "Xc");
  auto d34 = *ExprNode::Input(Gaussian(3, 4, 29), "D");
  EXPECT_TRUE(HasRule(LintPlan(*ExprNode::Add(*ExprNode::Transpose(xc), d34)),
                      "lint.densify_bound"));
  auto v = *ExprNode::Input(Gaussian(4, 1, 30), "v");
  EXPECT_FALSE(
      HasRule(LintPlan(*ExprNode::MatMul(*ExprNode::Transpose(xc), v)),
              "lint.densify_bound"));
}

TEST(LintPlanTest, UnusedBinding) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 31), "X");
  auto plan = *ExprNode::Transpose(x);
  EXPECT_TRUE(HasRule(LintPlan(plan, {"X", "unused"}), "lint.unused_binding"));
  EXPECT_FALSE(HasRule(LintPlan(plan, {"X"}), "lint.unused_binding"));
}

TEST(LintPlanTest, CleanTrainerPlansAreLintQuiet) {
  // Representative trainer plans over dense and natively-supported sparse
  // operands must produce zero findings: lint noise on healthy programs
  // would train users to ignore it.
  auto dense = Gaussian(60, 5, 32);
  DenseMatrix holey = *dense;
  for (size_t i = 0; i < holey.size(); i += 3) holey.data()[i] = 0.0;
  auto sparse = std::make_shared<SparseMatrix>(ToCsr(holey));
  auto xd = *ExprNode::Input(dense, "X");
  auto xs = *ExprNode::InputOperand(Operand(sparse), "S");
  auto w = *ExprNode::Input(Gaussian(5, 1, 33), "w");
  auto v = *ExprNode::Input(Gaussian(60, 1, 34), "v");

  // GLM gradient core: t(X) %*% (X %*% w).
  auto glm = *ExprNode::MatMul(*ExprNode::Transpose(xd), *ExprNode::MatMul(xd, w));
  EXPECT_TRUE(LintPlan(glm).empty()) << RenderDiagnostics(LintPlan(glm));
  // Sparse gevm: t(S) %*% v — fused, never densifies.
  auto gevm = *ExprNode::MatMul(*ExprNode::Transpose(xs), v);
  EXPECT_TRUE(LintPlan(gevm).empty()) << RenderDiagnostics(LintPlan(gevm));
  // Normal equations Gram over dense.
  auto gram = *ExprNode::MatMul(*ExprNode::Transpose(xd), xd);
  EXPECT_TRUE(LintPlan(gram).empty()) << RenderDiagnostics(LintPlan(gram));
}

TEST(LintPlanTest, LintFindingsCounterAdvances) {
  auto x = *ExprNode::Input(Gaussian(4, 3, 35), "X");
  const uint64_t before = CounterValue("laopt.verify.lint_findings");
  (void)LintPlan(*ExprNode::ScalarMul(0.0, x));
  EXPECT_GT(CounterValue("laopt.verify.lint_findings"), before);
}

TEST(LintPlanTest, ParserSurfacesUnusedBindingsUnderLintEnv) {
  ScopedEnv lint_on("DMML_LINT", "1");
  EXPECT_TRUE(LintEnabled());
  Environment env = {{"X", Gaussian(8, 3, 36)}, {"unused", Gaussian(2, 2, 37)}};
  // Must parse fine; the finding is advisory (logged, never fatal).
  EXPECT_TRUE(ParseExpression("t(X) %*% X", env).ok());
  ScopedEnv lint_off("DMML_LINT", "0");
  EXPECT_FALSE(LintEnabled());
}

// ---------------------------------------------------------------------------
// Static schedule: wavefront levels, liveness, interference, concurrency.
// ---------------------------------------------------------------------------

TEST(ComputeScheduleTest, LevelsAndLiveness) {
  auto x = *ExprNode::Input(Gaussian(40, 6, 40), "X");
  auto w = *ExprNode::Input(Gaussian(6, 1, 41), "w");
  auto xw = *ExprNode::MatMul(x, w);
  auto tx = *ExprNode::Transpose(x);
  auto root = *ExprNode::MatMul(tx, xw);

  auto schedule = ComputeSchedule(root);
  ASSERT_TRUE(schedule.ok()) << schedule.status().message();
  EXPECT_EQ(schedule->num_levels(), 3u);  // leaves, {Xw, t(X)}, root.

  const ScheduleEntry* leaf = schedule->Find(x.get());
  const ScheduleEntry* product = schedule->Find(xw.get());
  const ScheduleEntry* top = schedule->Find(root.get());
  ASSERT_NE(leaf, nullptr);
  ASSERT_NE(product, nullptr);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(leaf->level, 0u);
  EXPECT_EQ(product->level, 1u);
  EXPECT_EQ(top->level, 2u);
  EXPECT_EQ(top->last_use, std::numeric_limits<size_t>::max())
      << "the root's buffer survives until the next Run";
  EXPECT_GE(product->last_use, top->def - 1)
      << "X*w is read when the root completes";

  // Independent siblings may run concurrently; root and child may not.
  EXPECT_TRUE(schedule->MayRunConcurrently(xw.get(), tx.get()));
  EXPECT_FALSE(schedule->MayRunConcurrently(root.get(), xw.get()));
  EXPECT_TRUE(schedule->Interferes(xw.get(), tx.get()))
      << "both values are live when the root consumes them";
}

TEST(ComputeScheduleTest, ChainHasBoundedMaxLive) {
  // a3 = ((X+X)+X)+X: at any moment at most two non-leaf values are live.
  auto x = *ExprNode::Input(Gaussian(8, 4, 42), "X");
  auto a1 = *ExprNode::Add(x, x);
  auto a2 = *ExprNode::Add(a1, x);
  auto a3 = *ExprNode::Add(a2, x);
  auto schedule = ComputeSchedule(a3);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->max_live(), 2u);
  EXPECT_FALSE(schedule->Interferes(a1.get(), a3.get()))
      << "a1 dies when a2 completes; a3 can reuse its buffer";
  const uint64_t schedules = CounterValue("laopt.analysis.schedules");
  (void)ComputeSchedule(a3);
  EXPECT_GT(CounterValue("laopt.analysis.schedules"), schedules);
}

TEST(ComputeScheduleTest, OperandReadsSeesThroughFusedTranspose) {
  auto x = *ExprNode::Input(Gaussian(12, 3, 43), "X");
  auto v = *ExprNode::Input(Gaussian(12, 1, 44), "v");
  auto tx = *ExprNode::Transpose(x);
  auto root = *ExprNode::MatMul(tx, v);
  std::vector<const ExprNode*> reads = OperandReads(root.get());
  bool sees_grandchild = false;
  for (const ExprNode* n : reads) sees_grandchild |= n == x.get();
  EXPECT_TRUE(sees_grandchild)
      << "t(X)*v reads X directly through the fused kernel";
}

// ---------------------------------------------------------------------------
// Liveness-driven buffer sharing in the executor.
// ---------------------------------------------------------------------------

// Wide DAG: a balanced add-tree over eight independent X*w_i products. Many
// short-lived intermediates = plenty of slot-sharing opportunity.
ExprPtr WideDag(const std::shared_ptr<DenseMatrix>& x,
                std::vector<std::shared_ptr<DenseMatrix>>* keep_alive) {
  std::vector<ExprPtr> layer;
  auto xleaf = *ExprNode::Input(x, "X");
  for (int i = 0; i < 8; ++i) {
    auto w = Gaussian(x->cols(), 1, 100 + i);
    keep_alive->push_back(w);
    layer.push_back(*ExprNode::MatMul(xleaf, *ExprNode::Input(w, "w")));
  }
  while (layer.size() > 1) {
    std::vector<ExprPtr> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(*ExprNode::Add(layer[i], layer[i + 1]));
    }
    layer = std::move(next);
  }
  return layer[0];
}

TEST(BufferSharingTest, FewerBuffersBitIdenticalResults) {
  auto x = Gaussian(64, 6, 50);
  std::vector<std::shared_ptr<DenseMatrix>> keep_alive;
  ExprPtr plan = WideDag(x, &keep_alive);

  BufferedExecutor dedicated;
  dedicated.set_buffer_sharing(false);
  auto baseline = dedicated.Run(plan);
  ASSERT_TRUE(baseline.ok()) << baseline.status().message();
  DenseMatrix expected = **baseline;  // Copy out of the executor's buffers.

  const uint64_t shared_before = CounterValue("laopt.executor.buffers_shared");
  BufferedExecutor sharing;  // Sharing is the default.
  ASSERT_TRUE(sharing.buffer_sharing());
  auto shared = sharing.Run(plan);
  ASSERT_TRUE(shared.ok()) << shared.status().message();

  // Bit-identical: sharing must not change evaluation order or kernels.
  ASSERT_EQ((*shared)->rows(), expected.rows());
  ASSERT_EQ((*shared)->cols(), expected.cols());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*shared)->data()[i], expected.data()[i]) << "element " << i;
  }

  // 15 non-leaf nodes; liveness packs them into far fewer buffers.
  EXPECT_EQ(dedicated.num_buffers(), 15u);
  EXPECT_LT(sharing.num_buffers(), dedicated.num_buffers());
  EXPECT_GT(CounterValue("laopt.executor.buffers_shared"), shared_before);

  auto schedule = ComputeSchedule(plan);
  ASSERT_TRUE(schedule.ok());
  // max_live excludes the root-held buffer's special lifetime by at most one.
  EXPECT_LE(sharing.num_buffers(), schedule->max_live() + 1);

  // Stability: repeated runs on the shared executor keep producing the
  // identical result (no stale aliased buffers).
  for (int run = 0; run < 3; ++run) {
    auto again = sharing.Run(plan);
    ASSERT_TRUE(again.ok());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ((*again)->data()[i], expected.data()[i]);
    }
  }
}

TEST(BufferSharingTest, SharedNodesAcrossRootsDoNotCollide) {
  // Two roots that share a subexpression: the memoized value of the shared
  // node must never be clobbered by the second root's buffer assignment.
  auto x = Gaussian(32, 4, 60);
  auto xleaf = *ExprNode::Input(x, "X");
  auto gram = *ExprNode::MatMul(*ExprNode::Transpose(xleaf), xleaf);
  auto w = *ExprNode::Input(Gaussian(4, 1, 61), "w");
  auto root_a = *ExprNode::MatMul(gram, w);
  auto root_b = *ExprNode::Add(gram, gram);

  BufferedExecutor executor;
  auto a = executor.Run(root_a);
  ASSERT_TRUE(a.ok());
  DenseMatrix a_copy = **a;
  auto b = executor.Run(root_b);
  ASSERT_TRUE(b.ok());

  BufferedExecutor fresh;
  fresh.set_buffer_sharing(false);
  auto a_ref = fresh.Run(root_a);
  ASSERT_TRUE(a_ref.ok());
  for (size_t i = 0; i < a_copy.size(); ++i) {
    ASSERT_EQ(a_copy.data()[i], (*a_ref)->data()[i]);
  }
  auto b_ref = fresh.Run(root_b);
  ASSERT_TRUE(b_ref.ok());
  for (size_t i = 0; i < (*b_ref)->size(); ++i) {
    ASSERT_EQ((*b)->data()[i], (*b_ref)->data()[i]);
  }
}

TEST(BufferSharingTest, TrainerParityUnderSharing) {
  // End-to-end: the GLM normal-equations path (which runs through laopt
  // plans internally) agrees with itself regardless of executor reuse, and
  // lints quiet — the "verifier is zero-diagnostic on healthy programs"
  // acceptance gate in miniature.
  auto x = Gaussian(80, 5, 70);
  auto y = Gaussian(80, 1, 71);
  ml::GlmConfig config;
  config.solver = ml::GlmSolver::kNormalEquations;
  config.l2 = 0.1;
  auto m1 = ml::TrainGlm(*x, *y, config);
  auto m2 = ml::TrainGlm(*x, *y, config);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  for (size_t i = 0; i < m1->weights.size(); ++i) {
    EXPECT_EQ(m1->weights.data()[i], m2->weights.data()[i]);
  }
}

}  // namespace
}  // namespace dmml::laopt
