// Shared-scan model selection: one pass trains every config in the rung.
//
//  * A k-wide shared-scan epoch must be bit-equal per column to k separate
//    1-wide epochs over the same window on the dense path (the ranged
//    kernels' FP bracketing is width-independent by construction), and
//    within 1e-9 under the CSR and CLA-compressed bindings.
//  * Contiguous-fold training (two zero-copy row windows per fold) must
//    match training on a gathered copy of the same rows.
//  * Per-config lr / l2 / lr-decay heterogeneity enters as column scaling
//    and must neither leak across columns nor drift from the 1-wide path.
//  * Steady-state rung epochs are allocation-free; scans and reductions run
//    on the caller's pool.
//
// This suite is the sanitizer target for the shared-scan engine: it must
// stay green under -DDMML_SANITIZE=thread and address,undefined, with and
// without DMML_INTER_NODE=1.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "laopt/operand.h"
#include "ml/glm.h"
#include "ml/metrics.h"
#include "ml/unified_trainers.h"
#include "modelsel/model_selection.h"
#include "modelsel/shared_scan.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dmml::modelsel {
namespace {

using cla::CompressedMatrix;
using la::DenseMatrix;
using la::SparseMatrix;
using laopt::Operand;
using ml::GlmConfig;
using ml::GlmFamily;
using ml::GlmModel;

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double worst = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

// Low-cardinality design with ~60% zeros: representable in all three
// physical forms and worth compressing.
DenseMatrix MixedReprDesign(size_t n, size_t d, uint64_t seed) {
  DenseMatrix x = data::LowCardinalityMatrix(n, d, 4, /*run_sorted=*/false, seed);
  Rng rng(seed + 99);
  for (size_t i = 0; i < x.size(); ++i) {
    if (rng.Uniform(0.0, 1.0) < 0.6) x.data()[i] = 0.0;
  }
  return x;
}

SparseMatrix ToCsr(const DenseMatrix& x) {
  std::vector<la::Triplet> triplets;
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      if (x.At(r, c) != 0.0) triplets.push_back({r, c, x.At(r, c)});
    }
  }
  return SparseMatrix::FromTriplets(x.rows(), x.cols(), triplets);
}

// A heterogeneous rung: every config differs in learning rate, L2 and decay.
std::vector<GlmConfig> HeterogeneousRung(GlmFamily family, size_t epochs) {
  const double lrs[] = {0.1, 0.05, 0.2, 0.15};
  const double l2s[] = {0.0, 0.01, 0.1, 0.001};
  const double decays[] = {0.0, 0.1, 0.05, 0.2};
  std::vector<GlmConfig> configs(4);
  for (size_t c = 0; c < 4; ++c) {
    configs[c].family = family;
    configs[c].learning_rate = lrs[c];
    configs[c].l2 = l2s[c];
    configs[c].lr_decay = decays[c];
    configs[c].max_epochs = epochs;
    configs[c].fit_intercept = true;
    configs[c].tolerance = 0;
  }
  return configs;
}

TEST(SharedScanTest, KWideEpochBitEqualToOneWideEpochsOnDense) {
  DenseMatrix x = data::GaussianMatrix(96, 5, 11);
  DenseMatrix y = data::GaussianMatrix(96, 1, 12);
  const std::vector<GlmConfig> configs = HeterogeneousRung(GlmFamily::kGaussian, 6);

  auto shared = BatchedTrainGlm(x, y, configs);
  ASSERT_TRUE(shared.ok()) << shared.status().message();
  for (size_t c = 0; c < configs.size(); ++c) {
    auto seq = BatchedTrainGlm(x, y, {configs[c]});
    ASSERT_TRUE(seq.ok()) << seq.status().message();
    const GlmModel& wide = (*shared)[c];
    const GlmModel& narrow = (*seq)[0];
    ASSERT_EQ(wide.weights.rows(), narrow.weights.rows());
    for (size_t j = 0; j < wide.weights.rows(); ++j) {
      EXPECT_EQ(wide.weights.At(j, 0), narrow.weights.At(j, 0))
          << "config " << c << " weight " << j << " must be bit-equal";
    }
    EXPECT_EQ(wide.intercept, narrow.intercept) << "config " << c;
    ASSERT_EQ(wide.loss_history.size(), narrow.loss_history.size());
    for (size_t e = 0; e < wide.loss_history.size(); ++e) {
      EXPECT_EQ(wide.loss_history[e], narrow.loss_history[e])
          << "config " << c << " epoch " << e;
    }
  }
}

TEST(SharedScanTest, ParityAcrossSparseAndCompressedBindings) {
  auto dense = std::make_shared<DenseMatrix>(MixedReprDesign(120, 6, 5));
  auto sparse = std::make_shared<SparseMatrix>(ToCsr(*dense));
  auto compressed =
      std::make_shared<CompressedMatrix>(CompressedMatrix::Compress(*dense));
  DenseMatrix y = data::GaussianMatrix(120, 1, 6);
  // The low-cardinality design has larger feature magnitudes than the
  // Gaussian designs; shrink the step sizes so every config converges (an
  // absolute 1e-9 parity bound is only meaningful on O(1) weights).
  std::vector<GlmConfig> configs = HeterogeneousRung(GlmFamily::kGaussian, 5);
  for (GlmConfig& c : configs) c.learning_rate *= 0.05;

  auto dense_models = BatchedTrainGlm(*dense, y, configs);
  ASSERT_TRUE(dense_models.ok());
  const Operand bindings[] = {Operand(sparse), Operand(compressed)};
  for (const Operand& op : bindings) {
    auto shared = BatchedTrainGlm(op, y, configs);
    ASSERT_TRUE(shared.ok()) << shared.status().message();
    for (size_t c = 0; c < configs.size(); ++c) {
      // Shared k-wide vs sequential 1-wide under the same binding.
      auto seq = BatchedTrainGlm(op, y, {configs[c]});
      ASSERT_TRUE(seq.ok());
      EXPECT_LE(MaxAbsDiff((*shared)[c].weights, (*seq)[0].weights), 1e-9);
      EXPECT_NEAR((*shared)[c].intercept, (*seq)[0].intercept, 1e-9);
      // Native kernels vs the dense reference.
      EXPECT_LE(MaxAbsDiff((*shared)[c].weights, (*dense_models)[c].weights),
                1e-9);
      EXPECT_NEAR((*shared)[c].intercept, (*dense_models)[c].intercept, 1e-9);
    }
  }
}

TEST(SharedScanTest, FoldWindowsMatchGatheredCopyTraining) {
  DenseMatrix x = data::GaussianMatrix(90, 4, 21);
  DenseMatrix y = data::GaussianMatrix(90, 1, 22);
  const std::vector<GlmConfig> configs = HeterogeneousRung(GlmFamily::kGaussian, 6);

  auto kf = KFold::Make(x.rows(), 3, 7);
  ASSERT_TRUE(kf.ok());
  const ContiguousFolds cf = MakeContiguousFolds(*kf);
  const DenseMatrix xp = GatherRows(x, cf.order);
  const DenseMatrix yp = GatherRows(y, cf.order);
  auto shared = SharedScanTrain(ml::BorrowOperand(xp), yp, cf.folds, configs);
  ASSERT_TRUE(shared.ok()) << shared.status().message();
  ASSERT_EQ(shared->folds.size(), 3u);

  for (size_t f = 0; f < 3; ++f) {
    // The reference trains on a *gathered copy* of the same training rows in
    // the same order; the shared scan reads them through two zero-copy
    // windows around the validation range.
    DenseMatrix xt = GatherRows(x, kf->TrainingIndices(f));
    DenseMatrix yt = GatherRows(y, kf->TrainingIndices(f));
    auto gathered = BatchedTrainGlm(xt, yt, configs);
    ASSERT_TRUE(gathered.ok());
    for (size_t c = 0; c < configs.size(); ++c) {
      const DenseMatrix col = shared->folds[f].weights.Column(c);
      EXPECT_LE(MaxAbsDiff(col, (*gathered)[c].weights), 1e-9)
          << "fold " << f << " config " << c;
      EXPECT_NEAR(shared->folds[f].intercepts[c], (*gathered)[c].intercept,
                  1e-9);
    }
  }
}

TEST(SharedScanTest, HeterogeneityStaysColumnLocal) {
  DenseMatrix x = data::GaussianMatrix(64, 3, 31);
  DenseMatrix y = data::GaussianMatrix(64, 1, 32);
  GlmConfig a;
  a.family = GlmFamily::kGaussian;
  a.learning_rate = 0.1;
  a.l2 = 0.01;
  a.lr_decay = 0.05;
  a.max_epochs = 5;
  GlmConfig b = a;
  b.learning_rate = 0.03;
  b.l2 = 0.2;
  b.lr_decay = 0.0;

  // Duplicated configs must produce bit-identical columns; a different
  // config in the middle must not perturb them.
  auto models = BatchedTrainGlm(x, y, {a, b, a});
  ASSERT_TRUE(models.ok());
  EXPECT_EQ(MaxAbsDiff((*models)[0].weights, (*models)[2].weights), 0.0);
  EXPECT_EQ((*models)[0].intercept, (*models)[2].intercept);
  EXPECT_GT(MaxAbsDiff((*models)[0].weights, (*models)[1].weights), 0.0);
}

TEST(SharedScanTest, ScoreWindowMatchesPerModelScoring) {
  data::ClassificationDataset ds = data::MakeClassification(100, 4, 0.1, 41);
  const std::vector<GlmConfig> configs = HeterogeneousRung(GlmFamily::kBinomial, 6);
  auto models = BatchedTrainGlm(ds.x, ds.y, configs);
  ASSERT_TRUE(models.ok());

  DenseMatrix weights(ds.x.cols(), configs.size());
  std::vector<double> intercepts(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    for (size_t j = 0; j < ds.x.cols(); ++j) {
      weights.At(j, c) = (*models)[c].weights.At(j, 0);
    }
    intercepts[c] = (*models)[c].intercept;
  }

  const size_t vb = 10, ve = 40;
  std::vector<size_t> val_rows;
  for (size_t i = vb; i < ve; ++i) val_rows.push_back(i);
  DenseMatrix xv = GatherRows(ds.x, val_rows);
  DenseMatrix yv = GatherRows(ds.y, val_rows);

  const Operand op = ml::BorrowOperand(ds.x);
  auto acc = ScoreConfigsOnWindow(op, ds.y, vb, ve, weights, intercepts,
                                  GlmFamily::kBinomial, FoldMetric::kAccuracy);
  auto nll = ScoreConfigsOnWindow(op, ds.y, vb, ve, weights, intercepts,
                                  GlmFamily::kBinomial, FoldMetric::kNegLogLoss);
  ASSERT_TRUE(acc.ok());
  ASSERT_TRUE(nll.ok());
  for (size_t c = 0; c < configs.size(); ++c) {
    auto labels = (*models)[c].PredictLabels(xv);
    ASSERT_TRUE(labels.ok());
    auto ref_acc = ml::Accuracy(yv, *labels);
    ASSERT_TRUE(ref_acc.ok());
    EXPECT_NEAR((*acc)[c], *ref_acc, 1e-12) << "config " << c;

    auto probs = (*models)[c].Predict(xv);
    ASSERT_TRUE(probs.ok());
    auto ref_loss = ml::LogLoss(yv, *probs);
    ASSERT_TRUE(ref_loss.ok());
    EXPECT_NEAR((*nll)[c], -*ref_loss, 1e-9) << "config " << c;
  }
}

TEST(SharedScanTest, RungCountersAndWidthHistogram) {
  DenseMatrix x = data::GaussianMatrix(60, 3, 51);
  DenseMatrix y = data::GaussianMatrix(60, 1, 52);
  const std::vector<GlmConfig> configs = HeterogeneousRung(GlmFamily::kGaussian, 3);
  const std::vector<FoldRange> folds = {{0, 20}, {20, 40}};

  const uint64_t rungs = CounterValue("modelsel.shared.rungs");
  const uint64_t per_scan = CounterValue("modelsel.shared.configs_per_scan");
  const uint64_t saved = CounterValue("modelsel.shared.epochs_saved");
  obs::Histogram* width = obs::MetricsRegistry::Global().GetHistogram(
      "modelsel.rung_width", obs::ExponentialBuckets(1, 2, 9));
  const uint64_t width_count = width->TotalCount();

  auto trained = SharedScanTrain(ml::BorrowOperand(x), y, folds, configs);
  ASSERT_TRUE(trained.ok());
  EXPECT_EQ(trained->epochs_run, 3u);

  EXPECT_EQ(CounterValue("modelsel.shared.rungs"), rungs + 1);
  EXPECT_EQ(CounterValue("modelsel.shared.configs_per_scan"), per_scan + 4);
  // A sequential explorer would spend k*epochs*folds training passes; the
  // shared rung spends epochs*folds. The counter records the difference.
  EXPECT_EQ(CounterValue("modelsel.shared.epochs_saved"),
            saved + (4 - 1) * 3 * 2);
  EXPECT_EQ(width->TotalCount(), width_count + 1);
}

TEST(SharedScanTest, ScansRunOnCallerPool) {
  // Large enough that the ranged Xᵀ·R reduction crosses the parallel-chunk
  // threshold on a multi-worker pool.
  DenseMatrix x = data::GaussianMatrix(4096, 16, 61);
  DenseMatrix y = data::GaussianMatrix(4096, 1, 62);
  const std::vector<GlmConfig> configs = HeterogeneousRung(GlmFamily::kGaussian, 2);

  ThreadPool pool(4);
  const uint64_t before = CounterValue("la.parallel.reductions");
  auto models = BatchedTrainGlm(x, y, configs, &pool);
  ASSERT_TRUE(models.ok());
  EXPECT_GT(CounterValue("la.parallel.reductions"), before)
      << "shared-scan epochs must run their reductions on the caller's pool";
}

TEST(SharedScanTest, SteadyStateEpochsAreAllocationFree) {
  DenseMatrix x = data::GaussianMatrix(512, 8, 71);
  DenseMatrix y = data::GaussianMatrix(512, 1, 72);
  const std::vector<FoldRange> folds = {{0, 128}, {128, 256}};

  auto allocs_for = [&](size_t epochs) {
    std::vector<GlmConfig> configs = HeterogeneousRung(GlmFamily::kGaussian, epochs);
    const uint64_t before = CounterValue("la.inplace.allocs");
    auto trained = SharedScanTrain(ml::BorrowOperand(x), y, folds, configs);
    EXPECT_TRUE(trained.ok());
    return CounterValue("la.inplace.allocs") - before;
  };
  auto reuses_for = [&](size_t epochs) {
    std::vector<GlmConfig> configs = HeterogeneousRung(GlmFamily::kGaussian, epochs);
    const uint64_t before = CounterValue("la.inplace.reuses");
    auto trained = SharedScanTrain(ml::BorrowOperand(x), y, folds, configs);
    EXPECT_TRUE(trained.ok());
    return CounterValue("la.inplace.reuses") - before;
  };

  // Buffers are set up during the first epoch; extra epochs must add zero
  // allocations (they only re-fill executor slots, which counts as reuses).
  EXPECT_EQ(allocs_for(3), allocs_for(10));
  EXPECT_GT(reuses_for(10), reuses_for(3));
}

}  // namespace
}  // namespace dmml::modelsel
