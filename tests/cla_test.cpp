// Tests for compressed linear algebra: encodings round-trip losslessly,
// compressed ops match uncompressed ops, the planner picks sensible formats,
// and compression ratios behave as cardinality changes.
#include <gtest/gtest.h>

#include "cla/compressed_matrix.h"
#include "cla/ddc_group.h"
#include "cla/ole_group.h"
#include "cla/rle_group.h"
#include "cla/uncompressed_group.h"
#include "data/generators.h"
#include "la/kernels.h"

namespace dmml::cla {
namespace {

using la::DenseMatrix;

DenseMatrix LowCardData() {
  return data::LowCardinalityMatrix(500, 4, 8, /*run_sorted=*/false, 42);
}

// Shared check: a group reproduces its source columns exactly and its MV/VM
// results match the dense kernels.
void CheckGroupEquivalence(const ColumnGroup& group, const DenseMatrix& source) {
  const size_t n = source.rows();
  DenseMatrix decompressed(n, source.cols());
  group.Decompress(&decompressed);
  for (uint32_t c : group.columns()) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(decompressed.At(i, c), source.At(i, c))
          << "col " << c << " row " << i;
    }
  }

  auto v = data::GaussianMatrix(source.cols(), 1, 7);
  DenseMatrix y_comp(n, 1);
  group.MultiplyVector(v.data(), y_comp.data(), n);
  // Reference: only this group's columns contribute.
  DenseMatrix y_ref(n, 1);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0;
    for (uint32_t c : group.columns()) acc += source.At(i, c) * v.At(c, 0);
    y_ref.At(i, 0) = acc;
  }
  EXPECT_TRUE(y_comp.ApproxEquals(y_ref, 1e-9));

  auto u = data::GaussianMatrix(n, 1, 8);
  DenseMatrix out_comp(1, source.cols());
  group.VectorMultiply(u.data(), n, out_comp.data());
  DenseMatrix out_ref(1, source.cols());
  for (uint32_t c : group.columns()) {
    double acc = 0;
    for (size_t i = 0; i < n; ++i) acc += u.At(i, 0) * source.At(i, c);
    out_ref.At(0, c) = acc;
  }
  EXPECT_TRUE(out_comp.ApproxEquals(out_ref, 1e-9));

  double sum_ref = 0;
  for (uint32_t c : group.columns()) {
    for (size_t i = 0; i < n; ++i) sum_ref += source.At(i, c);
  }
  EXPECT_NEAR(group.Sum(), sum_ref, 1e-7);
}

TEST(CodeArrayTest, WidthSelection) {
  EXPECT_EQ(CodeArray(10, 200).width(), 1);
  EXPECT_EQ(CodeArray(10, 257).width(), 2);
  EXPECT_EQ(CodeArray(10, 70000).width(), 4);
}

TEST(CodeArrayTest, SetGetRoundTrip) {
  CodeArray codes(100, 300);  // 2-byte codes.
  for (size_t i = 0; i < 100; ++i) codes.Set(i, static_cast<uint32_t>(i * 3));
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(codes.Get(i), i * 3);
  EXPECT_EQ(codes.SizeInBytes(), 200u);
}

TEST(DictionaryTest, BuildsFirstAppearanceOrder) {
  DenseMatrix m{{1, 9}, {2, 9}, {1, 9}, {3, 9}};
  GroupDictionary dict;
  std::vector<uint32_t> codes;
  BuildDictionary(m, {0}, &dict, &codes);
  EXPECT_EQ(dict.num_entries(), 3u);
  EXPECT_EQ(codes, (std::vector<uint32_t>{0, 1, 0, 2}));
  EXPECT_DOUBLE_EQ(dict.Entry(2)[0], 3.0);
}

TEST(DictionaryTest, MultiColumnTuples) {
  DenseMatrix m{{1, 5}, {1, 6}, {1, 5}};
  GroupDictionary dict;
  std::vector<uint32_t> codes;
  BuildDictionary(m, {0, 1}, &dict, &codes);
  EXPECT_EQ(dict.num_entries(), 2u);
  EXPECT_EQ(codes, (std::vector<uint32_t>{0, 1, 0}));
}

TEST(UncompressedGroupTest, Equivalence) {
  auto m = data::GaussianMatrix(100, 3, 1);
  UncompressedGroup group(m, {0, 2});
  CheckGroupEquivalence(group, m);
  EXPECT_EQ(group.format(), GroupFormat::kUncompressed);
  EXPECT_GE(group.SizeInBytes(), 100u * 2 * sizeof(double));
}

TEST(DdcGroupTest, Equivalence) {
  auto m = LowCardData();
  DdcGroup group(m, {1});
  CheckGroupEquivalence(group, m);
  EXPECT_EQ(group.DictionarySize(), 8u);
  // 500 1-byte codes + 8 dict doubles + metadata: far below 4000 dense bytes.
  EXPECT_LT(group.SizeInBytes(), 700u);
}

TEST(DdcGroupTest, CoCodedPairEquivalence) {
  auto m = LowCardData();
  DdcGroup group(m, {0, 3});
  CheckGroupEquivalence(group, m);
  EXPECT_LE(group.DictionarySize(), 64u);
}

TEST(RleGroupTest, EquivalenceOnSortedData) {
  auto m = data::LowCardinalityMatrix(400, 2, 5, /*run_sorted=*/true, 3);
  RleGroup group(m, {0});
  CheckGroupEquivalence(group, m);
  // Sorted 5-value column => at most 5 runs.
  EXPECT_LE(group.NumRuns(), 5u);
  EXPECT_LT(group.SizeInBytes(), 200u);
}

TEST(RleGroupTest, EquivalenceOnUnsortedData) {
  auto m = LowCardData();
  RleGroup group(m, {2});
  CheckGroupEquivalence(group, m);
}

TEST(RleGroupTest, ZeroRunsSuppressed) {
  DenseMatrix m(10, 1);
  m.At(3, 0) = 1.0;
  m.At(4, 0) = 1.0;
  RleGroup group(m, {0});
  EXPECT_EQ(group.NumRuns(), 1u);  // Only the nonzero run stored.
  CheckGroupEquivalence(group, m);
}

TEST(OleGroupTest, EquivalenceOnSparseData) {
  DenseMatrix m(300, 2);
  // ~10% nonzero in column 0, constant column 1.
  Rng rng(5);
  for (size_t i = 0; i < 300; ++i) {
    if (rng.Bernoulli(0.1)) m.At(i, 0) = 7.5;
    m.At(i, 1) = 2.0;
  }
  OleGroup group(m, {0});
  CheckGroupEquivalence(group, m);
  // Storage proportional to nnz, not n.
  EXPECT_LT(group.SizeInBytes(), 300u);
}

TEST(OleGroupTest, AllZeroColumnIsTiny) {
  DenseMatrix m(1000, 1);
  OleGroup group(m, {0});
  EXPECT_EQ(group.DictionarySize(), 0u);
  EXPECT_LT(group.SizeInBytes(), 16u);
  CheckGroupEquivalence(group, m);
}

// --------------------------------------------------------------------------
// CompressedMatrix end-to-end
// --------------------------------------------------------------------------

TEST(CompressedMatrixTest, LosslessRoundTrip) {
  auto m = LowCardData();
  auto cm = CompressedMatrix::Compress(m);
  EXPECT_TRUE(cm.Decompress() == m);
}

TEST(CompressedMatrixTest, MultiplyVectorMatchesDense) {
  auto m = LowCardData();
  auto cm = CompressedMatrix::Compress(m);
  auto v = data::GaussianMatrix(m.cols(), 1, 9);
  auto y = cm.MultiplyVector(v);
  ASSERT_TRUE(y.ok());
  EXPECT_TRUE(y->ApproxEquals(la::Gemv(m, v), 1e-9));
}

TEST(CompressedMatrixTest, VectorMultiplyMatchesDense) {
  auto m = LowCardData();
  auto cm = CompressedMatrix::Compress(m);
  auto u = data::GaussianMatrix(m.rows(), 1, 10);
  auto y = cm.VectorMultiply(u);
  ASSERT_TRUE(y.ok());
  EXPECT_TRUE(y->ApproxEquals(la::Gevm(u, m), 1e-9));
}

TEST(CompressedMatrixTest, SumMatchesDense) {
  auto m = LowCardData();
  auto cm = CompressedMatrix::Compress(m);
  EXPECT_NEAR(cm.Sum(), la::Sum(m), 1e-7);
}

TEST(CompressedMatrixTest, ShapeValidation) {
  auto cm = CompressedMatrix::Compress(LowCardData());
  EXPECT_FALSE(cm.MultiplyVector(DenseMatrix(3, 1)).ok());
  EXPECT_FALSE(cm.VectorMultiply(DenseMatrix(3, 1)).ok());
}

TEST(CompressedMatrixTest, LowCardinalityCompressesWell) {
  auto m = data::LowCardinalityMatrix(5000, 6, 10, false, 21);
  auto cm = CompressedMatrix::Compress(m);
  EXPECT_GT(cm.CompressionRatio(), 4.0);
}

TEST(CompressedMatrixTest, GaussianDataStaysUncompressed) {
  auto m = data::GaussianMatrix(2000, 4, 22);
  auto cm = CompressedMatrix::Compress(m);
  for (const auto& g : cm.groups()) {
    EXPECT_EQ(g->format(), GroupFormat::kUncompressed);
  }
  EXPECT_LE(cm.CompressionRatio(), 1.01);
  // Ops still correct on the uncompressed fallback.
  auto v = data::GaussianMatrix(4, 1, 23);
  EXPECT_TRUE(cm.MultiplyVector(v)->ApproxEquals(la::Gemv(m, v), 1e-9));
}

TEST(CompressedMatrixTest, SortedDataPrefersRle) {
  auto m = data::LowCardinalityMatrix(5000, 2, 4, /*run_sorted=*/true, 24);
  auto cm = CompressedMatrix::Compress(m);
  for (const auto& g : cm.groups()) EXPECT_EQ(g->format(), GroupFormat::kRle);
  EXPECT_GT(cm.CompressionRatio(), 100.0);
}

TEST(CompressedMatrixTest, SparseDataPrefersOleOrRle) {
  DenseMatrix m(4000, 2);
  Rng rng(25);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < 2; ++j) {
      if (rng.Bernoulli(0.05)) m.At(i, j) = rng.Normal();
    }
  }
  auto cm = CompressedMatrix::Compress(m);
  for (const auto& g : cm.groups()) {
    EXPECT_TRUE(g->format() == GroupFormat::kOle || g->format() == GroupFormat::kRle);
  }
  EXPECT_GT(cm.CompressionRatio(), 5.0);
  EXPECT_TRUE(cm.Decompress() == m);
}

TEST(CompressedMatrixTest, CompressionRatioDegradesWithCardinality) {
  double prev_ratio = 1e9;
  for (size_t card : {4u, 64u, 1024u}) {
    auto m = data::LowCardinalityMatrix(4000, 3, card, false, 30 + card);
    auto cm = CompressedMatrix::Compress(m);
    EXPECT_LT(cm.CompressionRatio(), prev_ratio);
    prev_ratio = cm.CompressionRatio();
  }
}

TEST(CompressedMatrixTest, CoCodingMergesCorrelatedColumns) {
  // Column 1 is a deterministic function of column 0 => joint cardinality
  // equals individual cardinality, ideal for co-coding.
  auto base = data::LowCardinalityMatrix(3000, 1, 6, false, 31);
  DenseMatrix m(3000, 2);
  for (size_t i = 0; i < m.rows(); ++i) {
    m.At(i, 0) = base.At(i, 0);
    m.At(i, 1) = base.At(i, 0) * 2.0 + 1.0;
  }
  CompressionOptions options;
  options.enable_cocoding = true;
  auto cm = CompressedMatrix::Compress(m, options);
  ASSERT_EQ(cm.groups().size(), 1u);
  EXPECT_EQ(cm.groups()[0]->columns().size(), 2u);
  EXPECT_TRUE(cm.Decompress() == m);
  // Co-coded must beat two separate DDC groups.
  auto separate = CompressedMatrix::Compress(m);
  EXPECT_LT(cm.SizeInBytes(), separate.SizeInBytes());
}

TEST(CompressedMatrixTest, FormatSummaryMentionsEveryGroup) {
  auto m = LowCardData();
  auto cm = CompressedMatrix::Compress(m);
  std::string s = cm.FormatSummary();
  for (size_t c = 0; c < m.cols(); ++c) {
    EXPECT_NE(s.find("[" + std::to_string(c) + "]"), std::string::npos) << s;
  }
}

TEST(AnalyzeColumnTest, StatsAreExact) {
  DenseMatrix m(6, 1);
  double vals[] = {0, 0, 5, 5, 3, 0};
  for (size_t i = 0; i < 6; ++i) m.At(i, 0) = vals[i];
  auto stats = CompressedMatrix::AnalyzeColumn(m, 0);
  EXPECT_EQ(stats.cardinality, 3u);   // {0, 5, 3}
  EXPECT_EQ(stats.num_runs, 2u);      // [5,5] and [3] (zero runs suppressed).
  EXPECT_EQ(stats.num_nonzero, 3u);
}

// Property sweep: compressed ops == dense ops across data shapes.
class ClaPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, bool, int>> {};

TEST_P(ClaPropertyTest, OpsMatchDenseAcrossDataShapes) {
  auto [cardinality, sorted, seed] = GetParam();
  auto m = data::LowCardinalityMatrix(700, 5, cardinality, sorted, seed);
  CompressionOptions options;
  options.enable_cocoding = (seed % 2) == 0;
  auto cm = CompressedMatrix::Compress(m, options);

  EXPECT_TRUE(cm.Decompress() == m);
  auto v = data::GaussianMatrix(5, 1, seed + 100);
  EXPECT_TRUE(cm.MultiplyVector(v)->ApproxEquals(la::Gemv(m, v), 1e-9));
  auto u = data::GaussianMatrix(700, 1, seed + 200);
  EXPECT_TRUE(cm.VectorMultiply(u)->ApproxEquals(la::Gevm(u, m), 1e-9));
  EXPECT_NEAR(cm.Sum(), la::Sum(m), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    DataShapes, ClaPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(2, 17, 300),
                       ::testing::Bool(), ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace dmml::cla
