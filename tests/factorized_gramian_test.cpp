// Tests for the factorized Gramian (Orion cofactor computation) and the
// closed-form normal-equation solver over normalized data.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "factorized/factorized_glm.h"
#include "factorized/factorized_gramian.h"
#include "la/kernels.h"
#include "ml/glm.h"
#include "ml/metrics.h"

namespace dmml::factorized {
namespace {

using la::DenseMatrix;

NormalizedMatrix MakeNm(size_t ns, size_t nr, size_t ds_cols, size_t dr,
                        uint64_t seed, double skew = 0.0) {
  data::StarSchemaOptions options;
  options.ns = ns;
  options.nr = nr;
  options.ds = ds_cols;
  options.dr = dr;
  options.fk_zipf_skew = skew;
  auto ds = data::MakeStarSchema(options, seed);
  return *NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});
}

TEST(FactorizedGramianTest, MatchesMaterializedGramian) {
  auto nm = MakeNm(120, 9, 3, 5, 1);
  DenseMatrix gram = FactorizedGramian(nm);
  auto mat = nm.Materialize();
  auto expected = la::Multiply(la::Transpose(mat), mat);
  EXPECT_TRUE(gram.ApproxEquals(expected, 1e-7));
}

TEST(FactorizedGramianTest, GramianIsSymmetric) {
  auto nm = MakeNm(80, 7, 2, 4, 2);
  DenseMatrix gram = FactorizedGramian(nm);
  for (size_t a = 0; a < gram.rows(); ++a) {
    for (size_t b = 0; b < gram.cols(); ++b) {
      EXPECT_DOUBLE_EQ(gram.At(a, b), gram.At(b, a));
    }
  }
}

TEST(FactorizedGramianTest, MultiTableCrossBlocks) {
  // Two attribute tables exercise the sparse co-occurrence path.
  data::StarSchemaOptions options;
  options.ns = 150;
  options.nr = 6;
  options.ds = 2;
  options.dr = 3;
  auto ds1 = data::MakeStarSchema(options, 3);
  options.nr = 11;
  options.dr = 4;
  auto ds2 = data::MakeStarSchema(options, 4);
  auto nm = *NormalizedMatrix::Make(ds1.xs, {{ds1.xr, ds1.fk}, {ds2.xr, ds2.fk}});

  DenseMatrix gram = FactorizedGramian(nm);
  auto mat = nm.Materialize();
  EXPECT_TRUE(gram.ApproxEquals(la::Multiply(la::Transpose(mat), mat), 1e-7));
}

TEST(FactorizedGramianTest, NoEntityFeatures) {
  DenseMatrix xs(40, 0);
  auto xr = data::GaussianMatrix(5, 3, 5);
  std::vector<uint32_t> fk(40);
  for (size_t i = 0; i < 40; ++i) fk[i] = static_cast<uint32_t>(i % 5);
  auto nm = *NormalizedMatrix::Make(xs, {{xr, fk}});
  DenseMatrix gram = FactorizedGramian(nm);
  auto mat = nm.Materialize();
  EXPECT_TRUE(gram.ApproxEquals(la::Multiply(la::Transpose(mat), mat), 1e-8));
}

TEST(FactorizedColumnSumsTest, MatchesMaterialized) {
  auto nm = MakeNm(90, 8, 2, 6, 6, /*skew=*/1.2);
  DenseMatrix sums = FactorizedColumnSums(nm);
  auto expected = la::Transpose(la::ColumnSums(nm.Materialize()));
  EXPECT_TRUE(sums.ApproxEquals(expected, 1e-8));
}

TEST(FactorizedNormalEquationsTest, MatchesDenseNormalEquations) {
  data::StarSchemaOptions options;
  options.ns = 400;
  options.nr = 25;
  options.ds = 2;
  options.dr = 6;
  options.noise_sigma = 0.1;
  auto ds = data::MakeStarSchema(options, 7);
  auto nm = *NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});

  auto fact = TrainFactorizedNormalEquations(nm, ds.y, /*l2=*/0.0);
  ASSERT_TRUE(fact.ok());

  ml::GlmConfig config;
  config.solver = ml::GlmSolver::kNormalEquations;
  auto dense = ml::TrainGlm(nm.Materialize(), ds.y, config);
  ASSERT_TRUE(dense.ok());

  EXPECT_TRUE(fact->weights.ApproxEquals(dense->weights, 1e-6));
  EXPECT_NEAR(fact->intercept, dense->intercept, 1e-6);
}

TEST(FactorizedNormalEquationsTest, RidgeMatchesDenseRidge) {
  auto nm = MakeNm(200, 12, 2, 5, 8);
  DenseMatrix y(nm.rows(), 1);
  Rng rng(9);
  for (size_t i = 0; i < y.rows(); ++i) y.At(i, 0) = rng.Normal();

  auto fact = TrainFactorizedNormalEquations(nm, y, /*l2=*/0.5);
  ASSERT_TRUE(fact.ok());
  ml::GlmConfig config;
  config.solver = ml::GlmSolver::kNormalEquations;
  config.l2 = 0.5;
  auto dense = ml::TrainGlm(nm.Materialize(), y, config);
  ASSERT_TRUE(dense.ok());
  EXPECT_TRUE(fact->weights.ApproxEquals(dense->weights, 1e-6));
}

TEST(FactorizedNormalEquationsTest, WithoutIntercept) {
  auto nm = MakeNm(150, 10, 2, 4, 10);
  DenseMatrix y(nm.rows(), 1, 1.0);
  auto fact = TrainFactorizedNormalEquations(nm, y, 0.0, /*fit_intercept=*/false);
  ASSERT_TRUE(fact.ok());
  EXPECT_EQ(fact->intercept, 0.0);
  ml::GlmConfig config;
  config.solver = ml::GlmSolver::kNormalEquations;
  config.fit_intercept = false;
  auto dense = ml::TrainGlm(nm.Materialize(), y, config);
  ASSERT_TRUE(dense.ok());
  EXPECT_TRUE(fact->weights.ApproxEquals(dense->weights, 1e-6));
}

TEST(FactorizedNormalEquationsTest, SolvesTheRegressionTask) {
  data::StarSchemaOptions options;
  options.ns = 600;
  options.nr = 30;
  options.ds = 3;
  options.dr = 8;
  options.noise_sigma = 0.05;
  auto ds = data::MakeStarSchema(options, 11);
  auto nm = *NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});
  auto model = TrainFactorizedNormalEquations(nm, ds.y, 0.0);
  ASSERT_TRUE(model.ok());
  auto pred = la::Gemv(nm.Materialize(), model->weights);
  for (size_t i = 0; i < pred.rows(); ++i) pred.At(i, 0) += model->intercept;
  EXPECT_GT(*ml::R2(ds.y, pred), 0.99);
}

TEST(FactorizedNormalEquationsTest, Validation) {
  auto nm = MakeNm(50, 5, 1, 2, 12);
  EXPECT_FALSE(TrainFactorizedNormalEquations(nm, DenseMatrix(3, 1)).ok());
}

// Property sweep: factorized gramian == materialized gramian across shapes.
class GramianProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t, size_t>> {};

TEST_P(GramianProperty, AgreesWithMaterialized) {
  auto [ns, nr, ds_cols, dr] = GetParam();
  auto nm = MakeNm(ns, nr, ds_cols, dr, ns * 7 + nr, (ns % 2) ? 1.3 : 0.0);
  DenseMatrix gram = FactorizedGramian(nm);
  auto mat = nm.Materialize();
  EXPECT_TRUE(gram.ApproxEquals(la::Multiply(la::Transpose(mat), mat), 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GramianProperty,
    ::testing::Values(std::make_tuple(30, 3, 1, 2), std::make_tuple(77, 11, 4, 3),
                      std::make_tuple(64, 64, 2, 2), std::make_tuple(120, 2, 0, 5),
                      std::make_tuple(45, 9, 3, 1)));

}  // namespace
}  // namespace dmml::factorized
