// Tests for the declarative expression language (DML-style parser).
#include <gtest/gtest.h>

#include <memory>

#include "data/generators.h"
#include "la/kernels.h"
#include "laopt/optimizer.h"
#include "laopt/parser.h"

namespace dmml::laopt {
namespace {

using la::DenseMatrix;

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = std::make_shared<DenseMatrix>(data::GaussianMatrix(10, 4, 1));
    v_ = std::make_shared<DenseMatrix>(data::GaussianMatrix(10, 1, 2));
    w_ = std::make_shared<DenseMatrix>(data::GaussianMatrix(4, 1, 3));
    env_ = {{"X", x_}, {"v", v_}, {"w", w_}};
  }

  std::shared_ptr<DenseMatrix> x_, v_, w_;
  Environment env_;
};

TEST_F(ParserTest, SingleIdentifier) {
  auto result = EvalExpression("X", env_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result == *x_);
}

TEST_F(ParserTest, MatMulAndTranspose) {
  auto result = EvalExpression("t(X) %*% v", env_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(la::Multiply(la::Transpose(*x_), *v_), 1e-12));
}

TEST_F(ParserTest, GramVectorPattern) {
  auto result = EvalExpression("t(X) %*% (X %*% w)", env_);
  ASSERT_TRUE(result.ok());
  auto expected = la::Multiply(la::Transpose(*x_), la::Multiply(*x_, *w_));
  EXPECT_TRUE(result->ApproxEquals(expected, 1e-10));
}

TEST_F(ParserTest, AdditionSubtractionElementwise) {
  auto result = EvalExpression("v + v - v * v", env_);
  ASSERT_TRUE(result.ok());
  auto expected = la::Subtract(la::Add(*v_, *v_), la::ElementwiseMultiply(*v_, *v_));
  EXPECT_TRUE(result->ApproxEquals(expected, 1e-12));
}

TEST_F(ParserTest, ScalarMultiplicationBothSides) {
  auto left = EvalExpression("2.5 * v", env_);
  auto right = EvalExpression("v * 2.5", env_);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  EXPECT_TRUE(left->ApproxEquals(la::Scale(*v_, 2.5), 1e-12));
  EXPECT_TRUE(right->ApproxEquals(*left, 1e-12));
}

TEST_F(ParserTest, ScalarArithmeticFolds) {
  auto result = EvalExpression("(2 * 3 + 4) * v", env_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(la::Scale(*v_, 10.0), 1e-12));
}

TEST_F(ParserTest, UnaryMinus) {
  auto result = EvalExpression("-v + v", env_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(DenseMatrix(10, 1), 1e-12));
  auto scaled = EvalExpression("-2 * v", env_);
  ASSERT_TRUE(scaled.ok());
  EXPECT_TRUE(scaled->ApproxEquals(la::Scale(*v_, -2.0), 1e-12));
}

TEST_F(ParserTest, PrecedenceMulBeforeAdd) {
  // v + 2*v = 3v, not (v+2)*v.
  auto result = EvalExpression("v + 2 * v", env_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(la::Scale(*v_, 3.0), 1e-12));
}

TEST_F(ParserTest, ScientificNumbers) {
  auto result = EvalExpression("1.5e2 * v", env_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(la::Scale(*v_, 150.0), 1e-12));
}

TEST_F(ParserTest, ParseProducesOptimizableDag) {
  auto expr = ParseExpression("t(t(X)) %*% w", env_);
  ASSERT_TRUE(expr.ok());
  // The double transpose survives parsing and is removed by the optimizer.
  OptimizerReport report;
  auto optimized = Optimize(*expr, {}, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(report.transposes_eliminated, 1u);
}

TEST_F(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseExpression("", env_).ok());
  EXPECT_FALSE(ParseExpression("X +", env_).ok());
  EXPECT_FALSE(ParseExpression("(X", env_).ok());
  EXPECT_FALSE(ParseExpression("X)", env_).ok());
  EXPECT_FALSE(ParseExpression("X %% v", env_).ok());
  EXPECT_FALSE(ParseExpression("X ? v", env_).ok());
  EXPECT_FALSE(ParseExpression("X v", env_).ok());  // Trailing input.
}

TEST_F(ParserTest, SemanticErrors) {
  // Unknown identifier (with position info).
  auto unknown = ParseExpression("X %*% missing", env_);
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("missing"), std::string::npos);
  // Shape mismatch caught at parse time.
  EXPECT_FALSE(ParseExpression("X %*% v", env_).ok());  // 10x4 times 10x1.
  // Scalar misuse.
  EXPECT_FALSE(ParseExpression("2 %*% v", env_).ok());
  EXPECT_FALSE(ParseExpression("t(2)", env_).ok());
  EXPECT_FALSE(ParseExpression("v + 1", env_).ok());
  EXPECT_FALSE(ParseExpression("3 + 4", env_).ok());  // Pure scalar result.
}

TEST_F(ParserTest, IdentifierNamedTWorksWhenNotCall) {
  Environment env = env_;
  env["t"] = v_;  // A matrix named "t" is legal as long as it's not t(...).
  auto result = EvalExpression("t + v", env);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ApproxEquals(la::Scale(*v_, 2.0), 1e-12));
}

TEST_F(ParserTest, RidgeGradientExpression) {
  // A realistic full formula: gradient of ridge loss at w.
  auto result =
      EvalExpression("t(X) %*% (X %*% w - v) + 0.1 * w", env_);
  ASSERT_TRUE(result.ok());
  auto residual = la::Subtract(la::Multiply(*x_, *w_), *v_);
  auto expected =
      la::Add(la::Multiply(la::Transpose(*x_), residual), la::Scale(*w_, 0.1));
  EXPECT_TRUE(result->ApproxEquals(expected, 1e-10));
}

}  // namespace
}  // namespace dmml::laopt
