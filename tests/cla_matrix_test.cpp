// Tests for the CLA extensions: matrix-matrix ops on compressed data,
// compressed row norms, the sampling planner and compressed k-means.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>

#include "cla/compressed_kmeans.h"
#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "la/kernels.h"
#include "ml/metrics.h"

namespace dmml::cla {
namespace {

using la::DenseMatrix;

DenseMatrix MixedData(size_t n, uint64_t seed) {
  // 6 columns: 2 low-card, 2 sorted runs, 1 sparse, 1 gaussian.
  DenseMatrix m(n, 6);
  auto lowcard = data::LowCardinalityMatrix(n, 2, 5, false, seed);
  auto sorted = data::LowCardinalityMatrix(n, 2, 7, true, seed + 1);
  Rng rng(seed + 2);
  for (size_t i = 0; i < n; ++i) {
    m.At(i, 0) = lowcard.At(i, 0);
    m.At(i, 1) = lowcard.At(i, 1);
    m.At(i, 2) = sorted.At(i, 0);
    m.At(i, 3) = sorted.At(i, 1);
    if (rng.Bernoulli(0.07)) m.At(i, 4) = rng.Normal();
    m.At(i, 5) = rng.Normal();
  }
  return m;
}

TEST(ClaMatrixOpsTest, MultiplyMatrixMatchesDense) {
  auto m = MixedData(600, 1);
  auto cm = CompressedMatrix::Compress(m);
  auto rhs = data::GaussianMatrix(6, 4, 2);
  auto y = cm.MultiplyMatrix(rhs);
  ASSERT_TRUE(y.ok());
  EXPECT_TRUE(y->ApproxEquals(la::Multiply(m, rhs), 1e-9));
}

TEST(ClaMatrixOpsTest, TransposeMultiplyMatrixMatchesDense) {
  auto m = MixedData(600, 3);
  auto cm = CompressedMatrix::Compress(m);
  auto rhs = data::GaussianMatrix(600, 3, 4);
  auto y = cm.TransposeMultiplyMatrix(rhs);
  ASSERT_TRUE(y.ok());
  EXPECT_TRUE(y->ApproxEquals(la::Multiply(la::Transpose(m), rhs), 1e-9));
}

TEST(ClaMatrixOpsTest, SingleColumnMatrixEqualsVectorOps) {
  auto m = MixedData(300, 5);
  auto cm = CompressedMatrix::Compress(m);
  auto v = data::GaussianMatrix(6, 1, 6);
  EXPECT_TRUE(cm.MultiplyMatrix(v)->ApproxEquals(*cm.MultiplyVector(v), 1e-12));
  auto u = data::GaussianMatrix(300, 1, 7);
  auto tm = *cm.TransposeMultiplyMatrix(u);           // cols x 1.
  auto vm = la::Transpose(*cm.VectorMultiply(u));     // cols x 1.
  EXPECT_TRUE(tm.ApproxEquals(vm, 1e-12));
}

TEST(ClaMatrixOpsTest, ShapeValidation) {
  auto cm = CompressedMatrix::Compress(MixedData(100, 8));
  EXPECT_FALSE(cm.MultiplyMatrix(DenseMatrix(5, 2)).ok());
  EXPECT_FALSE(cm.TransposeMultiplyMatrix(DenseMatrix(5, 2)).ok());
}

TEST(ClaMatrixOpsTest, RowSquaredNormsMatchDense) {
  auto m = MixedData(400, 9);
  auto cm = CompressedMatrix::Compress(m);
  auto norms = cm.RowSquaredNorms();
  for (size_t i = 0; i < m.rows(); ++i) {
    EXPECT_NEAR(norms.At(i, 0), la::Dot(m.Row(i), m.Row(i), m.cols()), 1e-8);
  }
}

// --------------------------------------------------------------------------
// Sampling planner
// --------------------------------------------------------------------------

TEST(ClaSamplingTest, SampledStatsApproximateExactOnes) {
  auto m = data::LowCardinalityMatrix(20000, 1, 30, false, 10);
  auto exact = CompressedMatrix::AnalyzeColumn(m, 0);
  auto sampled = CompressedMatrix::AnalyzeColumnSampled(m, 0, 2000);
  // All 30 values appear often; Chao1 should land right on 30.
  EXPECT_EQ(exact.cardinality, 30u);
  EXPECT_NEAR(static_cast<double>(sampled.cardinality), 30.0, 3.0);
  EXPECT_NEAR(static_cast<double>(sampled.num_nonzero),
              static_cast<double>(exact.num_nonzero),
              0.1 * static_cast<double>(m.rows()));
}

TEST(ClaSamplingTest, SampledPlannerPicksSameFormatsOnClearData) {
  // Clear-cut datasets where the estimator noise cannot flip the decision.
  auto lowcard = data::LowCardinalityMatrix(20000, 3, 8, false, 11);
  CompressionOptions sampling;
  sampling.sample_rows = 1000;
  auto exact_cm = CompressedMatrix::Compress(lowcard);
  auto sampled_cm = CompressedMatrix::Compress(lowcard, sampling);
  ASSERT_EQ(exact_cm.groups().size(), sampled_cm.groups().size());
  for (size_t g = 0; g < exact_cm.groups().size(); ++g) {
    EXPECT_EQ(exact_cm.groups()[g]->format(), sampled_cm.groups()[g]->format());
  }
  // And the compressed data is identical regardless of how it was planned.
  EXPECT_TRUE(sampled_cm.Decompress() == lowcard);
}

TEST(ClaSamplingTest, GaussianStaysUncompressedUnderSampling) {
  auto gauss = data::GaussianMatrix(20000, 2, 12);
  CompressionOptions sampling;
  sampling.sample_rows = 1000;
  auto cm = CompressedMatrix::Compress(gauss, sampling);
  for (const auto& g : cm.groups()) {
    EXPECT_EQ(g->format(), GroupFormat::kUncompressed);
  }
}

TEST(ClaSamplingTest, SampleLargerThanDataFallsBackToExact) {
  auto m = data::LowCardinalityMatrix(100, 1, 4, false, 13);
  auto a = CompressedMatrix::AnalyzeColumn(m, 0);
  auto b = CompressedMatrix::AnalyzeColumnSampled(m, 0, 1000);
  EXPECT_EQ(a.cardinality, b.cardinality);
  EXPECT_EQ(a.num_runs, b.num_runs);
}

// --------------------------------------------------------------------------
// Compressed k-means
// --------------------------------------------------------------------------

TEST(CompressedKMeansTest, RecoversBlobsThroughCompression) {
  auto blobs = data::MakeBlobs(600, 4, 3, 25.0, 0.5, 14);
  // Quantize to make the data compressible while keeping cluster structure.
  DenseMatrix quantized(blobs.x.rows(), blobs.x.cols());
  for (size_t i = 0; i < blobs.x.size(); ++i) {
    quantized.data()[i] = std::round(blobs.x.data()[i] * 4.0) / 4.0;
  }
  auto cm = CompressedMatrix::Compress(quantized);
  EXPECT_GT(cm.CompressionRatio(), 1.0);

  ml::KMeansConfig config;
  config.k = 3;
  config.max_iters = 50;
  config.seed = 15;
  auto model = TrainCompressedKMeans(cm, config);
  ASSERT_TRUE(model.ok());
  // Clusters must be nearly pure.
  for (size_t c = 0; c < 3; ++c) {
    std::map<int, int> votes;
    for (size_t i = 0; i < quantized.rows(); ++i) {
      if (model->labels[i] == static_cast<int>(c)) votes[blobs.labels[i]]++;
    }
    int total = 0, best = 0;
    for (auto& [_, v] : votes) {
      total += v;
      best = std::max(best, v);
    }
    if (total > 0) {
      EXPECT_GT(static_cast<double>(best) / total, 0.9);
    }
  }
}

TEST(CompressedKMeansTest, MatchesUncompressedDistanceSemantics) {
  auto m = MixedData(300, 16);
  auto cm = CompressedMatrix::Compress(m);
  ml::KMeansConfig config;
  config.k = 4;
  config.max_iters = 30;
  config.seed = 17;
  auto model = TrainCompressedKMeans(cm, config);
  ASSERT_TRUE(model.ok());
  // Labels must be argmin distances against the returned centers.
  for (size_t i = 0; i < m.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_c = -1;
    for (size_t c = 0; c < 4; ++c) {
      double d = la::RowSquaredDistance(m, i, model->centers, c);
      if (d < best) {
        best = d;
        best_c = static_cast<int>(c);
      }
    }
    ASSERT_EQ(model->labels[i], best_c) << "row " << i;
  }
}

TEST(CompressedKMeansTest, InertiaDecreases) {
  auto cm = CompressedMatrix::Compress(MixedData(400, 18));
  ml::KMeansConfig config;
  config.k = 3;
  auto model = TrainCompressedKMeans(cm, config);
  ASSERT_TRUE(model.ok());
  for (size_t i = 1; i < model->inertia_history.size(); ++i) {
    EXPECT_LE(model->inertia_history[i], model->inertia_history[i - 1] + 1e-6);
  }
}

TEST(CompressedKMeansTest, InvalidK) {
  auto cm = CompressedMatrix::Compress(MixedData(50, 19));
  ml::KMeansConfig config;
  config.k = 0;
  EXPECT_FALSE(TrainCompressedKMeans(cm, config).ok());
  config.k = 51;
  EXPECT_FALSE(TrainCompressedKMeans(cm, config).ok());
}

}  // namespace
}  // namespace dmml::cla
