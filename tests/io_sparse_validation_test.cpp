// Tests for matrix persistence, sparse GLM training and validation helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "data/generators.h"
#include "la/kernels.h"
#include "la/matrix_io.h"
#include "ml/metrics.h"
#include "ml/sparse_glm.h"
#include "ml/validation.h"

namespace dmml {
namespace {

using la::DenseMatrix;
using la::SparseMatrix;

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

// --------------------------------------------------------------------------
// Matrix I/O
// --------------------------------------------------------------------------

TEST(MatrixIoTest, DenseBinaryRoundTrip) {
  auto m = data::GaussianMatrix(17, 9, 1);
  std::string path = TempPath("dense.dmm");
  ASSERT_TRUE(la::SaveDenseMatrix(m, path).ok());
  auto loaded = la::LoadDenseMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == m);  // Bit-exact.
  std::remove(path.c_str());
}

TEST(MatrixIoTest, SparseBinaryRoundTrip) {
  auto m = data::SparseGaussianMatrix(40, 25, 0.15, 2);
  std::string path = TempPath("sparse.dms");
  ASSERT_TRUE(la::SaveSparseMatrix(m, path).ok());
  auto loaded = la::LoadSparseMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == m);
  std::remove(path.c_str());
}

TEST(MatrixIoTest, EmptyAndVectorShapes) {
  DenseMatrix empty;
  std::string path = TempPath("empty.dmm");
  ASSERT_TRUE(la::SaveDenseMatrix(empty, path).ok());
  auto loaded = la::LoadDenseMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows(), 0u);

  auto v = DenseMatrix::ColumnVector({1, 2, 3});
  ASSERT_TRUE(la::SaveDenseMatrix(v, path).ok());
  EXPECT_TRUE(*la::LoadDenseMatrix(path) == v);
  std::remove(path.c_str());
}

TEST(MatrixIoTest, RejectsWrongMagicAndTruncation) {
  std::string path = TempPath("bogus.dmm");
  FILE* f = fopen(path.c_str(), "wb");
  fputs("NOPE", f);
  fclose(f);
  EXPECT_FALSE(la::LoadDenseMatrix(path).ok());
  EXPECT_FALSE(la::LoadSparseMatrix(path).ok());

  // Valid magic but truncated payload.
  auto m = data::GaussianMatrix(4, 4, 3);
  ASSERT_TRUE(la::SaveDenseMatrix(m, path).ok());
  ASSERT_EQ(truncate(path.c_str(), 30), 0);
  EXPECT_FALSE(la::LoadDenseMatrix(path).ok());
  std::remove(path.c_str());
}

TEST(MatrixIoTest, MissingFileIsError) {
  EXPECT_FALSE(la::LoadDenseMatrix("/nonexistent/m.dmm").ok());
  EXPECT_FALSE(la::SaveDenseMatrix(DenseMatrix(1, 1), "/nonexistent/m.dmm").ok());
}

TEST(MatrixIoTest, CsvRoundTrip) {
  auto m = data::GaussianMatrix(6, 3, 4);
  std::string path = TempPath("matrix.csv");
  ASSERT_TRUE(la::SaveDenseMatrixCsv(m, path).ok());
  auto loaded = la::LoadDenseMatrixCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->ApproxEquals(m, 0));  // 17-digit precision round trips.
  std::remove(path.c_str());
}

TEST(MatrixIoTest, CsvRejectsRaggedRows) {
  std::string path = TempPath("ragged.csv");
  FILE* f = fopen(path.c_str(), "w");
  fputs("1,2,3\n4,5\n", f);
  fclose(f);
  EXPECT_FALSE(la::LoadDenseMatrixCsv(path).ok());
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Sparse GLM
// --------------------------------------------------------------------------

TEST(SparseGlmTest, MatchesDenseTrainingExactly) {
  auto sparse = data::SparseGaussianMatrix(300, 20, 0.1, 5);
  auto dense = sparse.ToDense();
  Rng rng(6);
  DenseMatrix w_true(20, 1);
  for (size_t j = 0; j < 20; ++j) w_true.At(j, 0) = rng.Normal();
  DenseMatrix y = la::SparseGemv(sparse, w_true);
  for (size_t i = 0; i < y.rows(); ++i) y.At(i, 0) += rng.Normal(0, 0.01);

  ml::GlmConfig config;
  config.learning_rate = 0.5;
  config.max_epochs = 100;
  config.tolerance = 0;
  auto sparse_model = ml::TrainGlmSparse(sparse, y, config);
  ASSERT_TRUE(sparse_model.ok());
  config.solver = ml::GlmSolver::kBatchGd;
  auto dense_model = ml::TrainGlm(dense, y, config);
  ASSERT_TRUE(dense_model.ok());
  EXPECT_TRUE(sparse_model->weights.ApproxEquals(dense_model->weights, 1e-9));
  EXPECT_NEAR(sparse_model->intercept, dense_model->intercept, 1e-9);
}

TEST(SparseGlmTest, LogisticOnSparseOneHot) {
  // One-hot features: 100 categories, label depends on category parity.
  const size_t n = 800, d = 100;
  Rng rng(7);
  std::vector<la::Triplet> triplets;
  DenseMatrix y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    size_t cat = rng.UniformInt(uint64_t{d});
    triplets.push_back({i, cat, 1.0});
    y.At(i, 0) = (cat % 2 == 0) ? 1.0 : 0.0;
  }
  auto x = SparseMatrix::FromTriplets(n, d, std::move(triplets));
  ml::GlmConfig config;
  config.family = ml::GlmFamily::kBinomial;
  config.learning_rate = 1.0;
  config.max_epochs = 300;
  auto model = ml::TrainGlmSparse(x, y, config);
  ASSERT_TRUE(model.ok());
  // Predictions via the dense model interface on the densified matrix.
  auto labels = model->PredictLabels(x.ToDense());
  ASSERT_TRUE(labels.ok());
  EXPECT_GT(*ml::Accuracy(y, *labels), 0.98);
}

TEST(SparseGlmTest, LossMatchesDenseLoss) {
  auto sparse = data::SparseGaussianMatrix(50, 8, 0.3, 8);
  auto w = data::GaussianMatrix(8, 1, 9);
  DenseMatrix y(50, 1, 0.5);
  auto sparse_loss =
      ml::GlmLossSparse(sparse, y, w, 0.1, ml::GlmFamily::kGaussian, 0.2);
  auto dense_loss =
      ml::GlmLoss(sparse.ToDense(), y, w, 0.1, ml::GlmFamily::kGaussian, 0.2);
  ASSERT_TRUE(sparse_loss.ok());
  ASSERT_TRUE(dense_loss.ok());
  EXPECT_NEAR(*sparse_loss, *dense_loss, 1e-12);
}

TEST(SparseGlmTest, Validation) {
  ml::GlmConfig config;
  EXPECT_FALSE(ml::TrainGlmSparse(SparseMatrix(), DenseMatrix(0, 1), config).ok());
  auto x = data::SparseGaussianMatrix(10, 3, 0.5, 10);
  EXPECT_FALSE(ml::TrainGlmSparse(x, DenseMatrix(5, 1), config).ok());
  config.learning_rate = -1;
  EXPECT_FALSE(ml::TrainGlmSparse(x, DenseMatrix(10, 1), config).ok());
  config = ml::GlmConfig{};
  config.family = ml::GlmFamily::kBinomial;
  EXPECT_FALSE(ml::TrainGlmSparse(x, DenseMatrix(10, 1, 0.7), config).ok());
}

// --------------------------------------------------------------------------
// Validation helpers
// --------------------------------------------------------------------------

TEST(SplitTest, PartitionsRowsExactly) {
  auto x = data::GaussianMatrix(100, 3, 11);
  DenseMatrix y(100, 1);
  for (size_t i = 0; i < 100; ++i) y.At(i, 0) = static_cast<double>(i);
  auto split = ml::SplitTrainTest(x, y, 0.25, 12);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->x_test.rows(), 25u);
  EXPECT_EQ(split->x_train.rows(), 75u);
  // Every original row id appears exactly once across the two sides.
  std::set<double> seen;
  for (size_t i = 0; i < 25; ++i) seen.insert(split->y_test.At(i, 0));
  for (size_t i = 0; i < 75; ++i) seen.insert(split->y_train.At(i, 0));
  EXPECT_EQ(seen.size(), 100u);
}

TEST(SplitTest, RowsStayAligned) {
  // y encodes a function of x so misalignment is detectable.
  auto x = data::GaussianMatrix(60, 2, 13);
  DenseMatrix y(60, 1);
  for (size_t i = 0; i < 60; ++i) y.At(i, 0) = x.At(i, 0) + 2 * x.At(i, 1);
  auto split = ml::SplitTrainTest(x, y, 0.3, 14);
  ASSERT_TRUE(split.ok());
  for (size_t i = 0; i < split->x_test.rows(); ++i) {
    EXPECT_NEAR(split->y_test.At(i, 0),
                split->x_test.At(i, 0) + 2 * split->x_test.At(i, 1), 1e-12);
  }
}

TEST(SplitTest, Validation) {
  auto x = data::GaussianMatrix(10, 2, 15);
  DenseMatrix y(10, 1);
  EXPECT_FALSE(ml::SplitTrainTest(x, DenseMatrix(9, 1), 0.2, 1).ok());
  EXPECT_FALSE(ml::SplitTrainTest(x, y, 0.0, 1).ok());
  EXPECT_FALSE(ml::SplitTrainTest(x, y, 1.0, 1).ok());
  EXPECT_FALSE(ml::SplitTrainTest(x, y, 0.01, 1).ok());  // Test side empty.
}

TEST(ConfusionMatrixTest, CountsAndDerivedMetrics) {
  std::vector<int> y_true = {0, 0, 1, 1, 1, 2};
  std::vector<int> y_pred = {0, 1, 1, 1, 0, 2};
  auto cm = ml::BuildConfusionMatrix(y_true, y_pred);
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(cm->classes, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(cm->counts.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cm->counts.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(cm->counts.At(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(cm->counts.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(cm->counts.At(2, 2), 1.0);
  EXPECT_NEAR(cm->Accuracy(), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(*cm->Recall(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(*cm->Precision(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(*cm->Recall(2), 1.0, 1e-12);
  EXPECT_FALSE(cm->Recall(99).ok());
}

TEST(ConfusionMatrixTest, HandlesPredictedOnlyClasses) {
  auto cm = ml::BuildConfusionMatrix({0, 0}, {0, 5});
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(cm->classes, (std::vector<int>{0, 5}));
  EXPECT_FALSE(cm->Recall(5).ok());  // Class 5 has no true examples.
  EXPECT_TRUE(cm->Precision(5).ok());
  std::string rendered = cm->ToString();
  EXPECT_NE(rendered.find("5"), std::string::npos);
}

TEST(ConfusionMatrixTest, Validation) {
  EXPECT_FALSE(ml::BuildConfusionMatrix({}, {}).ok());
  EXPECT_FALSE(ml::BuildConfusionMatrix({1}, {1, 2}).ok());
}

}  // namespace
}  // namespace dmml
