// Tests for the inter-node dataflow scheduler: bit-identical results versus
// the serial executor across wide, diamond, and fused-kernel plans; the
// runtime no-concurrent-writer check on shared pool buffers; cooperative
// waiting under nested submission on a one-thread pool; two executors
// sharing GlobalThreadPool(); and exact profile/ExecStats parity.
//
// This suite rides the sanitizer gates in scripts/static_checks.sh (TSan and
// ASan+UBSan) — any data race between concurrently-launched node tasks shows
// up here first.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cla/compressed_matrix.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "laopt/analysis.h"
#include "laopt/executor.h"
#include "laopt/expr.h"
#include "laopt/profile.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace dmml::laopt {
namespace {

using la::DenseMatrix;
using la::SparseMatrix;

std::shared_ptr<DenseMatrix> MakeDense(size_t rows, size_t cols, double base) {
  auto m = std::make_shared<DenseMatrix>(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m->At(r, c) = base + static_cast<double>(r * cols + c) * 0.37 -
                    static_cast<double>((r * 7 + c * 3) % 5);
    }
  }
  return m;
}

std::shared_ptr<SparseMatrix> MakeSparse(size_t rows, size_t cols) {
  std::vector<la::Triplet> t;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = r % 3; c < cols; c += 3) {
      t.push_back({r, c, 1.0 + static_cast<double>(r * cols + c) * 0.5});
    }
  }
  return std::make_shared<SparseMatrix>(
      SparseMatrix::FromTriplets(rows, cols, std::move(t)));
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

// A wide plan: `width` independent Gram-style subtrees colSums(t(Xi) %*% Xi)
// joined by a balanced add-tree. Nothing below the add-tree shares a node,
// so a dataflow scheduler can run all subtrees concurrently.
ExprPtr BuildWidePlan(size_t width, size_t rows, size_t cols) {
  std::vector<ExprPtr> parts;
  for (size_t i = 0; i < width; ++i) {
    ExprPtr x = *ExprNode::Input(MakeDense(rows, cols, 0.1 * (i + 1)),
                                 "X" + std::to_string(i));
    ExprPtr gram = *ExprNode::MatMul(*ExprNode::Transpose(x), x);
    parts.push_back(*ExprNode::ColSums(gram));
  }
  while (parts.size() > 1) {
    std::vector<ExprPtr> next;
    for (size_t i = 0; i + 1 < parts.size(); i += 2) {
      next.push_back(*ExprNode::Add(parts[i], parts[i + 1]));
    }
    if (parts.size() % 2 == 1) next.push_back(parts.back());
    parts = std::move(next);
  }
  return parts[0];
}

// A diamond: mm = X %*% W feeds two branches that rejoin. The shared node is
// evaluated once; every other consumer must observe the memoized value.
ExprPtr BuildDiamondPlan() {
  ExprPtr x = *ExprNode::Input(MakeDense(12, 6, 1.0), "X");
  ExprPtr w = *ExprNode::Input(MakeDense(6, 4, -0.5), "W");
  ExprPtr mm = *ExprNode::MatMul(x, w);
  ExprPtr em = *ExprNode::ElemMul(mm, mm);
  ExprPtr left = *ExprNode::ColSums(*ExprNode::Add(mm, em));
  ExprPtr right = *ExprNode::ColSums(*ExprNode::ScalarMul(2.0, mm));
  return *ExprNode::Add(left, right);
}

// Fused-kernel coverage: t(U)%*%V and U%*%t(V) (transpose absorbed into the
// multiply), a Gram t(U)%*%U, rowSums(S⊙S) on a sparse leaf (fused squared
// norms), and a sparse transpose that materializes CSR. The absorbable
// nodes get no dataflow task; consumers inline-evaluate on demand.
ExprPtr BuildFusedPlan() {
  ExprPtr u = *ExprNode::Input(MakeDense(10, 5, 0.3), "U");
  ExprPtr v = *ExprNode::Input(MakeDense(10, 5, -1.2), "V");
  ExprPtr s = *ExprNode::InputOperand(Operand(MakeSparse(10, 5)), "S");

  ExprPtr tuv = *ExprNode::MatMul(*ExprNode::Transpose(u), v);       // 5x5
  ExprPtr gram = *ExprNode::MatMul(*ExprNode::Transpose(u), u);      // 5x5
  ExprPtr uvt = *ExprNode::MatMul(u, *ExprNode::Transpose(v));       // 10x10
  ExprPtr norms = *ExprNode::RowSums(*ExprNode::ElemMul(s, s));      // 10x1
  ExprPtr st = *ExprNode::Transpose(s);                              // 5x10

  ExprPtr a = *ExprNode::ColSums(*ExprNode::Add(tuv, gram));         // 1x5
  ExprPtr b = *ExprNode::ColSums(*ExprNode::MatMul(st, uvt));        // 1x10
  ExprPtr c = *ExprNode::ColSums(*ExprNode::Transpose(norms));       // 1x10
  return *ExprNode::Sum(*ExprNode::Add(
      b, *ExprNode::Add(*ExprNode::ElemMul(b, c), *ExprNode::MatMul(a, st))));
}

void ExpectBitIdentical(const DenseMatrix& serial, const DenseMatrix& par,
                        const std::string& label) {
  ASSERT_EQ(serial.rows(), par.rows()) << label;
  ASSERT_EQ(serial.cols(), par.cols()) << label;
  for (size_t i = 0; i < serial.size(); ++i) {
    // EXPECT_EQ on doubles is exact — the scheduler reorders tasks, never
    // the floating-point reductions inside a kernel.
    ASSERT_EQ(serial.data()[i], par.data()[i]) << label << " flat index " << i;
  }
}

// Runs `root` serially and inter-node on the same pool and asserts
// bit-identical output. The pool is shared because kernel chunking (and so
// floating-point reduction order) depends on pool size — a morsel property
// independent of the scheduler. For a fixed pool, turning inter-node
// scheduling on must not change one bit.
void CheckPlanParity(const ExprPtr& root, const std::string& label,
                     size_t threads = 4) {
  ThreadPool pool(threads);
  BufferedExecutor serial(&pool);
  serial.set_inter_node(false);
  const auto s = serial.Run(root);
  ASSERT_TRUE(s.ok()) << label << ": " << s.status().message();
  const DenseMatrix serial_out = **s;  // Copy out of executor storage.

  BufferedExecutor par_exec(&pool);
  par_exec.set_inter_node(true);
  const auto p = par_exec.Run(root);
  ASSERT_TRUE(p.ok()) << label << ": " << p.status().message();
  ExpectBitIdentical(serial_out, **p, label);
}

TEST(LaoptSchedTest, WidePlanBitIdentical) {
  const uint64_t launched_before = CounterValue("laopt.sched.nodes_launched");
  CheckPlanParity(BuildWidePlan(8, 16, 6), "wide");
  EXPECT_GT(CounterValue("laopt.sched.nodes_launched"), launched_before);
}

TEST(LaoptSchedTest, DiamondPlanBitIdentical) {
  CheckPlanParity(BuildDiamondPlan(), "diamond");
}

TEST(LaoptSchedTest, FusedKernelPlanBitIdentical) {
  CheckPlanParity(BuildFusedPlan(), "fused");
}

TEST(LaoptSchedTest, SharedAbsorbedTransposeBitIdentical) {
  // One t(X) node absorbed by two different matmuls (the Gram and the
  // GLM-gradient patterns sharing a transpose): the bench's wide-DAG shape.
  std::vector<ExprPtr> parts;
  for (int i = 0; i < 4; ++i) {
    // Large enough that the dense kernels split into parallel chunks, so
    // inter-node tasks and intra-node morsels coexist on the pool.
    ExprPtr x = *ExprNode::Input(MakeDense(384, 24, 0.3 * (i + 1)),
                                 "X" + std::to_string(i));
    ExprPtr w = *ExprNode::Input(MakeDense(24, 1, -0.4 * (i + 1)),
                                 "w" + std::to_string(i));
    ExprPtr xt = *ExprNode::Transpose(x);
    ExprPtr gram = *ExprNode::MatMul(xt, x);
    ExprPtr grad = *ExprNode::MatMul(xt, *ExprNode::MatMul(x, w));
    parts.push_back(*ExprNode::Add(*ExprNode::ColSums(gram),
                                   *ExprNode::Transpose(grad)));
  }
  const ExprPtr root = *ExprNode::Add(*ExprNode::Add(parts[0], parts[1]),
                                      *ExprNode::Add(parts[2], parts[3]));
  for (int run = 0; run < 20; ++run) CheckPlanParity(root, "shared-transpose");
}

TEST(LaoptSchedTest, RepeatedRunsStayIdentical) {
  // Re-running the same prepared plan reuses buffers and the dependency
  // counters; every run must still match the serial result exactly.
  const ExprPtr root = BuildWidePlan(6, 12, 5);
  ThreadPool pool(3);
  BufferedExecutor serial(&pool);
  serial.set_inter_node(false);
  const DenseMatrix expect = **serial.Run(root);

  BufferedExecutor par_exec(&pool);
  par_exec.set_inter_node(true);
  for (int run = 0; run < 5; ++run) {
    const auto p = par_exec.Run(root);
    ASSERT_TRUE(p.ok()) << p.status().message();
    ExpectBitIdentical(expect, **p, "run " + std::to_string(run));
  }
}

TEST(LaoptSchedTest, SharedBuffersNeverSeeConcurrentWriters) {
  // The concurrency-aware linear scan may only let two nodes share a buffer
  // when the dependency closure orders them. The executor cross-checks this
  // at runtime: every pool-buffer write CAS-claims the buffer, and a failed
  // claim bumps laopt.sched.buffer_conflicts. Drive a deep plan (long
  // chains force retirement-based sharing) many times and require zero
  // conflicts — while proving sharing actually happened.
  const uint64_t conflicts_before = CounterValue("laopt.sched.buffer_conflicts");
  const uint64_t shared_before = CounterValue("laopt.executor.buffers_shared");

  std::vector<ExprPtr> parts;
  for (size_t i = 0; i < 4; ++i) {
    ExprPtr x = *ExprNode::Input(MakeDense(8, 8, 0.2 * (i + 1)),
                                 "C" + std::to_string(i));
    ExprPtr chain = x;
    for (int hop = 0; hop < 6; ++hop) {
      chain = *ExprNode::ScalarMul(0.5, *ExprNode::MatMul(chain, x));
    }
    parts.push_back(*ExprNode::Sum(chain));
  }
  const ExprPtr root = *ExprNode::Add(*ExprNode::Add(parts[0], parts[1]),
                                      *ExprNode::Add(parts[2], parts[3]));

  ThreadPool pool(4);
  BufferedExecutor exec(&pool);
  exec.set_inter_node(true);
  for (int run = 0; run < 10; ++run) {
    ASSERT_TRUE(exec.Run(root).ok());
  }

  EXPECT_GT(CounterValue("laopt.executor.buffers_shared"), shared_before)
      << "plan was expected to exercise buffer sharing";
  EXPECT_EQ(CounterValue("laopt.sched.buffer_conflicts"), conflicts_before)
      << "two tasks claimed one pool buffer concurrently";
}

TEST(LaoptSchedTest, SingleThreadPoolDoesNotDeadlock) {
  // One worker, inter-node scheduling on: node tasks submit nested
  // intra-node work (ParallelForChunks) and the run-level Wait must drain
  // the queue cooperatively. A non-cooperative wait deadlocks here.
  ThreadPool pool(1);
  BufferedExecutor exec(&pool);
  exec.set_inter_node(true);
  const ExprPtr root = BuildWidePlan(4, 24, 8);

  BufferedExecutor serial;
  serial.set_inter_node(false);
  const DenseMatrix expect = **serial.Run(root);

  const auto p = exec.Run(root);
  ASSERT_TRUE(p.ok()) << p.status().message();
  ExpectBitIdentical(expect, **p, "pool(1)");
}

TEST(LaoptSchedTest, TwoExecutorsShareGlobalPool) {
  // Two executors driving inter-node runs on GlobalThreadPool() from two
  // threads: per-run state is per-executor, so the runs must not interfere,
  // and cooperative waiting keeps either driver from starving the other.
  const ExprPtr root_a = BuildWidePlan(5, 14, 6);
  const ExprPtr root_b = BuildDiamondPlan();

  BufferedExecutor serial_a(GlobalThreadPool());
  serial_a.set_inter_node(false);
  const DenseMatrix expect_a = **serial_a.Run(root_a);
  BufferedExecutor serial_b(GlobalThreadPool());
  serial_b.set_inter_node(false);
  const DenseMatrix expect_b = **serial_b.Run(root_b);

  const uint64_t shared_runs_before = CounterValue("laopt.sched.pool_shared_runs");
  std::atomic<int> failures{0};
  auto drive = [&failures](const ExprPtr& root, const DenseMatrix& expect) {
    BufferedExecutor exec(GlobalThreadPool());
    exec.set_inter_node(true);
    for (int run = 0; run < 8; ++run) {
      const auto r = exec.Run(root);
      if (!r.ok() || (*r)->size() != expect.size()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < expect.size(); ++i) {
        if ((*r)->data()[i] != expect.data()[i]) {
          failures.fetch_add(1);
          return;
        }
      }
    }
  };
  std::thread ta(drive, root_a, std::cref(expect_a));
  std::thread tb(drive, root_b, std::cref(expect_b));
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(CounterValue("laopt.sched.pool_shared_runs"),
            shared_runs_before + 16);
}

TEST(LaoptSchedTest, ProfileAndStatsMatchSerialExactly) {
  // The per-run tally (ops, memo hits, densify fallbacks) and the profile's
  // per-node invocation/memo/densify counts are defined by the plan, not by
  // the schedule — inter-node runs must report exactly the serial numbers.
  const ExprPtr root = BuildFusedPlan();

  PlanProfile serial_profile;
  BufferedExecutor serial;
  serial.set_inter_node(false);
  serial.set_profile(&serial_profile);
  ExecStats serial_stats;
  ASSERT_TRUE(serial.Run(root, &serial_stats).ok());

  ThreadPool pool(4);
  PlanProfile par_profile;
  BufferedExecutor par_exec(&pool);
  par_exec.set_inter_node(true);
  par_exec.set_profile(&par_profile);
  ExecStats par_stats;
  ASSERT_TRUE(par_exec.Run(root, &par_stats).ok());

  EXPECT_EQ(par_stats.ops_executed, serial_stats.ops_executed);
  EXPECT_EQ(par_stats.memo_hits, serial_stats.memo_hits);
  EXPECT_EQ(par_stats.densify_fallbacks, serial_stats.densify_fallbacks);

  std::vector<const ExprNode*> nodes;
  std::function<void(const ExprNode*)> collect = [&](const ExprNode* n) {
    if (n == nullptr ||
        std::find(nodes.begin(), nodes.end(), n) != nodes.end()) {
      return;
    }
    nodes.push_back(n);
    for (const auto& c : n->children()) collect(c.get());
  };
  collect(root.get());
  for (const ExprNode* n : nodes) {
    const NodeProfile* srow = serial_profile.Find(n);
    const NodeProfile* prow = par_profile.Find(n);
    ASSERT_EQ(srow == nullptr, prow == nullptr) << OpKindName(n->kind());
    if (srow == nullptr) continue;
    EXPECT_EQ(prow->invocations, srow->invocations) << OpKindName(n->kind());
    EXPECT_EQ(prow->memo_hits, srow->memo_hits) << OpKindName(n->kind());
    EXPECT_EQ(prow->densify_fallbacks, srow->densify_fallbacks)
        << OpKindName(n->kind());
    EXPECT_EQ(prow->fused_uses, srow->fused_uses) << OpKindName(n->kind());
    // Self time never exceeds inclusive time even with helper-task folding.
    EXPECT_LE(prow->self_us, prow->total_us) << OpKindName(n->kind());
  }
  EXPECT_EQ(par_profile.NumNodes(), serial_profile.NumNodes());
}

TEST(LaoptSchedTest, ConcurrentDensifyConsumersDoNotSelfStealDeadlock) {
  // Regression: a consumer task that wins a compressed operand's densify
  // fill blocks in Decompress's nested morsel wait. Before claim-aware
  // cooperative waiting that wait could steal a queued sibling consumer of
  // the same value, which then spun forever in the densify claim loop on the
  // claim held lower on the thief's own stack — a permanent 100% CPU hang.
  // The shape forces the race: rows >= 2 * the CLA row grain (2048) so the
  // fill really fans out chunk tasks, and more ready consumers than workers
  // so a stealable sibling is always queued during the fill.
  constexpr size_t kRows = 4608;
  auto dense = MakeDense(kRows, 3, 0.5);
  auto comp = std::make_shared<cla::CompressedMatrix>(
      cla::CompressedMatrix::Compress(*dense));
  ExprPtr c = *ExprNode::InputOperand(Operand(comp), "C");
  std::vector<ExprPtr> parts;
  for (int i = 0; i < 6; ++i) {
    ExprPtr d = *ExprNode::Input(MakeDense(kRows, 3, 0.1 * (i + 1)),
                                 "D" + std::to_string(i));
    // Add densifies the compressed operand: six independent consumers race
    // on one fill.
    parts.push_back(*ExprNode::Sum(*ExprNode::Add(c, d)));
  }
  ExprPtr root = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    root = *ExprNode::Add(root, parts[i]);
  }

  ThreadPool pool(2);
  BufferedExecutor serial(&pool);
  serial.set_inter_node(false);
  const DenseMatrix expect = **serial.Run(root);

  BufferedExecutor exec(&pool);
  exec.set_inter_node(true);
  for (int run = 0; run < 5; ++run) {
    const auto r = exec.Run(root);
    ASSERT_TRUE(r.ok()) << r.status().message();
    ExpectBitIdentical(expect, **r, "densify run " + std::to_string(run));
  }
}

TEST(LaoptSchedTest, ErrorsPropagateWithoutHanging) {
  // An unbound placeholder must fail the inter-node run cleanly (no hung
  // waiters on the failed slot, WaitGroup fully drained).
  ExprPtr x = *ExprNode::Input(MakeDense(6, 4, 1.0), "X");
  ExprPtr ph = *ExprNode::Placeholder(4, 3, "W");
  ExprPtr root = *ExprNode::ColSums(*ExprNode::MatMul(x, ph));

  ThreadPool pool(2);
  BufferedExecutor exec(&pool);
  exec.set_inter_node(true);
  const auto r = exec.Run(root);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unbound placeholder"), std::string::npos)
      << r.status().message();

  // Binding afterwards heals the same executor and plan.
  ASSERT_TRUE(exec.Bind(ph, Operand(MakeDense(4, 3, -0.25))).ok());
  EXPECT_TRUE(exec.Run(root).ok());
}

TEST(LaoptSchedTest, WavefrontWidthReported) {
  // An 8-wide independent plan on a 4-thread pool should overlap node tasks;
  // the peak-width gauge is the bench's headline signal, so pin it here.
  const ExprPtr root = BuildWidePlan(8, 20, 6);
  ThreadPool pool(4);
  BufferedExecutor exec(&pool);
  exec.set_inter_node(true);
  ASSERT_TRUE(exec.Run(root).ok());
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetGauge("laopt.sched.max_ready_width")
                ->Value(),
            1.0);
}

}  // namespace
}  // namespace dmml::laopt
