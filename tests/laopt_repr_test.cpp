// Representation-polymorphic execution: one laopt program over dense, CSR
// sparse, and CLA-compressed operands.
//
//  * The same program source (and the same compiled plan) must produce the
//    same values under every leaf representation, while dispatching to the
//    representation's native kernels (laopt.repr.* counters).
//  * The GLM normal-equations products run end to end under all three
//    bindings with zero program-source changes.
//  * BufferedExecutor::Bind rebinding — different data, different shape,
//    different representation — must never surface stale buffer contents.
//  * EvalExpression threads the caller's pool through to the kernels
//    (regression: it used to drop the pool on the floor).
//
// This suite is the sanitizer target for representation dispatch: it must
// stay green under -DDMML_SANITIZE=thread and address,undefined.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "la/kernels.h"
#include "laopt/analysis.h"
#include "laopt/executor.h"
#include "laopt/expr.h"
#include "laopt/parser.h"
#include "ml/unified_trainers.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dmml::laopt {
namespace {

using cla::CompressedMatrix;
using la::DenseMatrix;
using la::SparseMatrix;

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double worst = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

// Low-cardinality design matrix with ~60% zeros: compresses well, sparse
// enough for CSR to matter, and exactly representable in all three forms.
DenseMatrix MixedReprDesign(size_t n, size_t d, uint64_t seed) {
  DenseMatrix x = data::LowCardinalityMatrix(n, d, 4, /*run_sorted=*/false, seed);
  Rng rng(seed + 99);
  for (size_t i = 0; i < x.size(); ++i) {
    if (rng.Uniform(0.0, 1.0) < 0.6) x.data()[i] = 0.0;
  }
  return x;
}

SparseMatrix ToCsr(const DenseMatrix& x) {
  std::vector<la::Triplet> triplets;
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      if (x.At(r, c) != 0.0) triplets.push_back({r, c, x.At(r, c)});
    }
  }
  return SparseMatrix::FromTriplets(x.rows(), x.cols(), triplets);
}

class ReprParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dense_ = std::make_shared<DenseMatrix>(MixedReprDesign(120, 6, 5));
    sparse_ = std::make_shared<SparseMatrix>(ToCsr(*dense_));
    compressed_ =
        std::make_shared<CompressedMatrix>(CompressedMatrix::Compress(*dense_));
    y_ = std::make_shared<DenseMatrix>(data::GaussianMatrix(120, 1, 6));
    w_ = std::make_shared<DenseMatrix>(data::GaussianMatrix(6, 1, 7));
  }

  Environment EnvWith(Operand x) const {
    return {{"X", std::move(x)}, {"y", y_}, {"w", w_}};
  }

  std::shared_ptr<DenseMatrix> dense_;
  std::shared_ptr<SparseMatrix> sparse_;
  std::shared_ptr<CompressedMatrix> compressed_;
  std::shared_ptr<DenseMatrix> y_, w_;
};

TEST_F(ReprParityTest, SameProgramSourceUnderAllThreeBindings) {
  // The normal-equations products plus the reductions, one source each. The
  // program text never changes; only the environment binding does.
  const std::vector<std::string> programs = {
      "t(X) %*% X",  "t(X) %*% y",      "X %*% w",     "colSums(X)",
      "rowSums(X)",  "sum(X)",          "t(X) %*% (X %*% w)",
  };
  for (const std::string& src : programs) {
    auto dense_result = EvalExpression(src, EnvWith(dense_));
    ASSERT_TRUE(dense_result.ok()) << src << ": " << dense_result.status().message();

    const uint64_t sparse_before = CounterValue("laopt.repr.sparse_ops");
    auto sparse_result = EvalExpression(src, EnvWith(sparse_));
    ASSERT_TRUE(sparse_result.ok()) << src;
    EXPECT_GT(CounterValue("laopt.repr.sparse_ops"), sparse_before)
        << src << ": sparse binding must dispatch at least one sparse kernel";

    const uint64_t compressed_before = CounterValue("laopt.repr.compressed_ops");
    auto compressed_result = EvalExpression(src, EnvWith(compressed_));
    ASSERT_TRUE(compressed_result.ok()) << src;
    EXPECT_GT(CounterValue("laopt.repr.compressed_ops"), compressed_before)
        << src << ": compressed binding must dispatch at least one compressed kernel";

    EXPECT_LE(MaxAbsDiff(*sparse_result, *dense_result), 1e-9) << src;
    EXPECT_LE(MaxAbsDiff(*compressed_result, *dense_result), 1e-9) << src;
  }
}

TEST_F(ReprParityTest, ElementwiseOpsDensifyWithFallbackCounter) {
  const uint64_t before = CounterValue("laopt.repr.densify_fallbacks");
  auto sparse_result = EvalExpression("X + X", EnvWith(sparse_));
  ASSERT_TRUE(sparse_result.ok());
  EXPECT_GT(CounterValue("laopt.repr.densify_fallbacks"), before)
      << "sparse operand of a dense-only op must be densified (and counted)";
  auto dense_result = EvalExpression("X + X", EnvWith(dense_));
  ASSERT_TRUE(dense_result.ok());
  EXPECT_LE(MaxAbsDiff(*sparse_result, *dense_result), 1e-12);
}

TEST_F(ReprParityTest, ExplainShowsRepresentationChoices) {
  auto sparse_plan = ParseExpression("t(X) %*% y", EnvWith(sparse_));
  ASSERT_TRUE(sparse_plan.ok());
  DagAnalysis analysis;
  std::string dump = analysis.Explain(*sparse_plan);
  EXPECT_NE(dump.find("repr sparse"), std::string::npos) << dump;

  auto compressed_plan = ParseExpression("X %*% w", EnvWith(compressed_));
  ASSERT_TRUE(compressed_plan.ok());
  DagAnalysis canalysis;
  std::string cdump = canalysis.Explain(*compressed_plan);
  EXPECT_NE(cdump.find("repr compressed"), std::string::npos) << cdump;
  EXPECT_NE(cdump.find("repr dense"), std::string::npos) << cdump;
}

TEST_F(ReprParityTest, NormalEquationsGlmAllThreeRepresentations) {
  ml::GlmConfig config;
  config.solver = ml::GlmSolver::kNormalEquations;
  config.l2 = 0.05;
  ThreadPool pool(3);

  ml::GlmModel dense_model, sparse_model, compressed_model;
  ASSERT_TRUE(ml::RunNormalEquationsOnOperand(Operand(dense_), *y_, config,
                                              &pool, &dense_model)
                  .ok());
  ASSERT_TRUE(ml::RunNormalEquationsOnOperand(Operand(sparse_), *y_, config,
                                              &pool, &sparse_model)
                  .ok());
  ASSERT_TRUE(ml::RunNormalEquationsOnOperand(Operand(compressed_), *y_,
                                              config, &pool, &compressed_model)
                  .ok());

  EXPECT_LE(MaxAbsDiff(sparse_model.weights, dense_model.weights), 1e-9);
  EXPECT_LE(MaxAbsDiff(compressed_model.weights, dense_model.weights), 1e-9);
  EXPECT_NEAR(sparse_model.intercept, dense_model.intercept, 1e-9);
  EXPECT_NEAR(compressed_model.intercept, dense_model.intercept, 1e-9);

  // The dense operand path is the ml::TrainGlm normal-equations solver.
  auto front_door = ml::TrainGlm(*dense_, *y_, config, &pool);
  ASSERT_TRUE(front_door.ok());
  EXPECT_LE(MaxAbsDiff(front_door->weights, dense_model.weights), 1e-12);
}

TEST_F(ReprParityTest, UnifiedKMeansTracksRepresentations) {
  ml::KMeansConfig config;
  config.k = 3;
  config.max_iters = 15;
  config.seed = 11;

  auto dense_model = ml::TrainKMeansOnOperand(Operand(dense_), config);
  auto sparse_model = ml::TrainKMeansOnOperand(Operand(sparse_), config);
  auto compressed_model = ml::TrainKMeansOnOperand(Operand(compressed_), config);
  ASSERT_TRUE(dense_model.ok());
  ASSERT_TRUE(sparse_model.ok());
  ASSERT_TRUE(compressed_model.ok());

  // Same seed, same math: the inertia trajectories must agree to fp noise.
  EXPECT_NEAR(sparse_model->inertia, dense_model->inertia,
              1e-6 * std::max(1.0, dense_model->inertia));
  EXPECT_NEAR(compressed_model->inertia, dense_model->inertia,
              1e-6 * std::max(1.0, dense_model->inertia));
}

TEST(BufferedExecutorBindTest, RebindAcrossShapesAndRepresentations) {
  // A shape-polymorphic plan: colSums over a leaf with unknown rows.
  auto leaf = *ExprNode::Placeholder(ExprNode::kUnknownDim, 4, "X");
  auto expr = *ExprNode::ColSums(leaf);
  BufferedExecutor executor;

  auto small = std::make_shared<DenseMatrix>(data::GaussianMatrix(10, 4, 21));
  auto big = std::make_shared<DenseMatrix>(data::GaussianMatrix(64, 4, 22));

  ASSERT_TRUE(executor.Bind(leaf, Operand(small)).ok());
  auto r1 = executor.Run(expr);
  ASSERT_TRUE(r1.ok());
  EXPECT_LE(MaxAbsDiff(**r1, la::ColumnSums(*small)), 1e-12);

  // Rebind to a different shape: buffers must be reshaped, not reused stale.
  ASSERT_TRUE(executor.Bind(leaf, Operand(big)).ok());
  auto r2 = executor.Run(expr);
  ASSERT_TRUE(r2.ok());
  EXPECT_LE(MaxAbsDiff(**r2, la::ColumnSums(*big)), 1e-12);

  // Rebind to a different representation (of partially-zeroed data).
  DenseMatrix zeroed = *big;
  for (size_t i = 0; i < zeroed.size(); i += 3) zeroed.data()[i] = 0.0;
  auto sparse = std::make_shared<SparseMatrix>(ToCsr(zeroed));
  ASSERT_TRUE(executor.Bind(leaf, Operand(sparse)).ok());
  auto r3 = executor.Run(expr);
  ASSERT_TRUE(r3.ok());
  EXPECT_LE(MaxAbsDiff(**r3, la::ColumnSums(sparse->ToDense())), 1e-12);

  // Steady state on a stable binding: repeated runs allocate nothing new.
  (void)executor.Run(expr);
  const uint64_t allocs = CounterValue("la.inplace.allocs");
  const uint64_t reuses = CounterValue("la.inplace.reuses");
  for (int i = 0; i < 4; ++i) {
    auto rerun = executor.Run(expr);
    ASSERT_TRUE(rerun.ok());
  }
  EXPECT_EQ(CounterValue("la.inplace.allocs"), allocs)
      << "repeated Run() on an unchanged binding must not allocate";
  EXPECT_GT(CounterValue("la.inplace.reuses"), reuses);
}

TEST(BufferedExecutorBindTest, BindValidatesLeafAndShape) {
  auto leaf = *ExprNode::Placeholder(8, 3, "X");
  auto expr = *ExprNode::ColSums(leaf);
  BufferedExecutor executor;
  auto m = std::make_shared<DenseMatrix>(8, 3);

  EXPECT_FALSE(executor.Bind(expr, Operand(m)).ok()) << "non-leaf bind";
  EXPECT_FALSE(executor.Bind(leaf, Operand()).ok()) << "unbound operand";
  auto wrong = std::make_shared<DenseMatrix>(9, 3);
  EXPECT_FALSE(executor.Bind(leaf, Operand(wrong)).ok()) << "shape mismatch";
  EXPECT_TRUE(executor.Bind(leaf, Operand(m)).ok());

  // An unbound placeholder without a Bind must fail, not crash.
  BufferedExecutor fresh;
  EXPECT_FALSE(fresh.Run(expr).ok());
}

TEST(ParserPoolRegressionTest, EvalExpressionRunsKernelsOnCallersPool) {
  // Regression: EvalExpression used to call OptimizeAndExecute without the
  // pool, silently serializing every parsed program. A pooled Gram over
  // enough rows must go through the parallel partial-reduction path.
  auto x = std::make_shared<DenseMatrix>(data::GaussianMatrix(4096, 8, 31));
  Environment env = {{"X", x}};
  ThreadPool pool(4);

  const uint64_t serial_before = CounterValue("la.parallel.reductions");
  auto serial = EvalExpression("t(X) %*% X", env);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(CounterValue("la.parallel.reductions"), serial_before)
      << "no pool, no parallel reduction";

  const uint64_t pooled_before = CounterValue("la.parallel.reductions");
  auto pooled = EvalExpression("t(X) %*% X", env, &pool);
  ASSERT_TRUE(pooled.ok());
  EXPECT_GT(CounterValue("la.parallel.reductions"), pooled_before)
      << "EvalExpression must thread the caller's pool to the kernels";
  EXPECT_LE(MaxAbsDiff(*pooled, *serial), 1e-9);
}

}  // namespace
}  // namespace dmml::laopt
