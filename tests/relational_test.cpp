// Tests for the relational operators: predicates, filter, project, hash
// join (inner/left-outer), group-by aggregates, order-by, union, limit.
#include <gtest/gtest.h>

#include "relational/operators.h"
#include "relational/predicate.h"
#include "storage/table.h"

namespace dmml::relational {
namespace {

using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

Table Employees() {
  Table t(Schema({{"id", DataType::kInt64, false},
                  {"dept", DataType::kString, true},
                  {"salary", DataType::kDouble, true}}));
  auto add = [&](int64_t id, const char* dept, double salary) {
    EXPECT_TRUE(t.AppendRow({id, std::string(dept), salary}).ok());
  };
  add(1, "eng", 100);
  add(2, "eng", 120);
  add(3, "sales", 80);
  add(4, "sales", 90);
  add(5, "hr", 70);
  return t;
}

Table Departments() {
  Table t(Schema({{"name", DataType::kString, false},
                  {"budget", DataType::kDouble, true}}));
  EXPECT_TRUE(t.AppendRow({std::string("eng"), 1000.0}).ok());
  EXPECT_TRUE(t.AppendRow({std::string("sales"), 500.0}).ok());
  // Note: no "hr" row -> hr employees drop out of inner joins.
  return t;
}

TEST(PredicateTest, CompareNumericOps) {
  Table t = Employees();
  auto ge = Compare("salary", CompareOp::kGe, 90.0);
  auto result = Filter(t, ge);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3u);

  auto eq = Compare("id", CompareOp::kEq, int64_t{3});
  EXPECT_EQ(Filter(t, eq)->num_rows(), 1u);
  auto ne = Compare("id", CompareOp::kNe, int64_t{3});
  EXPECT_EQ(Filter(t, ne)->num_rows(), 4u);
  auto lt = Compare("salary", CompareOp::kLt, 80.0);
  EXPECT_EQ(Filter(t, lt)->num_rows(), 1u);
  auto le = Compare("salary", CompareOp::kLe, 80.0);
  EXPECT_EQ(Filter(t, le)->num_rows(), 2u);
  auto gt = Compare("salary", CompareOp::kGt, 100.0);
  EXPECT_EQ(Filter(t, gt)->num_rows(), 1u);
}

TEST(PredicateTest, IntColumnComparedToDoubleLiteral) {
  Table t = Employees();
  auto p = Compare("id", CompareOp::kLe, 2.5);
  EXPECT_EQ(Filter(t, p)->num_rows(), 2u);
}

TEST(PredicateTest, StringCompare) {
  Table t = Employees();
  auto p = Compare("dept", CompareOp::kEq, std::string("eng"));
  EXPECT_EQ(Filter(t, p)->num_rows(), 2u);
}

TEST(PredicateTest, AndOrNot) {
  Table t = Employees();
  auto eng = Compare("dept", CompareOp::kEq, std::string("eng"));
  auto rich = Compare("salary", CompareOp::kGt, 100.0);
  EXPECT_EQ(Filter(t, And(eng, rich))->num_rows(), 1u);
  EXPECT_EQ(Filter(t, Or(eng, rich))->num_rows(), 2u);
  EXPECT_EQ(Filter(t, Not(eng))->num_rows(), 3u);
}

TEST(PredicateTest, NullComparisonsAreFalse) {
  Table t(Schema({{"v", DataType::kDouble, true}}));
  ASSERT_TRUE(t.AppendRow({1.0}).ok());
  ASSERT_TRUE(t.AppendRow({std::monostate{}}).ok());
  auto p = Compare("v", CompareOp::kGe, 0.0);
  EXPECT_EQ(Filter(t, p)->num_rows(), 1u);
  // NOT of a NULL comparison stays false-side: NULL row is *included* by Not
  // only under two-valued collapse; our semantics: Evaluate returned false,
  // so Not -> true. Document the chosen two-valued behaviour:
  EXPECT_EQ(Filter(t, Not(p))->num_rows(), 1u);
  EXPECT_EQ(Filter(t, IsNull("v"))->num_rows(), 1u);
  EXPECT_EQ(Filter(t, Not(IsNull("v")))->num_rows(), 1u);
}

TEST(PredicateTest, UnknownColumnIsError) {
  Table t = Employees();
  auto p = Compare("ghost", CompareOp::kEq, 1.0);
  EXPECT_FALSE(Filter(t, p).ok());
}

TEST(ProjectTest, ReordersAndDrops) {
  Table t = Employees();
  auto result = Project(t, {"salary", "id"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().num_fields(), 2u);
  EXPECT_EQ(result->schema().field(0).name, "salary");
  EXPECT_DOUBLE_EQ(std::get<double>(result->GetRow(0)[0]), 100.0);
  EXPECT_FALSE(Project(t, {"nope"}).ok());
}

TEST(HashJoinTest, InnerJoinOnStringKey) {
  auto result = HashJoin(Employees(), Departments(), "dept", "name");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 4u);  // hr has no match.
  // Joined schema carries both sides.
  EXPECT_TRUE(result->schema().FieldIndex("budget").has_value());
  EXPECT_TRUE(result->schema().FieldIndex("salary").has_value());
}

TEST(HashJoinTest, LeftOuterPadsWithNulls) {
  JoinOptions options;
  options.type = JoinType::kLeftOuter;
  auto result = HashJoin(Employees(), Departments(), "dept", "name", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 5u);
  // The hr row has NULL budget.
  bool found_null = false;
  auto budget_idx = *result->schema().FieldIndex("budget");
  for (size_t i = 0; i < result->num_rows(); ++i) {
    if (!result->column(budget_idx).IsValid(i)) found_null = true;
  }
  EXPECT_TRUE(found_null);
}

TEST(HashJoinTest, DuplicateBuildKeysFanOut) {
  Table left(Schema({{"k", DataType::kInt64, false}}));
  ASSERT_TRUE(left.AppendRow({int64_t{1}}).ok());
  Table right(Schema({{"k2", DataType::kInt64, false},
                      {"v", DataType::kDouble, true}}));
  ASSERT_TRUE(right.AppendRow({int64_t{1}, 10.0}).ok());
  ASSERT_TRUE(right.AppendRow({int64_t{1}, 20.0}).ok());
  auto result = HashJoin(left, right, "k", "k2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  Table left(Schema({{"k", DataType::kInt64, true}}));
  ASSERT_TRUE(left.AppendRow({std::monostate{}}).ok());
  Table right(Schema({{"k2", DataType::kInt64, true}}));
  ASSERT_TRUE(right.AppendRow({std::monostate{}}).ok());
  auto result = HashJoin(left, right, "k", "k2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST(HashJoinTest, KeyTypeMismatchIsError) {
  auto result = HashJoin(Employees(), Departments(), "id", "name");
  EXPECT_FALSE(result.ok());
}

TEST(HashJoinTest, DoubleKeyRejected) {
  auto result = HashJoin(Employees(), Employees(), "salary", "salary");
  EXPECT_FALSE(result.ok());
}

TEST(HashJoinTest, ClashPrefixApplied) {
  auto result = HashJoin(Employees(), Employees(), "id", "id");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->schema().FieldIndex("r_id").has_value());
  EXPECT_TRUE(result->schema().FieldIndex("r_salary").has_value());
}

TEST(GroupByTest, CountSumAvgMinMax) {
  auto result = GroupBy(Employees(), {"dept"},
                        {{AggFunc::kCount, "", "n"},
                         {AggFunc::kSum, "salary", "total"},
                         {AggFunc::kAvg, "salary", "avg"},
                         {AggFunc::kMin, "salary", "lo"},
                         {AggFunc::kMax, "salary", "hi"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3u);
  // Find the eng group.
  auto dept_idx = *result->schema().FieldIndex("dept");
  for (size_t i = 0; i < result->num_rows(); ++i) {
    if (result->column(dept_idx).GetString(i) != "eng") continue;
    auto row = result->GetRow(i);
    EXPECT_EQ(std::get<int64_t>(row[1]), 2);
    EXPECT_DOUBLE_EQ(std::get<double>(row[2]), 220.0);
    EXPECT_DOUBLE_EQ(std::get<double>(row[3]), 110.0);
    EXPECT_DOUBLE_EQ(std::get<double>(row[4]), 100.0);
    EXPECT_DOUBLE_EQ(std::get<double>(row[5]), 120.0);
  }
}

TEST(GroupByTest, NullsSkippedInAggregatesButCounted) {
  Table t(Schema({{"g", DataType::kInt64, false}, {"v", DataType::kDouble, true}}));
  ASSERT_TRUE(t.AppendRow({int64_t{1}, 5.0}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::monostate{}}).ok());
  auto result = GroupBy(t, {"g"},
                        {{AggFunc::kCount, "", "n"}, {AggFunc::kAvg, "v", "avg"}});
  ASSERT_TRUE(result.ok());
  auto row = result->GetRow(0);
  EXPECT_EQ(std::get<int64_t>(row[1]), 2);       // COUNT counts NULL rows.
  EXPECT_DOUBLE_EQ(std::get<double>(row[2]), 5.0);  // AVG skips NULLs.
}

TEST(GroupByTest, AllNullGroupYieldsNullAggregate) {
  Table t(Schema({{"g", DataType::kInt64, false}, {"v", DataType::kDouble, true}}));
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::monostate{}}).ok());
  auto result = GroupBy(t, {"g"}, {{AggFunc::kSum, "v", "s"}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::holds_alternative<std::monostate>(result->GetRow(0)[1]));
}

TEST(GroupByTest, StringAggregateRejected) {
  auto result = GroupBy(Employees(), {"dept"}, {{AggFunc::kSum, "dept", "s"}});
  EXPECT_FALSE(result.ok());
}

TEST(GroupByTest, MultiKeyGrouping) {
  Table t(Schema({{"a", DataType::kInt64, false},
                  {"b", DataType::kInt64, false},
                  {"v", DataType::kDouble, true}}));
  ASSERT_TRUE(t.AppendRow({int64_t{1}, int64_t{1}, 1.0}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, int64_t{2}, 2.0}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, int64_t{1}, 3.0}).ok());
  auto result = GroupBy(t, {"a", "b"}, {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(OrderByTest, SortsAscendingAndDescending) {
  auto asc = OrderBy(Employees(), "salary");
  ASSERT_TRUE(asc.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(asc->GetRow(0)[2]), 70.0);
  EXPECT_DOUBLE_EQ(std::get<double>(asc->GetRow(4)[2]), 120.0);
  auto desc = OrderBy(Employees(), "salary", false);
  ASSERT_TRUE(desc.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(desc->GetRow(0)[2]), 120.0);
}

TEST(OrderByTest, NullsFirst) {
  Table t(Schema({{"v", DataType::kDouble, true}}));
  ASSERT_TRUE(t.AppendRow({2.0}).ok());
  ASSERT_TRUE(t.AppendRow({std::monostate{}}).ok());
  ASSERT_TRUE(t.AppendRow({1.0}).ok());
  auto result = OrderBy(t, "v");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::holds_alternative<std::monostate>(result->GetRow(0)[0]));
  EXPECT_DOUBLE_EQ(std::get<double>(result->GetRow(1)[0]), 1.0);
}

TEST(UnionTest, ConcatenatesMatchingSchemas) {
  auto u = Union(Employees(), Employees());
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_rows(), 10u);
  EXPECT_FALSE(Union(Employees(), Departments()).ok());
}

TEST(LimitTest, TruncatesAndHandlesOverrun) {
  EXPECT_EQ(Limit(Employees(), 2).num_rows(), 2u);
  EXPECT_EQ(Limit(Employees(), 100).num_rows(), 5u);
  EXPECT_EQ(Limit(Employees(), 0).num_rows(), 0u);
}

TEST(PipelineTest, FilterJoinAggregateEndToEnd) {
  // Average salary by department budget bracket for employees earning >= 80.
  auto filtered = Filter(Employees(), Compare("salary", CompareOp::kGe, 80.0));
  ASSERT_TRUE(filtered.ok());
  auto joined = HashJoin(*filtered, Departments(), "dept", "name");
  ASSERT_TRUE(joined.ok());
  auto grouped = GroupBy(*joined, {"dept"}, {{AggFunc::kAvg, "salary", "avg_salary"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->num_rows(), 2u);  // eng and sales; hr filtered by join.
}

}  // namespace
}  // namespace dmml::relational
