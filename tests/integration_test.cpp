// Cross-module integration tests: end-to-end flows stitching the relational
// engine, the factorized learner, CLA, the LA optimizer, model selection and
// the parameter server together — the way a downstream user would.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "factorized/factorized_glm.h"
#include "factorized/normalized_matrix.h"
#include "la/kernels.h"
#include "laopt/executor.h"
#include "laopt/optimizer.h"
#include "ml/metrics.h"
#include "modelsel/model_selection.h"
#include "ps/parameter_server.h"
#include "relational/operators.h"

namespace dmml {
namespace {

using la::DenseMatrix;

// End-to-end: relational join of the star schema == matrix materialization,
// and a model trained on the join output performs like the factorized one.
TEST(IntegrationTest, RelationalJoinFeedsTraining) {
  data::StarSchemaOptions options;
  options.ns = 300;
  options.nr = 20;
  options.ds = 2;
  options.dr = 4;
  auto ds = data::MakeStarSchema(options, 1);

  // SQL-ish path: S JOIN R ON fk = rid, project features, pull the matrix.
  auto joined = relational::HashJoin(ds.s, ds.r, "fk", "rid");
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->num_rows(), 300u);
  std::vector<std::string> feature_cols = {"xs0", "xs1", "xr0", "xr1", "xr2", "xr3"};
  auto x_rel = joined->ToMatrix(feature_cols);
  ASSERT_TRUE(x_rel.ok());
  auto y_rel = joined->ToMatrix({"y"});
  ASSERT_TRUE(y_rel.ok());

  // The join output must match the matrix-level materialization row-for-row
  // (hash join preserves left order for PK-FK joins).
  auto nm = *factorized::NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});
  EXPECT_TRUE(x_rel->ApproxEquals(nm.Materialize(), 1e-12));

  // Training on the relational output == training on the factorized form.
  ml::GlmConfig config;
  config.max_epochs = 100;
  config.learning_rate = 0.05;
  auto from_sql = factorized::TrainDenseGlmMatrixForm(*x_rel, *y_rel, config);
  auto from_factorized = factorized::TrainFactorizedGlm(nm, ds.y, config);
  ASSERT_TRUE(from_sql.ok());
  ASSERT_TRUE(from_factorized.ok());
  EXPECT_TRUE(from_sql->weights.ApproxEquals(from_factorized->weights, 1e-7));
}

// CLA path: compress the design matrix, run the gradient iteration on the
// compressed data, and match the dense-trained model.
TEST(IntegrationTest, GradientDescentOnCompressedMatrix) {
  auto x = data::LowCardinalityMatrix(400, 6, 6, false, 2);
  Rng rng(3);
  DenseMatrix w_true(6, 1);
  for (size_t j = 0; j < 6; ++j) w_true.At(j, 0) = rng.Normal();
  DenseMatrix y = la::Gemv(x, w_true);

  auto cm = cla::CompressedMatrix::Compress(x);
  ASSERT_GT(cm.CompressionRatio(), 1.0);

  // Manual batch GD using only compressed ops.
  DenseMatrix w(6, 1);
  const double lr = 0.05;
  const double inv_n = 1.0 / 400.0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    auto scores = cm.MultiplyVector(w);
    ASSERT_TRUE(scores.ok());
    DenseMatrix residual = la::Subtract(*scores, y);
    auto grad = cm.VectorMultiply(residual);
    ASSERT_TRUE(grad.ok());
    for (size_t j = 0; j < 6; ++j) w.At(j, 0) -= lr * grad->At(0, j) * inv_n;
  }
  EXPECT_TRUE(w.ApproxEquals(w_true, 1e-3));
}

// LA optimizer path: the normal-equations expression evaluated through the
// DAG (with chain reordering) equals the direct kernel computation.
TEST(IntegrationTest, OptimizerPipelineComputesGramVector) {
  auto x = data::GaussianMatrix(150, 8, 4);
  auto v = data::GaussianMatrix(150, 1, 5);
  auto ex = *laopt::ExprNode::Input(std::make_shared<DenseMatrix>(x), "X");
  auto ev = *laopt::ExprNode::Input(std::make_shared<DenseMatrix>(v), "v");
  // t(X) * X * t(t(X)) ... keep it meaningful: g = t(X) * (X * (t(X) * v)).
  auto expr = *laopt::ExprNode::MatMul(
      *laopt::ExprNode::Transpose(ex),
      *laopt::ExprNode::MatMul(
          ex, *laopt::ExprNode::MatMul(*laopt::ExprNode::Transpose(ex), ev)));
  auto result = laopt::OptimizeAndExecute(expr);
  ASSERT_TRUE(result.ok());
  auto xt = la::Transpose(x);
  auto expected = la::Multiply(xt, la::Multiply(x, la::Multiply(xt, v)));
  EXPECT_TRUE(result->ApproxEquals(expected, 1e-7));
}

// Model-selection over a relationally-produced dataset, then validate the
// winner with the parameter server across all consistency modes.
TEST(IntegrationTest, GridSearchThenParameterServer) {
  auto ds = data::MakeClassification(400, 4, 0.05, 6);
  modelsel::GridSpec grid;
  grid.base.family = ml::GlmFamily::kBinomial;
  grid.base.max_epochs = 40;
  grid.base.tolerance = 0;
  grid.learning_rates = {0.01, 0.3};
  grid.l2_penalties = {0.0, 0.01};
  auto search = modelsel::GridSearchBatched(ds.x, ds.y, grid, 3, 7);
  ASSERT_TRUE(search.ok());
  const auto& best = search->scores[search->best_index].config;

  ps::PsConfig ps_config;
  ps_config.family = ml::GlmFamily::kBinomial;
  ps_config.learning_rate = best.learning_rate;
  ps_config.l2 = best.l2;
  ps_config.epochs = 30;
  ps_config.num_workers = 2;
  for (auto mode : {ps::ConsistencyMode::kBsp, ps::ConsistencyMode::kAsync,
                    ps::ConsistencyMode::kSsp}) {
    ps_config.mode = mode;
    auto result = ps::TrainGlmParameterServer(ds.x, ds.y, ps_config);
    ASSERT_TRUE(result.ok());
    auto labels = result->model.PredictLabels(ds.x);
    EXPECT_GT(*ml::Accuracy(ds.y, *labels), 0.8)
        << ps::ConsistencyModeName(mode);
  }
}

// Star schema -> relational aggregates: COUNT per rid equals FK histogram.
TEST(IntegrationTest, RelationalAggregatesMatchGeneratorStats) {
  data::StarSchemaOptions options;
  options.ns = 500;
  options.nr = 10;
  auto ds = data::MakeStarSchema(options, 8);
  auto counts = relational::GroupBy(
      ds.s, {"fk"}, {{relational::AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts->num_rows(), 10u);

  std::map<int64_t, int64_t> histogram;
  for (uint32_t key : ds.fk) histogram[key]++;
  auto fk_idx = *counts->schema().FieldIndex("fk");
  auto n_idx = *counts->schema().FieldIndex("n");
  for (size_t i = 0; i < counts->num_rows(); ++i) {
    int64_t key = counts->column(fk_idx).GetInt64(i);
    EXPECT_EQ(counts->column(n_idx).GetInt64(i), histogram[key]);
  }
}

// Compressed + factorized together: compress the attribute table's features
// (low-cardinality dimension data), decompress and verify factorized ops
// still agree — a data-lake-ish flow.
TEST(IntegrationTest, CompressedDimensionTableRoundTrip) {
  data::StarSchemaOptions options;
  options.ns = 200;
  options.nr = 40;
  options.ds = 1;
  options.dr = 3;
  auto ds = data::MakeStarSchema(options, 9);
  // Quantize dimension features to create compressible data.
  DenseMatrix xr_quant(ds.xr.rows(), ds.xr.cols());
  for (size_t i = 0; i < ds.xr.size(); ++i) {
    xr_quant.data()[i] = std::round(ds.xr.data()[i] * 2) / 2.0;
  }
  auto cm = cla::CompressedMatrix::Compress(xr_quant);
  EXPECT_TRUE(cm.Decompress() == xr_quant);

  auto nm = *factorized::NormalizedMatrix::Make(ds.xs, {{cm.Decompress(), ds.fk}});
  auto v = data::GaussianMatrix(nm.cols(), 1, 10);
  EXPECT_TRUE(nm.Multiply(v)->ApproxEquals(la::Gemv(nm.Materialize(), v), 1e-9));
}

}  // namespace
}  // namespace dmml
