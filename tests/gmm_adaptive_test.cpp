// Tests for Gaussian mixture models (EM) and adaptive GLM solvers
// (Adagrad / Adam).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "data/generators.h"
#include "la/kernels.h"
#include "ml/glm.h"
#include "ml/gmm.h"
#include "ml/metrics.h"

namespace dmml::ml {
namespace {

using la::DenseMatrix;

// --------------------------------------------------------------------------
// GMM
// --------------------------------------------------------------------------

TEST(GmmTest, RecoversWellSeparatedMixture) {
  auto blobs = data::MakeBlobs(600, 2, 3, 20.0, 0.8, 1);
  GmmConfig config;
  config.num_components = 3;
  config.seed = 2;
  auto model = TrainGmm(blobs.x, config);
  ASSERT_TRUE(model.ok());
  auto pred = *model->Predict(blobs.x);
  // Cluster purity against planted labels.
  for (size_t c = 0; c < 3; ++c) {
    std::map<int, int> votes;
    for (size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == static_cast<int>(c)) votes[blobs.labels[i]]++;
    }
    int total = 0, best = 0;
    for (auto& [_, v] : votes) {
      total += v;
      best = std::max(best, v);
    }
    if (total > 0) {
      EXPECT_GT(static_cast<double>(best) / total, 0.95);
    }
  }
  // Mixing weights near the balanced truth.
  for (double w : model->weights) EXPECT_NEAR(w, 1.0 / 3.0, 0.1);
}

TEST(GmmTest, LogLikelihoodNonDecreasing) {
  auto blobs = data::MakeBlobs(300, 3, 4, 6.0, 1.2, 3);
  GmmConfig config;
  config.num_components = 4;
  config.tolerance = 0;
  config.max_iters = 40;
  auto model = TrainGmm(blobs.x, config);
  ASSERT_TRUE(model.ok());
  for (size_t i = 1; i < model->log_likelihood_history.size(); ++i) {
    EXPECT_GE(model->log_likelihood_history[i],
              model->log_likelihood_history[i - 1] - 1e-8);
  }
}

TEST(GmmTest, ResponsibilitiesSumToOne) {
  auto blobs = data::MakeBlobs(150, 2, 2, 8.0, 1.0, 4);
  GmmConfig config;
  config.num_components = 2;
  auto model = TrainGmm(blobs.x, config);
  ASSERT_TRUE(model.ok());
  auto resp = *model->PredictProba(blobs.x);
  for (size_t i = 0; i < resp.rows(); ++i) {
    double total = 0;
    for (size_t c = 0; c < resp.cols(); ++c) {
      EXPECT_GE(resp.At(i, c), 0.0);
      total += resp.At(i, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(GmmTest, ScoreSamplesPrefersInDistributionData) {
  auto blobs = data::MakeBlobs(400, 2, 2, 10.0, 0.5, 5);
  GmmConfig config;
  config.num_components = 2;
  auto model = TrainGmm(blobs.x, config);
  ASSERT_TRUE(model.ok());
  double in_dist = *model->ScoreSamples(blobs.x);
  // Far-away outliers score much lower.
  DenseMatrix outliers(10, 2, 500.0);
  double out_dist = *model->ScoreSamples(outliers);
  EXPECT_GT(in_dist, out_dist + 100.0);
}

TEST(GmmTest, SingleComponentMatchesSampleMoments) {
  auto x = data::GaussianMatrix(2000, 2, 6);
  GmmConfig config;
  config.num_components = 1;
  config.max_iters = 5;
  auto model = TrainGmm(x, config);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->means.At(0, 0), 0.0, 0.1);
  EXPECT_NEAR(model->variances.At(0, 0), 1.0, 0.1);
  EXPECT_DOUBLE_EQ(model->weights[0], 1.0);
}

TEST(GmmTest, Validation) {
  GmmConfig config;
  EXPECT_FALSE(TrainGmm(DenseMatrix(0, 2), config).ok());
  config.num_components = 0;
  EXPECT_FALSE(TrainGmm(DenseMatrix(5, 2), config).ok());
  config.num_components = 10;
  EXPECT_FALSE(TrainGmm(DenseMatrix(5, 2), config).ok());
  config = GmmConfig{};
  config.var_floor = 0;
  EXPECT_FALSE(TrainGmm(DenseMatrix(5, 2), config).ok());
  config = GmmConfig{};
  config.num_components = 2;
  auto model = TrainGmm(data::GaussianMatrix(20, 2, 7), config);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Predict(DenseMatrix(3, 5)).ok());
  EXPECT_FALSE(model->ScoreSamples(DenseMatrix(3, 5)).ok());
}

// --------------------------------------------------------------------------
// Adaptive solvers
// --------------------------------------------------------------------------

// Badly scaled features: plain SGD struggles without per-feature tuning;
// adaptive methods equalize the effective step sizes.
data::RegressionDataset BadlyScaled(uint64_t seed) {
  auto ds = data::MakeRegression(600, 6, 0.05, seed);
  for (size_t i = 0; i < ds.x.rows(); ++i) {
    ds.x.At(i, 0) *= 100.0;  // One huge feature...
    ds.x.At(i, 1) *= 0.01;   // ...and one tiny one.
  }
  // Recompute labels for the scaled features.
  ds.y = la::Gemv(ds.x, ds.true_w);
  return ds;
}

class AdaptiveSolverTest : public ::testing::TestWithParam<GlmSolver> {};

TEST_P(AdaptiveSolverTest, HandlesBadlyScaledFeatures) {
  auto ds = BadlyScaled(8);
  GlmConfig config;
  config.solver = GetParam();
  config.learning_rate = 0.5;
  config.max_epochs = 200;
  config.batch_size = 32;
  config.tolerance = 0;
  auto model = TrainGlm(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  auto pred = *model->Predict(ds.x);
  EXPECT_GT(*R2(ds.y, pred), 0.95) << "solver " << static_cast<int>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Adaptive, AdaptiveSolverTest,
                         ::testing::Values(GlmSolver::kAdagrad, GlmSolver::kAdam));

TEST(AdaptiveSolverTest, AdamBeatsPlainSgdOnBadScaling) {
  auto ds = BadlyScaled(9);
  GlmConfig adam;
  adam.solver = GlmSolver::kAdam;
  adam.learning_rate = 0.5;
  adam.max_epochs = 100;
  adam.tolerance = 0;
  auto adam_model = TrainGlm(ds.x, ds.y, adam);
  ASSERT_TRUE(adam_model.ok());

  GlmConfig sgd = adam;
  sgd.solver = GlmSolver::kMiniBatchSgd;
  // Any usable global lr is hostage to the 100x feature: with lr small
  // enough not to diverge, the tiny feature barely learns.
  sgd.learning_rate = 1e-5;
  auto sgd_model = TrainGlm(ds.x, ds.y, sgd);
  ASSERT_TRUE(sgd_model.ok());
  EXPECT_LT(adam_model->loss_history.back(), sgd_model->loss_history.back());
}

TEST(AdaptiveSolverTest, LogisticFamilyWorks) {
  auto ds = data::MakeClassification(500, 5, 0.05, 10);
  GlmConfig config;
  config.solver = GlmSolver::kAdam;
  config.family = GlmFamily::kBinomial;
  config.learning_rate = 0.05;
  config.max_epochs = 40;
  auto model = TrainGlm(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  auto labels = *model->PredictLabels(ds.x);
  EXPECT_GT(*Accuracy(ds.y, labels), 0.85);
}

TEST(AdaptiveSolverTest, DeterministicGivenSeed) {
  auto ds = data::MakeRegression(200, 4, 0.1, 11);
  GlmConfig config;
  config.solver = GlmSolver::kAdagrad;
  config.max_epochs = 10;
  config.seed = 77;
  auto a = TrainGlm(ds.x, ds.y, config);
  auto b = TrainGlm(ds.x, ds.y, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->weights == b->weights);
}

}  // namespace
}  // namespace dmml::ml
