// Tests for the synthetic data generators: determinism, shapes, and the
// statistical/structural properties each downstream experiment relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "data/generators.h"
#include "la/kernels.h"

namespace dmml::data {
namespace {

TEST(GeneratorsTest, GaussianDeterministicAndShaped) {
  auto a = GaussianMatrix(10, 7, 42);
  auto b = GaussianMatrix(10, 7, 42);
  auto c = GaussianMatrix(10, 7, 43);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.rows(), 10u);
  EXPECT_EQ(a.cols(), 7u);
}

TEST(GeneratorsTest, GaussianMoments) {
  auto m = GaussianMatrix(200, 100, 1);
  double mean = la::Sum(m) / static_cast<double>(m.size());
  EXPECT_NEAR(mean, 0.0, 0.02);
  double var = 0;
  for (size_t i = 0; i < m.size(); ++i) var += m.data()[i] * m.data()[i];
  EXPECT_NEAR(var / static_cast<double>(m.size()), 1.0, 0.05);
}

TEST(GeneratorsTest, UniformBounds) {
  auto m = UniformMatrix(100, 10, -2.0, 3.0, 2);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -2.0);
    EXPECT_LT(m.data()[i], 3.0);
  }
}

TEST(GeneratorsTest, SparseDensityApproximate) {
  auto m = SparseGaussianMatrix(200, 100, 0.1, 3);
  EXPECT_NEAR(m.Density(), 0.1, 0.02);
  EXPECT_EQ(m.rows(), 200u);
  EXPECT_EQ(m.cols(), 100u);
}

TEST(GeneratorsTest, LowCardinalityHonorsCardinality) {
  auto m = LowCardinalityMatrix(1000, 3, 7, false, 4);
  for (size_t c = 0; c < 3; ++c) {
    std::set<double> distinct;
    for (size_t r = 0; r < m.rows(); ++r) distinct.insert(m.At(r, c));
    EXPECT_LE(distinct.size(), 7u);
    EXPECT_GE(distinct.size(), 5u);  // Nearly all dictionary values used.
  }
}

TEST(GeneratorsTest, RunSortedProducesFewRuns) {
  auto m = LowCardinalityMatrix(1000, 1, 5, true, 5);
  size_t runs = 1;
  for (size_t r = 1; r < m.rows(); ++r) {
    if (m.At(r, 0) != m.At(r - 1, 0)) ++runs;
  }
  EXPECT_LE(runs, 5u);
}

TEST(GeneratorsTest, SkewedCardinalityIsSkewed) {
  auto m = SkewedCardinalityMatrix(5000, 1, 50, 1.5, 6);
  std::map<double, int> counts;
  for (size_t r = 0; r < m.rows(); ++r) counts[m.At(r, 0)]++;
  int max_count = 0;
  for (auto& [_, c] : counts) max_count = std::max(max_count, c);
  // The top value should dominate under heavy skew.
  EXPECT_GT(max_count, 1500);
}

TEST(GeneratorsTest, RegressionLabelsFollowModel) {
  auto ds = MakeRegression(500, 6, 0.01, 7);
  auto clean = la::Gemv(ds.x, ds.true_w);
  double max_dev = 0;
  for (size_t i = 0; i < 500; ++i) {
    max_dev = std::max(max_dev, std::fabs(clean.At(i, 0) - ds.y.At(i, 0)));
  }
  EXPECT_LT(max_dev, 0.1);  // ~N(0, 0.01) noise.
}

TEST(GeneratorsTest, ClassificationLabelsAreBinaryAndBalancedish) {
  auto ds = MakeClassification(1000, 4, 0.0, 8);
  size_t pos = 0;
  for (size_t i = 0; i < 1000; ++i) {
    double v = ds.y.At(i, 0);
    ASSERT_TRUE(v == 0.0 || v == 1.0);
    pos += v == 1.0;
  }
  EXPECT_GT(pos, 200u);
  EXPECT_LT(pos, 800u);
}

TEST(GeneratorsTest, FlipProbAddsNoise) {
  auto clean = MakeClassification(2000, 4, 0.0, 9);
  auto noisy = MakeClassification(2000, 4, 0.4, 9);
  size_t diffs = 0;
  for (size_t i = 0; i < 2000; ++i) {
    diffs += clean.y.At(i, 0) != noisy.y.At(i, 0);
  }
  EXPECT_NEAR(static_cast<double>(diffs) / 2000.0, 0.4, 0.05);
}

TEST(GeneratorsTest, BlobsClusterAroundCenters) {
  auto blobs = MakeBlobs(300, 4, 3, 50.0, 0.5, 10);
  EXPECT_EQ(blobs.x.rows(), 300u);
  EXPECT_EQ(blobs.centers.rows(), 3u);
  for (size_t i = 0; i < 300; ++i) {
    size_t c = static_cast<size_t>(blobs.labels[i]);
    double d = la::RowSquaredDistance(blobs.x, i, blobs.centers, c);
    EXPECT_LT(d, 4.0 * 4 * 0.5 * 0.5 * 16);  // Loose sanity bound.
  }
}

TEST(StarSchemaTest, ShapesAndKeyRanges) {
  StarSchemaOptions options;
  options.ns = 120;
  options.nr = 30;
  options.ds = 2;
  options.dr = 4;
  auto ds = MakeStarSchema(options, 11);
  EXPECT_EQ(ds.xs.rows(), 120u);
  EXPECT_EQ(ds.xs.cols(), 2u);
  EXPECT_EQ(ds.xr.rows(), 30u);
  EXPECT_EQ(ds.xr.cols(), 4u);
  EXPECT_EQ(ds.fk.size(), 120u);
  for (uint32_t key : ds.fk) EXPECT_LT(key, 30u);
  // Every rid is referenced at least once (keys are cycled first).
  std::unordered_set<uint32_t> used(ds.fk.begin(), ds.fk.end());
  EXPECT_EQ(used.size(), 30u);
}

TEST(StarSchemaTest, RelationalTablesMirrorMatrices) {
  StarSchemaOptions options;
  options.ns = 50;
  options.nr = 10;
  options.ds = 2;
  options.dr = 3;
  auto ds = MakeStarSchema(options, 12);
  EXPECT_EQ(ds.s.num_rows(), 50u);
  EXPECT_EQ(ds.s.schema().num_fields(), 3u + 2u);  // sid, fk, y + xs.
  EXPECT_EQ(ds.r.num_rows(), 10u);
  EXPECT_EQ(ds.r.schema().num_fields(), 1u + 3u);  // rid + xr.

  // Spot-check that table cells match the matrix views.
  auto xs0 = ds.s.ToMatrix({"xs0"});
  ASSERT_TRUE(xs0.ok());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(xs0->At(i, 0), ds.xs.At(i, 0));
  }
  auto fk_col = ds.s.ToMatrix({"fk"});
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(fk_col->At(i, 0), static_cast<double>(ds.fk[i]));
  }
}

TEST(StarSchemaTest, MaterializeLayout) {
  StarSchemaOptions options;
  options.ns = 20;
  options.nr = 4;
  options.ds = 1;
  options.dr = 2;
  auto ds = MakeStarSchema(options, 13);
  auto mat = MaterializeStarSchema(ds);
  EXPECT_EQ(mat.rows(), 20u);
  EXPECT_EQ(mat.cols(), 3u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(mat.At(i, 0), ds.xs.At(i, 0));
    EXPECT_DOUBLE_EQ(mat.At(i, 1), ds.xr.At(ds.fk[i], 0));
    EXPECT_DOUBLE_EQ(mat.At(i, 2), ds.xr.At(ds.fk[i], 1));
  }
}

TEST(StarSchemaTest, ClassificationLabels) {
  StarSchemaOptions options;
  options.ns = 200;
  options.nr = 10;
  options.classification = true;
  auto ds = MakeStarSchema(options, 14);
  for (size_t i = 0; i < 200; ++i) {
    double v = ds.y.At(i, 0);
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(StarSchemaTest, ZipfSkewConcentratesKeys) {
  StarSchemaOptions options;
  options.ns = 5000;
  options.nr = 100;
  options.fk_zipf_skew = 1.5;
  auto ds = MakeStarSchema(options, 15);
  std::vector<int> counts(100, 0);
  for (uint32_t key : ds.fk) counts[key]++;
  int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(max_count, 500);  // Heavy head under skew 1.5.
}

TEST(StarSchemaTest, Deterministic) {
  StarSchemaOptions options;
  options.ns = 30;
  options.nr = 5;
  auto a = MakeStarSchema(options, 99);
  auto b = MakeStarSchema(options, 99);
  EXPECT_TRUE(a.xs == b.xs);
  EXPECT_TRUE(a.xr == b.xr);
  EXPECT_EQ(a.fk, b.fk);
  EXPECT_TRUE(a.y == b.y);
}

}  // namespace
}  // namespace dmml::data
