// Tests for GLM training: every solver converges and recovers planted
// weights, families validate labels, predictions behave, L2 shrinks weights.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "la/kernels.h"
#include "ml/glm.h"
#include "ml/metrics.h"

namespace dmml::ml {
namespace {

using la::DenseMatrix;

GlmConfig LinRegConfig(GlmSolver solver) {
  GlmConfig c;
  c.family = GlmFamily::kGaussian;
  c.solver = solver;
  c.learning_rate = 0.05;
  c.max_epochs = 400;
  c.tolerance = 1e-12;
  return c;
}

TEST(GlmTest, NormalEquationsRecoverExactWeights) {
  auto ds = data::MakeRegression(300, 5, /*noise_sigma=*/0.0, 1);
  GlmConfig config = LinRegConfig(GlmSolver::kNormalEquations);
  auto model = TrainGlm(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->weights.ApproxEquals(ds.true_w, 1e-8));
  EXPECT_NEAR(model->intercept, 0.0, 1e-8);
}

TEST(GlmTest, NormalEquationsWithoutIntercept) {
  auto ds = data::MakeRegression(200, 4, 0.0, 2);
  GlmConfig config = LinRegConfig(GlmSolver::kNormalEquations);
  config.fit_intercept = false;
  auto model = TrainGlm(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->weights.ApproxEquals(ds.true_w, 1e-8));
  EXPECT_EQ(model->intercept, 0.0);
}

TEST(GlmTest, RidgeShrinksWeights) {
  auto ds = data::MakeRegression(100, 6, 0.1, 3);
  GlmConfig plain = LinRegConfig(GlmSolver::kNormalEquations);
  GlmConfig ridge = plain;
  ridge.l2 = 1.0;
  auto m0 = TrainGlm(ds.x, ds.y, plain);
  auto m1 = TrainGlm(ds.x, ds.y, ridge);
  ASSERT_TRUE(m0.ok());
  ASSERT_TRUE(m1.ok());
  EXPECT_LT(la::FrobeniusNorm(m1->weights), la::FrobeniusNorm(m0->weights));
}

// All iterative solvers should approach the closed-form solution on a
// well-conditioned regression problem.
class GlmSolverConvergence : public ::testing::TestWithParam<GlmSolver> {};

TEST_P(GlmSolverConvergence, ApproachesClosedForm) {
  auto ds = data::MakeRegression(400, 4, 0.05, 4);
  GlmConfig exact = LinRegConfig(GlmSolver::kNormalEquations);
  auto reference = TrainGlm(ds.x, ds.y, exact);
  ASSERT_TRUE(reference.ok());

  GlmConfig config = LinRegConfig(GetParam());
  config.max_epochs = 600;
  config.num_threads = 2;
  auto model = TrainGlm(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(model->weights.At(j, 0), reference->weights.At(j, 0), 0.05)
        << "weight " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Solvers, GlmSolverConvergence,
                         ::testing::Values(GlmSolver::kBatchGd, GlmSolver::kSgd,
                                           GlmSolver::kMiniBatchSgd,
                                           GlmSolver::kHogwild));

TEST(GlmTest, LossHistoryIsDecreasingForBatchGd) {
  auto ds = data::MakeRegression(200, 3, 0.1, 5);
  auto model = TrainGlm(ds.x, ds.y, LinRegConfig(GlmSolver::kBatchGd));
  ASSERT_TRUE(model.ok());
  ASSERT_GE(model->loss_history.size(), 2u);
  for (size_t i = 1; i < model->loss_history.size(); ++i) {
    EXPECT_LE(model->loss_history[i], model->loss_history[i - 1] + 1e-9);
  }
}

TEST(GlmTest, EarlyStoppingTriggersBeforeMaxEpochs) {
  auto ds = data::MakeRegression(100, 2, 0.0, 6);
  GlmConfig config = LinRegConfig(GlmSolver::kBatchGd);
  config.max_epochs = 100000;
  config.tolerance = 1e-6;
  auto model = TrainGlm(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->epochs_run, 100000u);
}

TEST(GlmTest, LogisticRecoversSeparation) {
  auto ds = data::MakeClassification(600, 4, /*flip_prob=*/0.0, 7);
  GlmConfig config;
  config.family = GlmFamily::kBinomial;
  config.solver = GlmSolver::kBatchGd;
  config.learning_rate = 0.5;
  config.max_epochs = 500;
  auto model = TrainGlm(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  auto labels = model->PredictLabels(ds.x);
  ASSERT_TRUE(labels.ok());
  double acc = *Accuracy(ds.y, *labels);
  EXPECT_GT(acc, 0.85);
  // Probabilities are calibrated-ish: AUC should be high.
  auto probs = model->Predict(ds.x);
  EXPECT_GT(*RocAuc(ds.y, *probs), 0.9);
}

TEST(GlmTest, LogisticSgdAlsoLearns) {
  auto ds = data::MakeClassification(600, 4, 0.05, 8);
  GlmConfig config;
  config.family = GlmFamily::kBinomial;
  config.solver = GlmSolver::kSgd;
  config.learning_rate = 0.2;
  config.lr_decay = 0.01;
  config.max_epochs = 60;
  auto model = TrainGlm(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  auto labels = model->PredictLabels(ds.x);
  EXPECT_GT(*Accuracy(ds.y, *labels), 0.8);
}

TEST(GlmTest, BinomialRejectsNonBinaryLabels) {
  auto ds = data::MakeRegression(50, 3, 0.1, 9);  // Continuous targets.
  GlmConfig config;
  config.family = GlmFamily::kBinomial;
  EXPECT_FALSE(TrainGlm(ds.x, ds.y, config).ok());
}

TEST(GlmTest, NormalEquationsRejectBinomial) {
  auto ds = data::MakeClassification(50, 3, 0.0, 10);
  GlmConfig config;
  config.family = GlmFamily::kBinomial;
  config.solver = GlmSolver::kNormalEquations;
  EXPECT_FALSE(TrainGlm(ds.x, ds.y, config).ok());
}

TEST(GlmTest, InputValidation) {
  GlmConfig config;
  EXPECT_FALSE(TrainGlm(DenseMatrix(0, 0), DenseMatrix(0, 1), config).ok());
  EXPECT_FALSE(TrainGlm(DenseMatrix(5, 2), DenseMatrix(4, 1), config).ok());
  EXPECT_FALSE(TrainGlm(DenseMatrix(5, 2), DenseMatrix(5, 2), config).ok());
  config.learning_rate = -1;
  EXPECT_FALSE(TrainGlm(DenseMatrix(5, 2), DenseMatrix(5, 1), config).ok());
}

TEST(GlmTest, PredictValidatesWidth) {
  auto ds = data::MakeRegression(50, 3, 0.1, 11);
  auto model = TrainGlm(ds.x, ds.y, LinRegConfig(GlmSolver::kNormalEquations));
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Predict(DenseMatrix(5, 4)).ok());
  EXPECT_TRUE(model->Predict(DenseMatrix(5, 3)).ok());
}

TEST(GlmTest, PredictLabelsRequiresBinomial) {
  auto ds = data::MakeRegression(50, 3, 0.1, 12);
  auto model = TrainGlm(ds.x, ds.y, LinRegConfig(GlmSolver::kNormalEquations));
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->PredictLabels(ds.x).ok());
}

TEST(GlmTest, InverseLinkSigmoidIsStable) {
  EXPECT_DOUBLE_EQ(GlmInverseLink(3.0, GlmFamily::kGaussian), 3.0);
  EXPECT_NEAR(GlmInverseLink(0.0, GlmFamily::kBinomial), 0.5, 1e-12);
  EXPECT_NEAR(GlmInverseLink(1000.0, GlmFamily::kBinomial), 1.0, 1e-12);
  EXPECT_NEAR(GlmInverseLink(-1000.0, GlmFamily::kBinomial), 0.0, 1e-12);
  EXPECT_FALSE(std::isnan(GlmInverseLink(-1000.0, GlmFamily::kBinomial)));
}

TEST(GlmTest, GlmLossMatchesManualComputation) {
  DenseMatrix x{{1.0, 0.0}, {0.0, 1.0}};
  auto y = DenseMatrix::ColumnVector({2.0, 0.0});
  auto w = DenseMatrix::ColumnVector({1.0, 1.0});
  // Residuals: (1-2)=-1 and (1-0)=1 -> mean of 0.5*1 + 0.5*1 = 0.5.
  auto loss = GlmLoss(x, y, w, 0.0, GlmFamily::kGaussian, 0.0);
  ASSERT_TRUE(loss.ok());
  EXPECT_DOUBLE_EQ(*loss, 0.5);
  // With L2: + 0.5*lambda*|w|^2 = 0.5*2*2 = ... lambda=2 -> +2.
  EXPECT_DOUBLE_EQ(*GlmLoss(x, y, w, 0.0, GlmFamily::kGaussian, 2.0), 2.5);
}

TEST(GlmTest, DeterministicGivenSeed) {
  auto ds = data::MakeClassification(200, 3, 0.1, 13);
  GlmConfig config;
  config.family = GlmFamily::kBinomial;
  config.solver = GlmSolver::kSgd;
  config.max_epochs = 10;
  config.seed = 99;
  auto m1 = TrainGlm(ds.x, ds.y, config);
  auto m2 = TrainGlm(ds.x, ds.y, config);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_TRUE(m1->weights == m2->weights);
}

TEST(GlmTest, InterceptCapturesShiftedData) {
  // y = 3 + 0*x: weights ~0, intercept ~3.
  auto x = data::GaussianMatrix(300, 2, 14);
  DenseMatrix y(300, 1, 3.0);
  auto model = TrainGlm(x, y, LinRegConfig(GlmSolver::kNormalEquations));
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->intercept, 3.0, 1e-6);
  EXPECT_LT(la::FrobeniusNorm(model->weights), 1e-6);
}

}  // namespace
}  // namespace dmml::ml
