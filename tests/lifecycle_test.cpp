// Full ML-lifecycle integration test: statistics-informed relational prep →
// model search → ensemble comparison → registry persistence → reload →
// declarative scoring. Exercises every major module in one flow.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "data/generators.h"
#include "laopt/parser.h"
#include "ml/gradient_boosting.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/validation.h"
#include "modelsel/model_registry.h"
#include "modelsel/successive_halving.h"
#include "relational/operators.h"
#include "relational/statistics.h"

namespace dmml {
namespace {

using la::DenseMatrix;

TEST(LifecycleTest, PrepSearchPersistReloadScore) {
  // 1. Normalized data lands in the engine.
  data::StarSchemaOptions options;
  options.ns = 3000;
  options.nr = 100;
  options.ds = 3;
  options.dr = 4;
  options.classification = true;
  auto dataset = data::MakeStarSchema(options, 11);

  // 2. Statistics-informed filter: keep the bulk of the mass (estimate
  // first, then verify the estimate was sane).
  auto stats = relational::CollectStatistics(dataset.s);
  ASSERT_TRUE(stats.ok());
  auto est = relational::EstimateSelectivity(*stats, "xs0",
                                             relational::CompareOp::kGt, -1.0);
  ASSERT_TRUE(est.ok());
  auto filtered = relational::Filter(
      dataset.s, relational::Compare("xs0", relational::CompareOp::kGt, -1.0));
  ASSERT_TRUE(filtered.ok());
  double actual = static_cast<double>(filtered->num_rows()) /
                  static_cast<double>(dataset.s.num_rows());
  EXPECT_NEAR(*est, actual, 0.1);

  // 3. Join + feature extraction.
  auto joined = relational::HashJoin(*filtered, dataset.r, "fk", "rid");
  ASSERT_TRUE(joined.ok());
  std::vector<std::string> features = {"xs0", "xs1", "xs2",
                                       "xr0", "xr1", "xr2", "xr3"};
  auto x = *joined->ToMatrix(features);
  auto y = *joined->ToMatrix({"y"});
  auto split = ml::SplitTrainTest(x, y, 0.25, 7);
  ASSERT_TRUE(split.ok());

  // 4. Hyperparameter search for the GLM via successive halving.
  std::vector<ml::GlmConfig> configs;
  for (double lr : {0.005, 0.05, 0.5}) {
    ml::GlmConfig c;
    c.family = ml::GlmFamily::kBinomial;
    c.learning_rate = lr;
    configs.push_back(c);
  }
  modelsel::HalvingConfig halving;
  halving.min_epochs = 10;
  auto search =
      modelsel::SuccessiveHalving(split->x_train, split->y_train, configs, halving);
  ASSERT_TRUE(search.ok());
  auto glm_labels = search->best_model.PredictLabels(split->x_test);
  ASSERT_TRUE(glm_labels.ok());
  double glm_acc = *ml::Accuracy(split->y_test, *glm_labels);
  EXPECT_GT(glm_acc, 0.75);

  // 5. Ensembles on the same split for comparison.
  ml::ForestConfig forest_config;
  forest_config.num_trees = 10;
  auto forest =
      ml::TrainForestClassifier(split->x_train, split->y_train, forest_config);
  ASSERT_TRUE(forest.ok());
  double forest_acc =
      *ml::Accuracy(split->y_test, *forest->Predict(split->x_test));

  ml::BoostingConfig boost_config;
  boost_config.num_rounds = 30;
  auto boosted =
      ml::TrainBoostedClassifier(split->x_train, split->y_train, boost_config);
  ASSERT_TRUE(boosted.ok());
  double boost_acc =
      *ml::Accuracy(split->y_test, *boosted->PredictLabels(split->x_test));
  // All three learners must be clearly better than chance on this task.
  EXPECT_GT(forest_acc, 0.65);
  EXPECT_GT(boost_acc, 0.65);

  // 6. Persist the GLM winner with its metrics; reload and verify.
  std::string root = testing::TempDir() + "/dmml_lifecycle_registry";
  std::string cleanup = "rm -rf " + root;
  ASSERT_EQ(std::system(cleanup.c_str()), 0);
  auto registry = modelsel::ModelRegistry::Open(root);
  ASSERT_TRUE(registry.ok());
  auto version = registry->Save(
      "churn_glm", search->best_model,
      {{"test_accuracy", std::to_string(glm_acc)},
       {"features", std::to_string(features.size())}});
  ASSERT_TRUE(version.ok());

  auto reloaded = registry->Load("churn_glm");
  ASSERT_TRUE(reloaded.ok());
  auto reloaded_labels = reloaded->PredictLabels(split->x_test);
  ASSERT_TRUE(reloaded_labels.ok());
  EXPECT_TRUE(*reloaded_labels == *glm_labels);  // Identical post-reload.

  // 7. Score declaratively: margins = X %*% w through the parsed language,
  // matching the model's own decision function.
  laopt::Environment env = {
      {"X", std::make_shared<DenseMatrix>(split->x_test)},
      {"w", std::make_shared<DenseMatrix>(reloaded->weights)}};
  auto margins = laopt::EvalExpression("X %*% w", env);
  ASSERT_TRUE(margins.ok());
  auto reference = reloaded->DecisionFunction(split->x_test);
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < margins->rows(); ++i) {
    EXPECT_NEAR(margins->At(i, 0) + reloaded->intercept, reference->At(i, 0), 1e-9);
  }

  // 8. Confusion matrix sanity over the winner's predictions.
  std::vector<int> y_true(split->y_test.rows()), y_pred(split->y_test.rows());
  for (size_t i = 0; i < y_true.size(); ++i) {
    y_true[i] = static_cast<int>(split->y_test.At(i, 0));
    y_pred[i] = static_cast<int>((*glm_labels).At(i, 0));
  }
  auto cm = ml::BuildConfusionMatrix(y_true, y_pred);
  ASSERT_TRUE(cm.ok());
  EXPECT_NEAR(cm->Accuracy(), glm_acc, 1e-12);
}

}  // namespace
}  // namespace dmml
