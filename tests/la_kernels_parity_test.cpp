// Parity tests: the blocked/parallel kernel engine vs the naive reference
// kernels, across adversarial shapes, serial and pooled. Also pins down the
// allocation behaviour of the Into variants and the BufferedExecutor's
// steady state (zero matrix allocations on repeated-shape programs).
//
// This suite is the sanitizer target for the kernel engine: it must stay
// green under -DDMML_SANITIZE=thread and -DDMML_SANITIZE=address,undefined.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "la/kernels.h"
#include "laopt/executor.h"
#include "laopt/expr.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dmml::la {
namespace {

using dmml::Rng;
using dmml::ThreadPool;

DenseMatrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-1.0, 1.0);
  return m;
}

SparseMatrix RandomSparse(size_t rows, size_t cols, double density, Rng* rng) {
  std::vector<Triplet> triplets;
  const size_t target = static_cast<size_t>(
      density * static_cast<double>(rows) * static_cast<double>(cols));
  for (size_t e = 0; e < target; ++e) {
    triplets.push_back({rng->UniformInt(rows), rng->UniformInt(cols),
                        rng->Uniform(-1.0, 1.0)});
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

// Blocked kernels reassociate k-length dot products, so tolerance scales
// with k; the +16 keeps tiny shapes from demanding exact equality.
double TolFor(size_t k) { return 1e-9 * static_cast<double>(k + 16); }

// One (m, k, n) shape through every dense + sparse kernel pair.
void ExpectParity(size_t m, size_t k, size_t n, ThreadPool* pool, Rng* rng) {
  SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + "x" +
               std::to_string(n) + (pool != nullptr ? " pooled" : " serial"));
  const double tol = TolFor(k);
  const double red_tol = tol * static_cast<double>(std::max<size_t>(n, 1));
  DenseMatrix a = RandomMatrix(m, k, rng);
  DenseMatrix b = RandomMatrix(k, n, rng);
  DenseMatrix bt = RandomMatrix(n, k, rng);
  DenseMatrix w = RandomMatrix(k, n, rng);
  DenseMatrix xv = RandomMatrix(k, 1, rng);

  EXPECT_LE(MaxAbsDiff(Multiply(a, b, pool), reference::Multiply(a, b)), tol);
  EXPECT_EQ(MaxAbsDiff(Transpose(a, pool), reference::Transpose(a)), 0.0);
  EXPECT_LE(MaxAbsDiff(Gram(b, pool), reference::Gram(b)), tol);
  EXPECT_LE(MaxAbsDiff(TransposeMultiply(b, w, pool),
                       reference::TransposeMultiply(b, w)),
            tol);
  EXPECT_LE(MaxAbsDiff(MultiplyTransposeB(a, bt, pool),
                       reference::MultiplyTransposeB(a, bt)),
            tol);
  EXPECT_LE(MaxAbsDiff(Gevm(xv, b, pool), reference::Gevm(xv, b)), tol);
  EXPECT_LE(MaxAbsDiff(ColumnSums(b, pool), reference::ColumnSums(b)), tol);
  EXPECT_NEAR(Sum(b, pool), reference::Sum(b), red_tol);
  EXPECT_NEAR(FrobeniusNorm(b, pool), reference::FrobeniusNorm(b), red_tol);

  // Into forms must fully overwrite a dirty, differently-shaped buffer.
  DenseMatrix out(m + 3, n + 5);
  out.Fill(7.25);
  MultiplyInto(a, b, &out, pool);
  EXPECT_LE(MaxAbsDiff(out, reference::Multiply(a, b)), tol);

  SparseMatrix sp = RandomSparse(k, n, 0.05, rng);
  EXPECT_LE(
      MaxAbsDiff(SparseGevm(xv, sp, pool), reference::SparseGevm(xv, sp)), tol);
  EXPECT_TRUE(SparseTranspose(sp) == reference::SparseTranspose(sp));
}

TEST(KernelParityTest, AdversarialShapesSerialAndPooled) {
  // Tile multiples, off-by-one around every tile edge, degenerate vectors
  // and zero dimensions. Each shape runs serial and through a 4-thread pool.
  const size_t shapes[][3] = {
      {64, 64, 64},  {65, 129, 67}, {4, 8, 128},  {3, 7, 5},
      {1, 130, 1},   {130, 1, 130}, {1, 1, 1},    {0, 5, 5},
      {5, 0, 5},     {5, 5, 0},     {33, 257, 31}, {9, 128, 128},
  };
  ThreadPool pool(4);
  Rng rng(1234);
  for (const auto& s : shapes) {
    ExpectParity(s[0], s[1], s[2], nullptr, &rng);
    ExpectParity(s[0], s[1], s[2], &pool, &rng);
  }
}

TEST(KernelParityTest, SparseTransposeEdgeCases) {
  Rng rng(99);
  SparseMatrix nearly_empty = RandomSparse(200, 300, 0.0005, &rng);
  EXPECT_TRUE(SparseTranspose(nearly_empty) ==
              reference::SparseTranspose(nearly_empty));
  SparseMatrix empty = SparseMatrix::FromTriplets(40, 60, {});
  EXPECT_TRUE(SparseTranspose(empty) == reference::SparseTranspose(empty));
  // Round trip: (Aᵀ)ᵀ == A.
  SparseMatrix dense_ish = RandomSparse(37, 53, 0.3, &rng);
  EXPECT_TRUE(SparseTranspose(SparseTranspose(dense_ish)) == dense_ish);
}

TEST(KernelParityTest, GevmUsesPoolAndMatchesSerial) {
  // Regression: Gevm used to silently ignore its pool argument. The pooled
  // path reduces per-chunk partials, so check it against both the serial
  // blocked path and the reference.
  Rng rng(7);
  DenseMatrix x = RandomMatrix(4096, 1, &rng);
  DenseMatrix a = RandomMatrix(4096, 17, &rng);
  ThreadPool pool(4);
  const uint64_t reductions_before =
      obs::MetricsRegistry::Global().GetCounter("la.parallel.reductions")->Value();
  DenseMatrix pooled = Gevm(x, a, &pool);
  EXPECT_GT(
      obs::MetricsRegistry::Global().GetCounter("la.parallel.reductions")->Value(),
      reductions_before);
  EXPECT_LE(MaxAbsDiff(pooled, Gevm(x, a, nullptr)), TolFor(4096));
  EXPECT_LE(MaxAbsDiff(pooled, reference::Gevm(x, a)), TolFor(4096));
}

TEST(KernelParityTest, IntoVariantsReuseFittingBuffers) {
  Rng rng(11);
  DenseMatrix a = RandomMatrix(40, 30, &rng);
  DenseMatrix b = RandomMatrix(30, 20, &rng);
  DenseMatrix out;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  MultiplyInto(a, b, &out);  // First call sizes the buffer.
  const uint64_t allocs = reg.GetCounter("la.inplace.allocs")->Value();
  const uint64_t reuses = reg.GetCounter("la.inplace.reuses")->Value();
  for (int i = 0; i < 5; ++i) MultiplyInto(a, b, &out);
  EXPECT_EQ(reg.GetCounter("la.inplace.allocs")->Value(), allocs)
      << "repeated same-shape MultiplyInto must not allocate";
  EXPECT_EQ(reg.GetCounter("la.inplace.reuses")->Value(), reuses + 5);
}

TEST(BufferedExecutorTest, ZeroAllocationsInSteadyState) {
  Rng rng(21);
  auto ma = std::make_shared<DenseMatrix>(RandomMatrix(48, 36, &rng));
  auto mb = std::make_shared<DenseMatrix>(RandomMatrix(36, 24, &rng));
  using laopt::ExprNode;
  auto a = *ExprNode::Input(ma, "A");
  auto b = *ExprNode::Input(mb, "B");
  auto ab = *ExprNode::MatMul(a, b);                     // A*B
  auto expr = *ExprNode::Add(ab, *ExprNode::ScalarMul(2.0, ab));

  laopt::BufferedExecutor exec;
  auto first = exec.Run(expr);
  ASSERT_TRUE(first.ok());
  DenseMatrix want = **first;  // Copy before the buffers are rewritten.

  // Steady state: same program, same shapes — the executor's retained slots
  // and the Into kernels' Reshape reuse must make further runs allocation
  // free, observable as a frozen la.inplace.allocs counter.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t allocs = reg.GetCounter("la.inplace.allocs")->Value();
  const uint64_t reuses = reg.GetCounter("la.inplace.reuses")->Value();
  for (int i = 0; i < 10; ++i) {
    laopt::ExecStats stats;
    auto again = exec.Run(expr, &stats);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(MaxAbsDiff(**again, want), 0.0);
    EXPECT_EQ(stats.memo_hits, 1u);  // Shared A*B evaluated once per run.
  }
  EXPECT_EQ(reg.GetCounter("la.inplace.allocs")->Value(), allocs)
      << "steady-state BufferedExecutor::Run must not allocate matrices";
  EXPECT_GT(reg.GetCounter("la.inplace.reuses")->Value(), reuses);
  EXPECT_EQ(exec.num_slots(), 5u);  // A, B, A*B, 2*(A*B) and the root sum.

  // Rebinding to new shapes is allowed — buffers regrow once, then freeze.
  exec.Clear();
  EXPECT_EQ(exec.num_slots(), 0u);
}

}  // namespace
}  // namespace dmml::la
