// Tests for model selection: grid expansion, k-fold splits, cross-validation
// scoring, batched multi-config training equivalence with sequential
// training, and grid-search agreement between both strategies.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generators.h"
#include "factorized/factorized_glm.h"
#include "modelsel/model_selection.h"

namespace dmml::modelsel {
namespace {

using la::DenseMatrix;
using ml::GlmConfig;
using ml::GlmFamily;

TEST(GridSpecTest, ExpandIsCartesianProduct) {
  GridSpec grid;
  grid.learning_rates = {0.1, 0.2, 0.3};
  grid.l2_penalties = {0.0, 1.0};
  auto configs = grid.Expand();
  ASSERT_EQ(configs.size(), 6u);
  std::set<std::pair<double, double>> seen;
  for (const auto& c : configs) seen.insert({c.learning_rate, c.l2});
  EXPECT_EQ(seen.size(), 6u);
}

TEST(GridSpecTest, BasePropagates) {
  GridSpec grid;
  grid.base.family = GlmFamily::kBinomial;
  grid.base.max_epochs = 17;
  grid.learning_rates = {0.5};
  grid.l2_penalties = {0.1};
  auto configs = grid.Expand();
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].family, GlmFamily::kBinomial);
  EXPECT_EQ(configs[0].max_epochs, 17u);
  EXPECT_DOUBLE_EQ(configs[0].learning_rate, 0.5);
}

TEST(KFoldTest, PartitionsAllIndicesExactlyOnce) {
  auto kf = KFold::Make(103, 5, 1);
  ASSERT_TRUE(kf.ok());
  std::set<size_t> seen;
  size_t total = 0;
  for (size_t f = 0; f < kf->num_folds(); ++f) {
    for (size_t i : kf->ValidationIndices(f)) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
      ++total;
    }
  }
  EXPECT_EQ(total, 103u);
  EXPECT_EQ(*seen.rbegin(), 102u);
}

TEST(KFoldTest, TrainingIsComplementOfValidation) {
  auto kf = KFold::Make(20, 4, 2);
  ASSERT_TRUE(kf.ok());
  for (size_t f = 0; f < 4; ++f) {
    auto train = kf->TrainingIndices(f);
    auto val = kf->ValidationIndices(f);
    EXPECT_EQ(train.size() + val.size(), 20u);
    std::set<size_t> train_set(train.begin(), train.end());
    for (size_t i : val) EXPECT_FALSE(train_set.count(i));
  }
}

TEST(KFoldTest, Validation) {
  EXPECT_FALSE(KFold::Make(10, 1, 3).ok());
  EXPECT_FALSE(KFold::Make(3, 4, 3).ok());
  EXPECT_TRUE(KFold::Make(3, 3, 3).ok());
}

TEST(GatherRowsTest, SelectsRows) {
  DenseMatrix m{{1, 2}, {3, 4}, {5, 6}};
  auto g = GatherRows(m, {2, 0});
  EXPECT_TRUE(g == (DenseMatrix{{5, 6}, {1, 2}}));
}

TEST(CrossValidateTest, GoodModelScoresWell) {
  auto ds = data::MakeClassification(300, 4, 0.05, 4);
  GlmConfig config;
  config.family = GlmFamily::kBinomial;
  config.learning_rate = 0.5;
  config.max_epochs = 120;
  auto score = CrossValidate(ds.x, ds.y, config, 5, 7);
  ASSERT_TRUE(score.ok());
  EXPECT_EQ(score->fold_scores.size(), 5u);
  EXPECT_GT(score->mean_score, 0.75);
  EXPECT_GE(score->std_score, 0.0);
}

TEST(CrossValidateTest, GaussianUsesNegatedRmse) {
  auto ds = data::MakeRegression(200, 3, 0.1, 5);
  GlmConfig config;
  config.solver = ml::GlmSolver::kNormalEquations;
  auto score = CrossValidate(ds.x, ds.y, config, 4, 8);
  ASSERT_TRUE(score.ok());
  EXPECT_LT(score->mean_score, 0.0);   // Negated RMSE.
  EXPECT_GT(score->mean_score, -0.5);  // Low noise -> small RMSE.
}

TEST(BatchedTrainTest, MatchesSequentialBatchGdExactly) {
  auto ds = data::MakeRegression(250, 5, 0.1, 6);
  GridSpec grid;
  grid.base.max_epochs = 40;
  grid.base.tolerance = 0;  // Disable early stop so epochs align.
  grid.learning_rates = {0.02, 0.05, 0.1};
  grid.l2_penalties = {0.0, 0.5};
  auto configs = grid.Expand();

  auto batched = BatchedTrainGlm(ds.x, ds.y, configs);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    GlmConfig config = configs[c];
    config.tolerance = 0;
    auto solo = factorized::TrainDenseGlmMatrixForm(ds.x, ds.y, config);
    ASSERT_TRUE(solo.ok());
    EXPECT_TRUE((*batched)[c].weights.ApproxEquals(solo->weights, 1e-8))
        << "config " << c;
    EXPECT_NEAR((*batched)[c].intercept, solo->intercept, 1e-8);
  }
}

TEST(BatchedTrainTest, LogisticFamilyAgrees) {
  auto ds = data::MakeClassification(200, 3, 0.1, 7);
  GlmConfig base;
  base.family = GlmFamily::kBinomial;
  base.max_epochs = 30;
  base.tolerance = 0;
  std::vector<GlmConfig> configs(2, base);
  configs[0].learning_rate = 0.2;
  configs[1].learning_rate = 0.6;
  auto batched = BatchedTrainGlm(ds.x, ds.y, configs);
  ASSERT_TRUE(batched.ok());
  for (size_t c = 0; c < 2; ++c) {
    GlmConfig config = configs[c];
    auto solo = factorized::TrainDenseGlmMatrixForm(ds.x, ds.y, config);
    ASSERT_TRUE(solo.ok());
    EXPECT_TRUE((*batched)[c].weights.ApproxEquals(solo->weights, 1e-8));
  }
}

TEST(BatchedTrainTest, RejectsHeterogeneousConfigs) {
  auto ds = data::MakeRegression(50, 2, 0.1, 8);
  GlmConfig a, b;
  b.family = GlmFamily::kBinomial;
  EXPECT_FALSE(BatchedTrainGlm(ds.x, ds.y, {a, b}).ok());
  GlmConfig c = a;
  c.max_epochs = a.max_epochs + 1;
  EXPECT_FALSE(BatchedTrainGlm(ds.x, ds.y, {a, c}).ok());
  EXPECT_FALSE(BatchedTrainGlm(ds.x, ds.y, {}).ok());
}

TEST(BatchedTrainTest, RejectsBadData) {
  GlmConfig config;
  EXPECT_FALSE(BatchedTrainGlm(DenseMatrix(0, 2), DenseMatrix(0, 1), {config}).ok());
  EXPECT_FALSE(BatchedTrainGlm(DenseMatrix(5, 2), DenseMatrix(4, 1), {config}).ok());
}

TEST(GridSearchTest, SequentialAndBatchedPickReasonableConfigs) {
  auto ds = data::MakeClassification(240, 4, 0.1, 9);
  GridSpec grid;
  grid.base.family = GlmFamily::kBinomial;
  grid.base.max_epochs = 60;
  grid.base.tolerance = 0;
  grid.learning_rates = {0.001, 0.3};  // Tiny lr barely learns.
  grid.l2_penalties = {0.0};

  auto seq = GridSearchSequential(ds.x, ds.y, grid, 4, 10);
  auto bat = GridSearchBatched(ds.x, ds.y, grid, 4, 10);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(bat.ok());
  ASSERT_EQ(seq->scores.size(), 2u);
  ASSERT_EQ(bat->scores.size(), 2u);
  // Both must prefer the workable learning rate.
  EXPECT_DOUBLE_EQ(seq->scores[seq->best_index].config.learning_rate, 0.3);
  EXPECT_DOUBLE_EQ(bat->scores[bat->best_index].config.learning_rate, 0.3);
  // And their per-config scores should agree closely (same algorithm, same
  // folds; batched differs only in data-access pattern).
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(seq->scores[c].mean_score, bat->scores[c].mean_score, 1e-6);
  }
}

TEST(GridSearchTest, EmptyGridRejected) {
  auto ds = data::MakeRegression(50, 2, 0.1, 11);
  GridSpec grid;
  EXPECT_FALSE(GridSearchSequential(ds.x, ds.y, grid, 3, 1).ok());
  EXPECT_FALSE(GridSearchBatched(ds.x, ds.y, grid, 3, 1).ok());
}

// Property sweep: batched == sequential across grid sizes and families.
class BatchedEquivalenceProperty
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(BatchedEquivalenceProperty, BatchedMatchesSolo) {
  auto [num_configs, binomial] = GetParam();
  auto reg = data::MakeRegression(120, 3, 0.2, 12);
  auto cls = data::MakeClassification(120, 3, 0.1, 12);
  const DenseMatrix& x = binomial ? cls.x : reg.x;
  const DenseMatrix& y = binomial ? cls.y : reg.y;

  GlmConfig base;
  base.family = binomial ? GlmFamily::kBinomial : GlmFamily::kGaussian;
  base.max_epochs = 15;
  base.tolerance = 0;
  std::vector<GlmConfig> configs;
  for (int c = 0; c < num_configs; ++c) {
    GlmConfig cfg = base;
    cfg.learning_rate = 0.05 * (c + 1);
    cfg.l2 = 0.1 * c;
    configs.push_back(cfg);
  }
  auto batched = BatchedTrainGlm(x, y, configs);
  ASSERT_TRUE(batched.ok());
  for (int c = 0; c < num_configs; ++c) {
    auto solo = factorized::TrainDenseGlmMatrixForm(x, y, configs[c]);
    ASSERT_TRUE(solo.ok());
    EXPECT_TRUE((*batched)[c].weights.ApproxEquals(solo->weights, 1e-8));
  }
}

INSTANTIATE_TEST_SUITE_P(GridSizes, BatchedEquivalenceProperty,
                         ::testing::Combine(::testing::Values(1, 4, 9),
                                            ::testing::Bool()));

}  // namespace
}  // namespace dmml::modelsel
