// Tests for the laopt runtime plan profiler: per-node coverage, cross-run
// accumulation, estimate-vs-actual calibration rendering, the ExecStats
// fold, and the profiling-off zero-cost guarantee.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "laopt/executor.h"
#include "laopt/expr.h"
#include "laopt/parser.h"
#include "laopt/profile.h"
#include "ml/unified_trainers.h"
#include "obs/metrics.h"
#include "obs/profile_registry.h"

namespace dmml::laopt {
namespace {

using la::DenseMatrix;
using la::SparseMatrix;

// Minimal recursive-descent JSON validator (same shape as the one in
// obs_test.cpp): asserts well-formedness without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }
  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return pos_ < s_.size() && s_[pos_++] == '"';
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (Literal("true") || Literal("false") || Literal("null")) return true;
    return Number();
  }
  bool Object() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    do {
      SkipWs();
      if (!String()) return false;
      if (!Consume(':')) return false;
      if (!Value()) return false;
    } while (Consume(','));
    return Consume('}');
  }
  bool Array() {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    do {
      if (!Value()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::shared_ptr<DenseMatrix> MakeDense(size_t rows, size_t cols, double base) {
  auto m = std::make_shared<DenseMatrix>(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m->At(r, c) = base + static_cast<double>(r * cols + c) * 0.25;
    }
  }
  return m;
}

// A small program with a matmul, an elementwise op, and a reduction:
// colSums((X %*% W) + (X %*% W) ⊙ (X %*% W)) exercising memoization too.
struct TestProgram {
  ExprPtr x, w, mm, em, add, root;
};

TestProgram BuildProgram() {
  TestProgram p;
  auto xm = MakeDense(6, 4, 1.0);
  auto wm = MakeDense(4, 3, -0.5);
  p.x = *ExprNode::Input(xm, "X");
  p.w = *ExprNode::Input(wm, "W");
  p.mm = *ExprNode::MatMul(p.x, p.w);
  p.em = *ExprNode::ElemMul(p.mm, p.mm);
  p.add = *ExprNode::Add(p.mm, p.em);
  p.root = *ExprNode::ColSums(p.add);
  return p;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

TEST(PlanProfileTest, CoversEveryNonLeafNode) {
  TestProgram p = BuildProgram();
  PlanProfile profile;
  BufferedExecutor executor;
  executor.set_profile(&profile);
  ASSERT_TRUE(executor.Run(p.root).ok());

  EXPECT_EQ(profile.runs(), 1u);
  for (const ExprPtr& node : {p.mm, p.em, p.add, p.root}) {
    const NodeProfile* np = profile.Find(node.get());
    ASSERT_NE(np, nullptr) << OpKindName(node->kind());
    EXPECT_EQ(np->invocations, 1u);
    EXPECT_EQ(np->kind, node->kind());
    EXPECT_EQ(np->last_dispatch, Repr::kDense);
    EXPECT_EQ(np->out_repr, Repr::kDense);
    EXPECT_GT(np->out_rows * np->out_cols, 0u);
    // total time includes children; self never exceeds it.
    EXPECT_LE(np->self_us, np->total_us);
  }
  // Leaves are not executed ops; they get no sample rows.
  EXPECT_EQ(profile.Find(p.x.get()), nullptr);

  // Output shapes and nnz reflect the materialized values.
  const NodeProfile* mm = profile.Find(p.mm.get());
  EXPECT_EQ(mm->out_rows, 6u);
  EXPECT_EQ(mm->out_cols, 3u);
  EXPECT_LE(mm->out_nnz, 18u);
  EXPECT_GE(mm->ActualSparsity(), 0.0);
  EXPECT_LE(mm->ActualSparsity(), 1.0);

  // The shared X%*%W is reused twice in-run (em uses it twice, add once more).
  EXPECT_GE(mm->memo_hits, 2u);
}

TEST(PlanProfileTest, AccumulatesAcrossRuns) {
  TestProgram p = BuildProgram();
  PlanProfile profile;
  BufferedExecutor executor;
  executor.set_profile(&profile);
  ExecStats stats;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(executor.Run(p.root, &stats).ok());

  EXPECT_EQ(profile.runs(), 3u);
  for (const ExprPtr& node : {p.mm, p.em, p.add, p.root}) {
    EXPECT_EQ(profile.Find(node.get())->invocations, 3u)
        << OpKindName(node->kind());
  }

  // ExecStats is a projection of the same per-run tally the profile folds
  // in — the two must agree exactly.
  ExecStats totals = profile.TotalStats();
  EXPECT_EQ(totals.ops_executed, stats.ops_executed);
  EXPECT_EQ(totals.memo_hits, stats.memo_hits);
  EXPECT_EQ(totals.densify_fallbacks, stats.densify_fallbacks);
  EXPECT_EQ(totals.ops_executed, 3u * 4u);
}

TEST(PlanProfileTest, ExplainAnalyzeTextHasCalibrationColumns) {
  TestProgram p = BuildProgram();
  PlanProfile profile;
  BufferedExecutor executor;
  executor.set_profile(&profile);
  ASSERT_TRUE(executor.Run(p.root).ok());

  std::string text = profile.ExplainAnalyzeText();
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("runs=1"), std::string::npos);
  for (const char* column :
       {"actual ", "sparsity est=", "actual=", "err=", "bytes est=",
        "time_share=", "cost_share=", "repr=dense", "Input 'X'"}) {
    EXPECT_NE(text.find(column), std::string::npos) << column << "\n" << text;
  }
  for (const char* op : {"matmul", "elem_mul", "add", "col_sums"}) {
    EXPECT_NE(text.find(op), std::string::npos) << op << "\n" << text;
  }
}

TEST(PlanProfileTest, ExplainAnalyzeJsonIsValidAndCarriesFields) {
  TestProgram p = BuildProgram();
  PlanProfile profile;
  BufferedExecutor executor;
  executor.set_profile(&profile);
  ASSERT_TRUE(executor.Run(p.root).ok());
  ASSERT_TRUE(executor.Run(p.root).ok());

  std::string json = profile.ExplainAnalyzeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* field :
       {"\"runs\":2", "\"totals\":", "\"roots\":", "\"est\":", "\"actual\":",
        "\"sparsity\":", "\"invocations\":2", "\"time_share\":",
        "\"cost_share\":", "\"dispatch\":\"dense\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << "\n" << json;
  }
}

TEST(PlanProfileTest, ChargesDensifyFallbacksToTheOperandOwner) {
  // sparse + dense add: the sparse leaf must densify (fallback path).
  std::vector<la::Triplet> trips{{0, 0, 1.0}, {2, 3, 2.0}};
  auto sm = std::make_shared<SparseMatrix>(
      SparseMatrix::FromTriplets(4, 4, trips));
  auto dm = MakeDense(4, 4, 0.5);
  ExprPtr s = *ExprNode::InputOperand(Operand(sm), "S");
  ExprPtr d = *ExprNode::Input(dm, "D");
  ExprPtr root = *ExprNode::Add(s, d);

  PlanProfile profile;
  BufferedExecutor executor;
  executor.set_profile(&profile);
  ASSERT_TRUE(executor.Run(root).ok());

  const NodeProfile* leaf = profile.Find(s.get());
  ASSERT_NE(leaf, nullptr);
  EXPECT_GE(leaf->densify_fallbacks, 1u);
  EXPECT_EQ(profile.TotalStats().densify_fallbacks, 1u);
}

TEST(PlanProfileTest, ProfilingOffMakesZeroProfileAllocations) {
  TestProgram p = BuildProgram();
  BufferedExecutor executor;  // no profile attached
  const uint64_t runs0 = CounterValue("laopt.profile.runs");
  const uint64_t nodes0 = CounterValue("laopt.profile.nodes_tracked");
  const uint64_t samples0 = CounterValue("laopt.profile.samples");
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(executor.Run(p.root).ok());
  EXPECT_EQ(CounterValue("laopt.profile.runs"), runs0);
  EXPECT_EQ(CounterValue("laopt.profile.nodes_tracked"), nodes0);
  EXPECT_EQ(CounterValue("laopt.profile.samples"), samples0);

  // With a profile attached, node entries are created exactly once; steady-
  // state runs only update existing rows (no new insertions).
  PlanProfile profile;
  executor.set_profile(&profile);
  ASSERT_TRUE(executor.Run(p.root).ok());
  const uint64_t nodes_after_first = CounterValue("laopt.profile.nodes_tracked");
  const size_t tracked = profile.NumNodes();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(executor.Run(p.root).ok());
  EXPECT_EQ(CounterValue("laopt.profile.nodes_tracked"), nodes_after_first);
  EXPECT_EQ(profile.NumNodes(), tracked);
}

TEST(PlanProfileTest, GlmTrainingProducesFullCalibrationReport) {
  auto x = MakeDense(32, 5, 0.1);
  DenseMatrix y(32, 1);
  for (size_t i = 0; i < 32; ++i) y.At(i, 0) = static_cast<double>(i % 3);
  ml::GlmConfig config;
  config.max_epochs = 4;
  config.learning_rate = 0.001;

  PlanProfile profile;
  auto model = ml::TrainGlmOnOperand(Operand(x), y, config, nullptr, &profile);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  // Two programs per epoch (scores, gradient), every epoch profiled.
  EXPECT_EQ(profile.runs(), 2u * model->epochs_run);

  // The report shows per-node actual time, chosen repr, and est-vs-actual
  // sparsity for every non-leaf node of both programs.
  std::string text = profile.ExplainAnalyzeText();
  EXPECT_NE(text.find("plan 0:"), std::string::npos) << text;
  EXPECT_NE(text.find("plan 1:"), std::string::npos) << text;
  EXPECT_NE(text.find("matmul"), std::string::npos);
  EXPECT_NE(text.find("transpose"), std::string::npos);
  EXPECT_NE(text.find("repr=dense"), std::string::npos);
  EXPECT_NE(text.find("sparsity est="), std::string::npos);
  // The gradient's t(X) is absorbed by the fused t(X)·r kernel — reported
  // as fused, not as a node the profiler lost track of.
  EXPECT_NE(text.find("fused into consumer"), std::string::npos) << text;
  EXPECT_EQ(text.find("(never executed)"), std::string::npos)
      << "all non-leaf nodes must carry actuals:\n" << text;
  EXPECT_TRUE(JsonChecker(profile.ExplainAnalyzeJson()).Valid());
}

TEST(PlanProfileTest, ParserEvalExpressionThreadsTheProfile) {
  Environment env;
  env["X"] = Operand(MakeDense(8, 3, 1.0));
  env["v"] = Operand(MakeDense(3, 1, 2.0));
  PlanProfile profile;
  auto out = EvalExpression("t(X) %*% (X %*% v)", env, nullptr, &profile);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->rows(), 3u);
  EXPECT_EQ(profile.runs(), 1u);
  EXPECT_GT(profile.NumNodes(), 0u);
  EXPECT_NE(profile.ExplainAnalyzeText().find("matmul"), std::string::npos);
}

TEST(PlanProfileTest, RegisterProfilePublishesJsonOnTheRegistry) {
  auto profile = std::make_shared<PlanProfile>();
  TestProgram p = BuildProgram();
  BufferedExecutor executor;
  executor.set_profile(profile.get());
  ASSERT_TRUE(executor.Run(p.root).ok());

  {
    obs::ScopedProfileRegistration reg =
        RegisterProfile("test.plan_profile", profile);
    std::string snapshot = obs::ProfileRegistry::Global().JsonSnapshot();
    EXPECT_TRUE(JsonChecker(snapshot).Valid()) << snapshot;
    EXPECT_NE(snapshot.find("\"test.plan_profile\""), std::string::npos);
    EXPECT_NE(snapshot.find("\"roots\""), std::string::npos);
  }
  EXPECT_EQ(obs::ProfileRegistry::Global().JsonSnapshot().find("test.plan_profile"),
            std::string::npos);
}

TEST(PlanProfileTest, ResetDropsSamplesAndRoots) {
  TestProgram p = BuildProgram();
  PlanProfile profile;
  BufferedExecutor executor;
  executor.set_profile(&profile);
  ASSERT_TRUE(executor.Run(p.root).ok());
  ASSERT_GT(profile.NumNodes(), 0u);
  profile.Reset();
  EXPECT_EQ(profile.runs(), 0u);
  EXPECT_EQ(profile.NumNodes(), 0u);
  EXPECT_NE(profile.ExplainAnalyzeText().find("(no profiled runs)"),
            std::string::npos);
}

}  // namespace
}  // namespace dmml::laopt
