// Tests for factorized learning over normalized data: the factorized
// operators agree exactly with their materialized counterparts, GLM and
// k-means training agree across both paths, and the redundancy accounting
// behaves as the tuple/feature ratios change.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "factorized/factorized_glm.h"
#include "factorized/factorized_kmeans.h"
#include "factorized/normalized_matrix.h"
#include "la/kernels.h"
#include "ml/metrics.h"

namespace dmml::factorized {
namespace {

using la::DenseMatrix;

NormalizedMatrix SmallNormalized(uint64_t seed = 1) {
  data::StarSchemaOptions options;
  options.ns = 60;
  options.nr = 8;
  options.ds = 3;
  options.dr = 5;
  auto ds = data::MakeStarSchema(options, seed);
  return *NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});
}

TEST(NormalizedMatrixTest, MakeValidation) {
  DenseMatrix xs(4, 2);
  DenseMatrix xr(3, 2);
  // fk length mismatch.
  EXPECT_FALSE(NormalizedMatrix::Make(xs, {{xr, {0, 1}}}).ok());
  // fk out of range.
  EXPECT_FALSE(NormalizedMatrix::Make(xs, {{xr, {0, 1, 2, 3}}}).ok());
  // No attribute tables.
  EXPECT_FALSE(NormalizedMatrix::Make(xs, {}).ok());
  // OK.
  auto nm = NormalizedMatrix::Make(xs, {{xr, {0, 1, 2, 0}}});
  ASSERT_TRUE(nm.ok());
  EXPECT_EQ(nm->rows(), 4u);
  EXPECT_EQ(nm->cols(), 4u);
}

TEST(NormalizedMatrixTest, MaterializeGathersRows) {
  DenseMatrix xs{{1}, {2}, {3}};
  DenseMatrix xr{{10, 20}, {30, 40}};
  auto nm = NormalizedMatrix::Make(xs, {{xr, {1, 0, 1}}});
  ASSERT_TRUE(nm.ok());
  DenseMatrix expected{{1, 30, 40}, {2, 10, 20}, {3, 30, 40}};
  EXPECT_TRUE(nm->Materialize() == expected);
}

TEST(NormalizedMatrixTest, MultiplyMatchesMaterialized) {
  auto nm = SmallNormalized();
  auto m = data::GaussianMatrix(nm.cols(), 3, 2);
  auto fact = nm.Multiply(m);
  ASSERT_TRUE(fact.ok());
  auto mat = la::Multiply(nm.Materialize(), m);
  EXPECT_TRUE(fact->ApproxEquals(mat, 1e-9));
}

TEST(NormalizedMatrixTest, TransposeMultiplyMatchesMaterialized) {
  auto nm = SmallNormalized();
  auto m = data::GaussianMatrix(nm.rows(), 2, 3);
  auto fact = nm.TransposeMultiply(m);
  ASSERT_TRUE(fact.ok());
  auto mat = la::Multiply(la::Transpose(nm.Materialize()), m);
  EXPECT_TRUE(fact->ApproxEquals(mat, 1e-9));
}

TEST(NormalizedMatrixTest, RowSquaredNormsMatchMaterialized) {
  auto nm = SmallNormalized();
  auto norms = nm.RowSquaredNorms();
  auto mat = nm.Materialize();
  for (size_t i = 0; i < nm.rows(); ++i) {
    EXPECT_NEAR(norms.At(i, 0), la::Dot(mat.Row(i), mat.Row(i), mat.cols()), 1e-9);
  }
}

TEST(NormalizedMatrixTest, ShapeErrors) {
  auto nm = SmallNormalized();
  EXPECT_FALSE(nm.Multiply(DenseMatrix(nm.cols() + 1, 1)).ok());
  EXPECT_FALSE(nm.TransposeMultiply(DenseMatrix(nm.rows() + 1, 1)).ok());
}

TEST(NormalizedMatrixTest, MultipleAttributeTables) {
  data::StarSchemaOptions options;
  options.ns = 40;
  options.nr = 5;
  options.ds = 2;
  options.dr = 3;
  auto ds1 = data::MakeStarSchema(options, 4);
  options.nr = 7;
  options.dr = 4;
  auto ds2 = data::MakeStarSchema(options, 5);
  auto nm = NormalizedMatrix::Make(ds1.xs, {{ds1.xr, ds1.fk}, {ds2.xr, ds2.fk}});
  ASSERT_TRUE(nm.ok());
  EXPECT_EQ(nm->cols(), 2u + 3u + 4u);

  auto m = data::GaussianMatrix(nm->cols(), 2, 6);
  EXPECT_TRUE(nm->Multiply(m)->ApproxEquals(la::Multiply(nm->Materialize(), m), 1e-9));
  auto u = data::GaussianMatrix(nm->rows(), 2, 7);
  EXPECT_TRUE(nm->TransposeMultiply(u)->ApproxEquals(
      la::Multiply(la::Transpose(nm->Materialize()), u), 1e-9));
}

TEST(NormalizedMatrixTest, NoEntityFeatures) {
  // dS = 0: all features come through the join.
  DenseMatrix xs(5, 0);
  DenseMatrix xr{{1, 2}, {3, 4}};
  auto nm = NormalizedMatrix::Make(xs, {{xr, {0, 1, 0, 1, 1}}});
  ASSERT_TRUE(nm.ok());
  EXPECT_EQ(nm->cols(), 2u);
  auto v = DenseMatrix::ColumnVector({1.0, -1.0});
  auto y = nm->Multiply(v);
  ASSERT_TRUE(y.ok());
  EXPECT_TRUE(y->ApproxEquals(la::Gemv(nm->Materialize(), v), 1e-12));
}

TEST(NormalizedMatrixTest, RedundancyRatioGrowsWithTupleRatio) {
  data::StarSchemaOptions options;
  options.ds = 2;
  options.dr = 20;
  options.nr = 50;
  options.ns = 100;
  auto small = data::MakeStarSchema(options, 8);
  options.ns = 5000;
  auto large = data::MakeStarSchema(options, 9);
  auto nm_small = *NormalizedMatrix::Make(small.xs, {{small.xr, small.fk}});
  auto nm_large = *NormalizedMatrix::Make(large.xs, {{large.xr, large.fk}});
  EXPECT_GT(nm_large.RedundancyRatio(), nm_small.RedundancyRatio());
  EXPECT_GT(nm_large.RedundancyRatio(), 3.0);
}

// --------------------------------------------------------------------------
// Factorized GLM
// --------------------------------------------------------------------------

ml::GlmConfig RegressionConfig() {
  ml::GlmConfig config;
  config.family = ml::GlmFamily::kGaussian;
  config.learning_rate = 0.05;
  config.max_epochs = 150;
  config.tolerance = 1e-12;
  return config;
}

TEST(FactorizedGlmTest, MatchesMaterializedExactly) {
  data::StarSchemaOptions options;
  options.ns = 300;
  options.nr = 20;
  options.ds = 2;
  options.dr = 8;
  auto ds = data::MakeStarSchema(options, 10);
  auto nm = *NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});

  auto config = RegressionConfig();
  auto fact = TrainFactorizedGlm(nm, ds.y, config);
  auto mat = TrainMaterializedGlm(nm, ds.y, config);
  ASSERT_TRUE(fact.ok());
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(fact->epochs_run, mat->epochs_run);
  EXPECT_TRUE(fact->weights.ApproxEquals(mat->weights, 1e-8));
  EXPECT_NEAR(fact->intercept, mat->intercept, 1e-8);
}

TEST(FactorizedGlmTest, LearnsTheRegressionTask) {
  data::StarSchemaOptions options;
  options.ns = 500;
  options.nr = 25;
  options.ds = 2;
  options.dr = 6;
  options.noise_sigma = 0.05;
  auto ds = data::MakeStarSchema(options, 11);
  auto nm = *NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});
  auto config = RegressionConfig();
  config.max_epochs = 800;
  auto model = TrainFactorizedGlm(nm, ds.y, config);
  ASSERT_TRUE(model.ok());
  // Predictions on the materialized matrix should be close to labels.
  auto pred = la::Gemv(nm.Materialize(), model->weights);
  for (size_t i = 0; i < pred.rows(); ++i) pred.At(i, 0) += model->intercept;
  EXPECT_GT(*ml::R2(ds.y, pred), 0.95);
}

TEST(FactorizedGlmTest, LogisticFamilyAgrees) {
  data::StarSchemaOptions options;
  options.ns = 250;
  options.nr = 15;
  options.ds = 2;
  options.dr = 5;
  options.classification = true;
  auto ds = data::MakeStarSchema(options, 12);
  auto nm = *NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});

  ml::GlmConfig config;
  config.family = ml::GlmFamily::kBinomial;
  config.learning_rate = 0.3;
  config.max_epochs = 120;
  auto fact = TrainFactorizedGlm(nm, ds.y, config);
  auto mat = TrainMaterializedGlm(nm, ds.y, config);
  ASSERT_TRUE(fact.ok());
  ASSERT_TRUE(mat.ok());
  EXPECT_TRUE(fact->weights.ApproxEquals(mat->weights, 1e-7));
}

TEST(FactorizedGlmTest, LossHistoriesAgree) {
  auto nm = SmallNormalized(13);
  DenseMatrix y(nm.rows(), 1);
  for (size_t i = 0; i < y.rows(); ++i) y.At(i, 0) = static_cast<double>(i % 3);
  auto config = RegressionConfig();
  config.max_epochs = 30;
  auto fact = TrainFactorizedGlm(nm, y, config);
  auto mat = TrainMaterializedGlm(nm, y, config);
  ASSERT_TRUE(fact.ok());
  ASSERT_TRUE(mat.ok());
  ASSERT_EQ(fact->loss_history.size(), mat->loss_history.size());
  for (size_t e = 0; e < fact->loss_history.size(); ++e) {
    EXPECT_NEAR(fact->loss_history[e], mat->loss_history[e], 1e-9);
  }
}

TEST(FactorizedGlmTest, Validation) {
  auto nm = SmallNormalized(14);
  ml::GlmConfig config;
  EXPECT_FALSE(TrainFactorizedGlm(nm, DenseMatrix(3, 1), config).ok());
  config.family = ml::GlmFamily::kBinomial;
  DenseMatrix bad_labels(nm.rows(), 1, 0.5);
  EXPECT_FALSE(TrainFactorizedGlm(nm, bad_labels, config).ok());
  config.family = ml::GlmFamily::kGaussian;
  config.learning_rate = 0;
  EXPECT_FALSE(TrainFactorizedGlm(nm, DenseMatrix(nm.rows(), 1), config).ok());
}

// --------------------------------------------------------------------------
// Factorized k-means
// --------------------------------------------------------------------------

TEST(FactorizedKMeansTest, MatchesMaterializedInertiaScale) {
  data::StarSchemaOptions options;
  options.ns = 400;
  options.nr = 12;
  options.ds = 2;
  options.dr = 6;
  auto ds = data::MakeStarSchema(options, 15);
  auto nm = *NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});

  ml::KMeansConfig config;
  config.k = 4;
  config.max_iters = 60;
  config.seed = 5;
  config.kmeanspp_init = false;
  auto fact = TrainFactorizedKMeans(nm, config);
  auto mat = TrainMaterializedKMeans(nm, config);
  ASSERT_TRUE(fact.ok());
  ASSERT_TRUE(mat.ok());
  // Different init paths may settle in different local optima; both must be
  // valid clusterings of the same data with comparable quality.
  EXPECT_GT(fact->inertia, 0);
  EXPECT_LT(fact->inertia, mat->inertia * 2.0);
  EXPECT_LT(mat->inertia, fact->inertia * 2.0);
}

TEST(FactorizedKMeansTest, InertiaDecreases) {
  auto nm = SmallNormalized(16);
  ml::KMeansConfig config;
  config.k = 3;
  config.max_iters = 40;
  auto model = TrainFactorizedKMeans(nm, config);
  ASSERT_TRUE(model.ok());
  for (size_t i = 1; i < model->inertia_history.size(); ++i) {
    EXPECT_LE(model->inertia_history[i], model->inertia_history[i - 1] + 1e-6);
  }
}

TEST(FactorizedKMeansTest, AssignmentsConsistentWithCenters) {
  auto nm = SmallNormalized(17);
  ml::KMeansConfig config;
  config.k = 3;
  auto model = TrainFactorizedKMeans(nm, config);
  ASSERT_TRUE(model.ok());
  auto mat = nm.Materialize();
  // Each point's recorded label must be its argmin-distance center.
  for (size_t i = 0; i < mat.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_c = -1;
    for (size_t c = 0; c < config.k; ++c) {
      double d = la::RowSquaredDistance(mat, i, model->centers, c);
      if (d < best) {
        best = d;
        best_c = static_cast<int>(c);
      }
    }
    EXPECT_EQ(model->labels[i], best_c) << "row " << i;
  }
}

TEST(FactorizedKMeansTest, InvalidK) {
  auto nm = SmallNormalized(18);
  ml::KMeansConfig config;
  config.k = 0;
  EXPECT_FALSE(TrainFactorizedKMeans(nm, config).ok());
  config.k = nm.rows() + 1;
  EXPECT_FALSE(TrainFactorizedKMeans(nm, config).ok());
}

// Property sweep: factorized operators == materialized operators across
// random star-schema shapes, including multi-table and skewed keys.
class FactorizedOpsProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t, size_t>> {};

TEST_P(FactorizedOpsProperty, OperatorsAgreeWithMaterialized) {
  auto [ns, nr, ds_, dr] = GetParam();
  data::StarSchemaOptions options;
  options.ns = ns;
  options.nr = nr;
  options.ds = ds_;
  options.dr = dr;
  options.fk_zipf_skew = (ns % 2) ? 1.1 : 0.0;
  auto ds = data::MakeStarSchema(options, ns * 31 + nr);
  auto nm = *NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});
  auto mat = nm.Materialize();

  auto m = data::GaussianMatrix(nm.cols(), 2, ns + 1);
  EXPECT_TRUE(nm.Multiply(m)->ApproxEquals(la::Multiply(mat, m), 1e-8));
  auto u = data::GaussianMatrix(nm.rows(), 2, ns + 2);
  EXPECT_TRUE(nm.TransposeMultiply(u)->ApproxEquals(
      la::Multiply(la::Transpose(mat), u), 1e-8));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FactorizedOpsProperty,
    ::testing::Values(std::make_tuple(50, 5, 1, 3), std::make_tuple(101, 7, 2, 9),
                      std::make_tuple(64, 64, 3, 3), std::make_tuple(200, 2, 0, 4),
                      std::make_tuple(33, 11, 5, 1)));

}  // namespace
}  // namespace dmml::factorized
