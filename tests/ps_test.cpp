// Tests for the parameter server: the store itself, then BSP/ASP/SSP
// training runs that must all converge on a learnable problem, with
// consistency-specific invariants (BSP staleness 0, SSP bounded).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "data/generators.h"
#include "ml/metrics.h"
#include "ps/parameter_server.h"

namespace dmml::ps {
namespace {

using la::DenseMatrix;

TEST(ParameterServerTest, PushPullRoundTrip) {
  ParameterServer server(3, 2);
  std::vector<double> w;
  double b = 0;
  server.Pull(&w, &b);
  EXPECT_EQ(w, (std::vector<double>{0, 0, 0}));
  EXPECT_EQ(b, 0);

  server.Push({1.0, 2.0, 3.0}, 0.5, 0.1);
  server.Pull(&w, &b);
  EXPECT_DOUBLE_EQ(w[0], -0.1);
  EXPECT_DOUBLE_EQ(w[2], -0.3);
  EXPECT_DOUBLE_EQ(b, -0.05);
}

TEST(ParameterServerTest, SnapshotMatchesPull) {
  ParameterServer server(2, 1);
  server.Push({1.0, -1.0}, 1.0, 1.0);
  auto w = server.SnapshotWeights();
  EXPECT_DOUBLE_EQ(w.At(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(w.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(server.SnapshotIntercept(), -1.0);
}

TEST(ParameterServerTest, ClocksTrackStaleness) {
  ParameterServer server(1, 2);
  EXPECT_EQ(server.max_observed_staleness(), 0u);
  server.AdvanceClock(0);
  server.AdvanceClock(0);
  EXPECT_EQ(server.max_observed_staleness(), 2u);  // Worker 1 stuck at 0.
  server.AdvanceClock(1);
  server.AdvanceClock(1);
  EXPECT_EQ(server.max_observed_staleness(), 2u);  // Historical max.
}

TEST(ParameterServerTest, BarrierReleasesWhenAllArrive) {
  ParameterServer server(1, 2);
  std::thread slow([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server.AdvanceClock(1);
  });
  server.AdvanceClock(0);
  server.Barrier(1);  // Must block until `slow` advances worker 1.
  slow.join();
  EXPECT_EQ(server.max_observed_staleness(), 1u);
}

TEST(ParameterServerTest, WaitForSlowestBlocksFastWorker) {
  ParameterServer server(1, 2);
  // Worker 0 is 3 epochs ahead; bound 2 must block it until worker 1 moves.
  server.AdvanceClock(0);
  server.AdvanceClock(0);
  server.AdvanceClock(0);
  std::thread unblocker([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server.AdvanceClock(1);
  });
  server.WaitForSlowest(0, 2);
  unblocker.join();
  SUCCEED();
}

PsConfig BaseConfig() {
  PsConfig config;
  config.num_workers = 3;
  config.epochs = 25;
  config.learning_rate = 0.2;
  config.batch_size = 16;
  config.family = ml::GlmFamily::kBinomial;
  return config;
}

class PsModeTest : public ::testing::TestWithParam<ConsistencyMode> {};

TEST_P(PsModeTest, ConvergesOnSeparableProblem) {
  auto ds = data::MakeClassification(600, 4, 0.0, 21);
  PsConfig config = BaseConfig();
  config.mode = GetParam();
  auto result = TrainGlmParameterServer(ds.x, ds.y, config);
  ASSERT_TRUE(result.ok());
  auto labels = result->model.PredictLabels(ds.x);
  ASSERT_TRUE(labels.ok());
  EXPECT_GT(*ml::Accuracy(ds.y, *labels), 0.85)
      << ConsistencyModeName(GetParam());
  EXPECT_GT(result->total_pushes, 0u);
  // Loss per epoch was recorded for every round.
  ASSERT_EQ(result->loss_per_epoch.size(), config.epochs);
  for (double loss : result->loss_per_epoch) EXPECT_FALSE(std::isnan(loss));
  // Later losses should not exceed the early ones. Under ASP the epoch
  // snapshots race with fast workers, so allow a small tolerance instead of
  // asserting strict decrease.
  EXPECT_LT(result->loss_per_epoch.back(), result->loss_per_epoch.front() * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Modes, PsModeTest,
                         ::testing::Values(ConsistencyMode::kBsp,
                                           ConsistencyMode::kAsync,
                                           ConsistencyMode::kSsp));

TEST(PsTrainingTest, BspNeverObservesStalenessAboveOne) {
  auto ds = data::MakeClassification(300, 3, 0.0, 22);
  PsConfig config = BaseConfig();
  config.mode = ConsistencyMode::kBsp;
  auto result = TrainGlmParameterServer(ds.x, ds.y, config);
  ASSERT_TRUE(result.ok());
  // Within one round workers can differ by at most 1 epoch under BSP.
  EXPECT_LE(result->max_observed_staleness, 1u);
}

TEST(PsTrainingTest, SspRespectsStalenessBound) {
  auto ds = data::MakeClassification(300, 3, 0.0, 23);
  PsConfig config = BaseConfig();
  config.mode = ConsistencyMode::kSsp;
  config.staleness_bound = 2;
  auto result = TrainGlmParameterServer(ds.x, ds.y, config);
  ASSERT_TRUE(result.ok());
  // A worker must never run more than bound+1 epochs ahead of the slowest.
  EXPECT_LE(result->max_observed_staleness, config.staleness_bound + 1);
}

TEST(PsTrainingTest, GaussianFamilyRegression) {
  auto ds = data::MakeRegression(500, 4, 0.05, 24);
  PsConfig config = BaseConfig();
  config.family = ml::GlmFamily::kGaussian;
  config.learning_rate = 0.05;
  config.epochs = 40;
  auto result = TrainGlmParameterServer(ds.x, ds.y, config);
  ASSERT_TRUE(result.ok());
  auto pred = result->model.Predict(ds.x);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(*ml::R2(ds.y, *pred), 0.9);
}

TEST(PsTrainingTest, SingleWorkerDegeneratesToMiniBatchSgd) {
  auto ds = data::MakeClassification(200, 3, 0.05, 25);
  PsConfig config = BaseConfig();
  config.num_workers = 1;
  auto result = TrainGlmParameterServer(ds.x, ds.y, config);
  ASSERT_TRUE(result.ok());
  // A single worker can never observe a clock spread.
  EXPECT_EQ(result->max_observed_staleness, 0u);
  auto labels = result->model.PredictLabels(ds.x);
  EXPECT_GT(*ml::Accuracy(ds.y, *labels), 0.8);
}

TEST(PsTrainingTest, MoreWorkersThanExamplesIsHandled) {
  auto ds = data::MakeClassification(5, 2, 0.0, 26);
  PsConfig config = BaseConfig();
  config.num_workers = 16;
  config.epochs = 5;
  auto result = TrainGlmParameterServer(ds.x, ds.y, config);
  ASSERT_TRUE(result.ok());
}

TEST(PsTrainingTest, Validation) {
  auto ds = data::MakeClassification(50, 2, 0.0, 27);
  PsConfig config = BaseConfig();
  config.num_workers = 0;
  EXPECT_FALSE(TrainGlmParameterServer(ds.x, ds.y, config).ok());
  config = BaseConfig();
  EXPECT_FALSE(TrainGlmParameterServer(DenseMatrix(0, 2), DenseMatrix(0, 1),
                                       config)
                   .ok());
  EXPECT_FALSE(
      TrainGlmParameterServer(ds.x, DenseMatrix(ds.x.rows(), 1, 0.5), config).ok());
}

TEST(PsTrainingTest, ModeNames) {
  EXPECT_STREQ(ConsistencyModeName(ConsistencyMode::kBsp), "BSP");
  EXPECT_STREQ(ConsistencyModeName(ConsistencyMode::kAsync), "ASP");
  EXPECT_STREQ(ConsistencyModeName(ConsistencyMode::kSsp), "SSP");
}

}  // namespace
}  // namespace dmml::ps
