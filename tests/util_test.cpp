// Tests for the util substrate: Status/Result, logging levels, Rng,
// string utilities, CSV parsing and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/csv.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace dmml {
namespace {

// --------------------------------------------------------------------------
// Status / Result
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad value");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad value");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad value");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailThenPropagate() {
  DMML_RETURN_IF_ERROR(Status::IOError("disk gone"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailThenPropagate();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> DoubleIt(int v) {
  DMML_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = DoubleIt(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = DoubleIt(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(DoubleIt(-3).ValueOr(7), 7);
  EXPECT_EQ(DoubleIt(3).ValueOr(7), 6);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 5);
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int diffs = 0;
  for (int i = 0; i < 20; ++i) diffs += a.Next() != b.Next();
  EXPECT_GT(diffs, 15);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NormalHasRoughlyZeroMeanUnitVar) {
  Rng rng(99);
  const int n = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  ZipfGenerator zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(&rng)]++;
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], counts[10]);
}

TEST(RngTest, ZipfZeroSkewIsUniformish) {
  Rng rng(11);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Sample(&rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 5000, 600);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto original = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
  EXPECT_NE(v, original);  // With overwhelming probability.
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) counts[rng.Discrete(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Split();
  Rng b(42);
  b.Next();  // Split consumed one value.
  EXPECT_EQ(a.Next(), b.Next());
  // Child stream should differ from parent's continuation.
  EXPECT_NE(child.Next(), a.Next());
}

// --------------------------------------------------------------------------
// String utils
// --------------------------------------------------------------------------

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilsTest, TrimStripsWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilsTest, ParseDoubleAcceptsNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -1e3 "), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(StringUtilsTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilsTest, ParseInt64RoundTrips) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_EQ(*ParseInt64("9007199254740993"), 9007199254740993LL);
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringUtilsTest, JoinConcatenates) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

// --------------------------------------------------------------------------
// CSV
// --------------------------------------------------------------------------

TEST(CsvTest, ParsesSimpleDocument) {
  auto doc = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1][2], "6");
}

TEST(CsvTest, HandlesQuotedFieldsWithCommasAndQuotes) {
  auto doc = ParseCsv("name,desc\n\"Smith, John\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "Smith, John");
  EXPECT_EQ(doc->rows[0][1], "said \"hi\"");
}

TEST(CsvTest, HandlesNewlinesInsideQuotes) {
  auto doc = ParseCsv("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "line1\nline2");
}

TEST(CsvTest, HandlesCrLf) {
  auto doc = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][1], "2");
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"unterminated\n").ok());
}

TEST(CsvTest, NoHeaderMode) {
  CsvOptions opts;
  opts.has_header = false;
  auto doc = ParseCsv("1,2\n3,4\n", opts);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->header.empty());
  EXPECT_EQ(doc->rows.size(), 2u);
}

TEST(CsvTest, EmptyHeaderOnlyDocument) {
  auto doc = ParseCsv("a,b\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->rows.empty());
}

TEST(CsvTest, EscapeQuotesWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(EscapeCsvField("nl\n"), "\"nl\n\"");
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/dmml_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, {"x", "y"}, {{"1", "a,b"}, {"2", "c"}}).ok());
  auto doc = ReadCsvFile(path);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(doc->rows[0][1], "a,b");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto doc = ReadCsvFile("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kIOError);
}

// --------------------------------------------------------------------------
// ThreadPool
// --------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 1000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForNullPoolRunsInline) {
  int calls = 0;
  ParallelFor(nullptr, 10, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    calls++;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForZeroElements) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, WaitAllBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&done] { done++; });
  }
  pool.WaitAll();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, WaitGroupTracksFanOutWithoutFutures) {
  ThreadPool pool(4);
  WaitGroup wg;
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit(wg, [&counter] { counter++; });
  }
  pool.Wait(wg);
  EXPECT_EQ(counter.load(), 200);
  EXPECT_TRUE(wg.TryWait());
}

TEST(ThreadPoolTest, WaitGroupStandaloneWait) {
  WaitGroup wg;
  EXPECT_TRUE(wg.TryWait());
  wg.Add(2);
  EXPECT_FALSE(wg.TryWait());
  std::thread t([&wg] {
    wg.Done();
    wg.Done();
  });
  wg.Wait();
  EXPECT_TRUE(wg.TryWait());
  t.join();
}

// The deadlock regression the cooperative wait exists for: a pool task that
// itself fans out subtasks and waits for them, on a pool with one worker.
// With a sleeping wait the worker would block forever inside the outer task;
// cooperative waiting drains the subtasks on the blocked thread instead.
TEST(ThreadPoolTest, NestedSubmissionOnSingleThreadPoolDoesNotDeadlock) {
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  WaitGroup outer;
  pool.Submit(outer, [&pool, &inner] {
    WaitGroup wg;
    for (int i = 0; i < 8; ++i) {
      pool.Submit(wg, [&inner] { inner++; });
    }
    pool.Wait(wg);
  });
  pool.Wait(outer);
  EXPECT_EQ(inner.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelForChunksSharesOnePool) {
  ThreadPool pool(2);
  std::atomic<int> cells{0};
  ParallelForChunks(&pool, 4, /*grain=*/1, [&pool, &cells](size_t, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      ParallelForChunks(&pool, 4, /*grain=*/1,
                        [&cells](size_t, size_t b2, size_t e2) {
                          cells += static_cast<int>(e2 - b2);
                        });
    }
  });
  EXPECT_EQ(cells.load(), 16);
}

TEST(ThreadPoolTest, TryRunOneTaskDrainsQueue) {
  ThreadPool pool(1);
  // Park the single worker so submissions stay queued; wait for the park to
  // start so the main thread cannot pick it up itself below.
  std::atomic<bool> parked_started{false};
  std::atomic<bool> release{false};
  WaitGroup parked;
  pool.Submit(parked, [&parked_started, &release] {
    parked_started = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked_started.load()) std::this_thread::yield();
  std::atomic<int> ran{0};
  WaitGroup wg;
  for (int i = 0; i < 4; ++i) pool.Submit(wg, [&ran] { ran++; });
  while (pool.TryRunOneTask()) {
  }
  EXPECT_EQ(ran.load(), 4);
  EXPECT_FALSE(pool.TryRunOneTask());
  release = true;
  pool.Wait(parked);
  pool.Wait(wg);
}

// The self-steal deadlock regression: a task holding a claim (PoolClaimScope)
// waits on its own fan-out; cooperative stealing there must be restricted to
// that fan-out's tasks. Deterministic setup on a 1-thread pool: an unrelated
// task B sits ahead of the claim holder's chunk in the queue, and B blocks on
// a flag only the claim holder sets after its wait returns. An unrestricted
// wait steals B first and hangs forever (B spins above the frame that must
// resume to unblock it); a claim-aware wait skips B, runs the chunk, and
// completes.
TEST(ThreadPoolTest, ClaimHolderWaitStealsOnlyItsOwnGroup) {
  ThreadPool pool(1);
  std::atomic<bool> claim_released{false};
  std::atomic<bool> chunk_ran{false};
  std::atomic<bool> would_deadlock{false};
  WaitGroup run;
  pool.Submit(run, [&] {
    PoolClaimScope claim;
    claim.Acquire();
    WaitGroup chunks;
    pool.Submit(chunks, [&chunk_ran] { chunk_ran = true; });
    pool.Wait(chunks);  // Must run only `chunks` tasks, never task B below.
    claim_released = true;
  });
  pool.Submit(run, [&] {  // Task B: ordered behind A, ahead of A's chunk.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!claim_released.load()) {
      if (std::chrono::steady_clock::now() > deadline) {
        would_deadlock = true;
        return;
      }
      std::this_thread::yield();
    }
  });
  pool.Wait(run);
  EXPECT_TRUE(chunk_ran.load());
  EXPECT_FALSE(would_deadlock.load())
      << "claim holder stole a task that blocks on its claim";
}

TEST(ThreadPoolTest, WithoutClaimWaitStillStealsAnyTask) {
  // The restriction is opt-in: a claimless waiter keeps draining the whole
  // queue (the run-level driver in the executor depends on this).
  ThreadPool pool(1);
  std::atomic<bool> parked_started{false};
  std::atomic<bool> release{false};
  WaitGroup parked;
  pool.Submit(parked, [&] {
    parked_started = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked_started.load()) std::this_thread::yield();
  std::atomic<int> ran{0};
  WaitGroup other;
  for (int i = 0; i < 3; ++i) pool.Submit(other, [&ran] { ran++; });
  WaitGroup mine;
  pool.Submit(mine, [&ran] { ran++; });
  pool.Wait(mine);  // Drains `other`'s queued tasks en route to its own.
  EXPECT_EQ(ran.load(), 4);
  release = true;
  pool.Wait(parked);
  pool.Wait(other);
}

TEST(ThreadPoolTest, TaskBodyExceptionRethrownInWaitAfterDrain) {
  // A throwing task body must not unwind a worker (std::terminate) or strand
  // the WaitGroup; the first exception surfaces in the waiter once every
  // task of the group has finished, and the pool stays usable.
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  WaitGroup wg;
  pool.Submit(wg, [] { throw std::runtime_error("chunk failed"); });
  for (int i = 0; i < 4; ++i) pool.Submit(wg, [&survivors] { survivors++; });
  EXPECT_THROW(pool.Wait(wg), std::runtime_error);
  EXPECT_TRUE(wg.TryWait()) << "group must be fully drained before rethrow";
  EXPECT_EQ(survivors.load(), 4);

  std::atomic<bool> after{false};
  WaitGroup ok;
  pool.Submit(ok, [&after] { after = true; });
  pool.Wait(ok);
  EXPECT_TRUE(after.load());
}

TEST(ThreadPoolTest, ParallelForChunksPropagatesChunkException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      ParallelForChunks(&pool, 8, /*grain=*/1,
                        [](size_t chunk, size_t, size_t) {
                          if (chunk == 1) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, DefaultThreadPoolSizeHonorsEnvOverrides) {
  // DMML_THREADS wins over DMML_NUM_THREADS; both fall back to hardware
  // concurrency when absent or non-positive.
  setenv("DMML_NUM_THREADS", "3", 1);
  unsetenv("DMML_THREADS");
  EXPECT_EQ(DefaultThreadPoolSize(), 3u);
  setenv("DMML_THREADS", "5", 1);
  EXPECT_EQ(DefaultThreadPoolSize(), 5u);
  setenv("DMML_THREADS", "garbage", 1);
  EXPECT_EQ(DefaultThreadPoolSize(), 3u);
  unsetenv("DMML_THREADS");
  unsetenv("DMML_NUM_THREADS");
  EXPECT_GE(DefaultThreadPoolSize(), 1u);
}

// --------------------------------------------------------------------------
// Logging
// --------------------------------------------------------------------------

// Restores the process log level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, PrefixCarriesLevelTimestampThreadAndLocation) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  DMML_LOG(Warning) << "prefix probe";
  std::string out = ::testing::internal::GetCapturedStderr();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("WARN "), std::string::npos);
  EXPECT_NE(out.find(" t"), std::string::npos);
  EXPECT_NE(out.find("util_test.cpp:"), std::string::npos);
  EXPECT_NE(out.find("] prefix probe\n"), std::string::npos);
  // HH:MM:SS — two colons inside the bracketed prefix.
  std::string prefix = out.substr(0, out.find(']'));
  size_t colons = 0;
  for (char c : prefix) colons += (c == ':');
  EXPECT_GE(colons, 3u);  // Two in the timestamp, one in file:line.
}

TEST_F(LoggingTest, MessagesBelowThresholdAreSuppressed) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  DMML_LOG(Info) << "should not appear";
  DMML_LOG(Warning) << "nor this";
  DMML_LOG(Error) << "only this";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("should not appear"), std::string::npos);
  EXPECT_EQ(out.find("nor this"), std::string::npos);
  EXPECT_NE(out.find("only this"), std::string::npos);
}

TEST_F(LoggingTest, ConcurrentWritersNeverInterleaveWithinALine) {
  SetLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kLines = 50;
  ::testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        DMML_LOG(Info) << "writer=" << t << " line=" << i << " tail";
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string out = ::testing::internal::GetCapturedStderr();

  std::istringstream lines(out);
  std::string line;
  int matched = 0;
  while (std::getline(lines, line)) {
    if (line.find("writer=") == std::string::npos) continue;
    // Every emitted line must be whole: prefix at the front, marker at the
    // end, and exactly one prefix (no other line spliced into it).
    EXPECT_EQ(line.front(), '[') << line;
    EXPECT_EQ(line.substr(line.size() - 4), "tail") << line;
    EXPECT_EQ(line.find("writer="), line.rfind("writer=")) << line;
    ++matched;
  }
  EXPECT_EQ(matched, kThreads * kLines);
}

}  // namespace
}  // namespace dmml
