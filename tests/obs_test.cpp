// Tests for the dmml::obs metrics registry and scoped tracing.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON validator: enough to assert the exporters
// emit syntactically well-formed documents without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }
  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return pos_ < s_.size() && s_[pos_++] == '"';
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (Literal("true") || Literal("false") || Literal("null")) return true;
    return Number();
  }
  bool Object() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    do {
      SkipWs();
      if (!String()) return false;
      if (!Consume(':')) return false;
      if (!Value()) return false;
    } while (Consume(','));
    return Consume('}');
  }
  bool Array() {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    do {
      if (!Value()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(JsonCheckerTest, SanityOnKnownInputs) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,2.5,"x\"y"],"b":{"c":true}})").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1,)").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a" 1})").Valid());
}

// ---------------------------------------------------------------------------
// Registry

TEST(MetricsRegistryTest, LookupReturnsStablePointer) {
  auto& reg = MetricsRegistry::Global();
  Counter* c1 = reg.GetCounter("obs_test.stable");
  Counter* c2 = reg.GetCounter("obs_test.stable");
  EXPECT_EQ(c1, c2);

  Gauge* g1 = reg.GetGauge("obs_test.gauge");
  Gauge* g2 = reg.GetGauge("obs_test.gauge");
  EXPECT_EQ(g1, g2);
}

TEST(MetricsRegistryTest, HistogramReRegistrationKeepsFirstBounds) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h1 = reg.GetHistogram("obs_test.hist_bounds", {1.0, 2.0});
  Histogram* h2 = reg.GetHistogram("obs_test.hist_bounds", {100.0, 200.0, 300.0});
  EXPECT_EQ(h1, h2);
  ASSERT_EQ(h1->bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h1->bounds()[0], 1.0);
}

TEST(MetricsRegistryTest, CountersAndGaugesRoundTrip) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test.roundtrip");
  c->Reset();
  c->Add(5);
  c->Add();
  EXPECT_EQ(c->Value(), 6u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);

  Gauge* g = reg.GetGauge("obs_test.gauge_roundtrip");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
  g->Add(-1.0);
  EXPECT_DOUBLE_EQ(g->Value(), 1.5);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  Counter* c = MetricsRegistry::Global().GetCounter("obs_test.concurrent");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kIncrements; ++i) c->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kIncrements);
}

// ---------------------------------------------------------------------------
// Histogram semantics

TEST(HistogramTest, BucketEdges) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // bucket 0 (v <= 1)
  h.Observe(1.0);  // bucket 0: a value equal to a bound lands at that bound
  h.Observe(1.5);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(5.0);  // overflow
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.4);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) h.Observe(1.5);
  for (int i = 0; i < 10; ++i) h.Observe(7.0);
  double p50 = h.Percentile(50);
  double p99 = h.Percentile(99);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 8.0);
  EXPECT_DOUBLE_EQ(Histogram({1.0}).Percentile(50), 0.0);  // Empty → 0.
}

TEST(HistogramTest, ExponentialBucketsAscend) {
  auto bounds = ExponentialBuckets(8, 4, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 8.0);
  EXPECT_DOUBLE_EQ(bounds[4], 8.0 * 256.0);
  for (size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h({1.0, 2.0});
  h.Observe(0.5);
  h.Observe(10.0);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

// ---------------------------------------------------------------------------
// Exporters

TEST(SnapshotTest, TextSnapshotListsNonzeroInstruments) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test.text_counter")->Reset();
  reg.GetCounter("obs_test.text_counter")->Add(7);
  reg.GetGauge("obs_test.text_gauge")->Set(1.25);
  reg.GetHistogram("obs_test.text_hist", {1.0, 10.0})->Observe(3.0);
  std::string text = reg.TextSnapshot();
  EXPECT_NE(text.find("counter obs_test.text_counter 7"), std::string::npos);
  EXPECT_NE(text.find("gauge obs_test.text_gauge 1.25"), std::string::npos);
  EXPECT_NE(text.find("histogram obs_test.text_hist"), std::string::npos);
}

TEST(SnapshotTest, JsonSnapshotIsValidJson) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter(R"(obs_test.we"ird\name)")->Add(1);
  reg.GetHistogram("obs_test.json_hist", {0.5, 5.0})->Observe(1.0);
  std::string json = reg.JsonSnapshot();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = TracingEnabled();
    ClearTrace();
  }
  void TearDown() override {
    SetTracingEnabled(was_enabled_);
    ClearTrace();
  }
  bool was_enabled_ = false;
};

TEST_F(TracingTest, DisabledRecordsNothing) {
  SetTracingEnabled(false);
  {
    DMML_TRACE_SPAN("obs_test.disabled");
  }
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(TracingTest, NestedSpansRecordInnerBeforeOuter) {
  SetTracingEnabled(true);
  {
    DMML_TRACE_SPAN("obs_test.outer");
    {
      DMML_TRACE_SPAN("obs_test.inner");
    }
  }
  auto events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tid, events[1].tid);
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "obs_test.outer") outer = &e;
    if (std::string(e.name) == "obs_test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner span nests inside the outer one.
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us, outer->start_us + outer->dur_us);
}

TEST_F(TracingTest, CollectsEventsFromExitedThreads) {
  SetTracingEnabled(true);
  std::thread([] { DMML_TRACE_SPAN("obs_test.worker_span"); }).join();
  auto events = CollectTraceEvents();
  bool found = false;
  for (const auto& e : events) {
    if (std::string(e.name) == "obs_test.worker_span") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TracingTest, ChromeTraceJsonIsValid) {
  SetTracingEnabled(true);
  {
    DMML_TRACE_SPAN("obs_test.chrome");
  }
  std::string json = ChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("obs_test.chrome"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TracingTest, ThreadIdsAreDenseAndStable) {
  uint32_t id1 = ThisThreadId();
  uint32_t id2 = ThisThreadId();
  EXPECT_EQ(id1, id2);
  std::atomic<uint32_t> other{0};
  std::thread([&] { other = ThisThreadId(); }).join();
  EXPECT_NE(other.load(), id1);
}

// ---------------------------------------------------------------------------
// Hot-path macros

TEST(MacroTest, CounterAndHistogramMacrosReachRegistry) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test.macro_counter")->Reset();
  for (int i = 0; i < 3; ++i) DMML_COUNTER_INC("obs_test.macro_counter");
  DMML_COUNTER_ADD("obs_test.macro_counter", 7);
  EXPECT_EQ(reg.GetCounter("obs_test.macro_counter")->Value(), 10u);

  DMML_GAUGE_SET("obs_test.macro_gauge", 3.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("obs_test.macro_gauge")->Value(), 3.5);

  DMML_HISTOGRAM_OBSERVE("obs_test.macro_hist", obs::ExponentialBuckets(1, 2, 4), 3.0);
  EXPECT_EQ(reg.GetHistogram("obs_test.macro_hist", {})->TotalCount(), 1u);
}

}  // namespace
}  // namespace dmml::obs
