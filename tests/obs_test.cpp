// Tests for the dmml::obs metrics registry, scoped tracing, the profile
// registry, and the HTTP exposition server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile_registry.h"
#include "obs/server.h"
#include "obs/trace.h"

namespace dmml::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON validator: enough to assert the exporters
// emit syntactically well-formed documents without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }
  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return pos_ < s_.size() && s_[pos_++] == '"';
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (Literal("true") || Literal("false") || Literal("null")) return true;
    return Number();
  }
  bool Object() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    do {
      SkipWs();
      if (!String()) return false;
      if (!Consume(':')) return false;
      if (!Value()) return false;
    } while (Consume(','));
    return Consume('}');
  }
  bool Array() {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    do {
      if (!Value()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(JsonCheckerTest, SanityOnKnownInputs) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,2.5,"x\"y"],"b":{"c":true}})").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1,)").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a" 1})").Valid());
}

// ---------------------------------------------------------------------------
// Registry

TEST(MetricsRegistryTest, LookupReturnsStablePointer) {
  auto& reg = MetricsRegistry::Global();
  Counter* c1 = reg.GetCounter("obs_test.stable");
  Counter* c2 = reg.GetCounter("obs_test.stable");
  EXPECT_EQ(c1, c2);

  Gauge* g1 = reg.GetGauge("obs_test.gauge");
  Gauge* g2 = reg.GetGauge("obs_test.gauge");
  EXPECT_EQ(g1, g2);
}

TEST(MetricsRegistryTest, HistogramReRegistrationKeepsFirstBounds) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h1 = reg.GetHistogram("obs_test.hist_bounds", {1.0, 2.0});
  Histogram* h2 = reg.GetHistogram("obs_test.hist_bounds", {100.0, 200.0, 300.0});
  EXPECT_EQ(h1, h2);
  ASSERT_EQ(h1->bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h1->bounds()[0], 1.0);
}

TEST(MetricsRegistryTest, CountersAndGaugesRoundTrip) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test.roundtrip");
  c->Reset();
  c->Add(5);
  c->Add();
  EXPECT_EQ(c->Value(), 6u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);

  Gauge* g = reg.GetGauge("obs_test.gauge_roundtrip");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
  g->Add(-1.0);
  EXPECT_DOUBLE_EQ(g->Value(), 1.5);
}

TEST(MetricsRegistryTest, GaugeSetMaxIsMonotonic) {
  Gauge* g = MetricsRegistry::Global().GetGauge("obs_test.gauge_setmax");
  g->Set(0.0);
  g->SetMax(4.0);
  EXPECT_DOUBLE_EQ(g->Value(), 4.0);
  g->SetMax(2.0);  // A smaller peak never lowers the recorded maximum.
  EXPECT_DOUBLE_EQ(g->Value(), 4.0);
  g->SetMax(7.5);
  EXPECT_DOUBLE_EQ(g->Value(), 7.5);

  // Concurrent recorders: the surviving value is the true global peak.
  std::vector<std::thread> threads;
  for (int t = 1; t <= 8; ++t) {
    threads.emplace_back([g, t] {
      for (int i = 0; i < 2000; ++i) g->SetMax(static_cast<double>(t * i));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(g->Value(), 8.0 * 1999.0);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  Counter* c = MetricsRegistry::Global().GetCounter("obs_test.concurrent");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kIncrements; ++i) c->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kIncrements);
}

// ---------------------------------------------------------------------------
// Histogram semantics

TEST(HistogramTest, BucketEdges) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // bucket 0 (v <= 1)
  h.Observe(1.0);  // bucket 0: a value equal to a bound lands at that bound
  h.Observe(1.5);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(5.0);  // overflow
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.4);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) h.Observe(1.5);
  for (int i = 0; i < 10; ++i) h.Observe(7.0);
  double p50 = h.Percentile(50);
  double p99 = h.Percentile(99);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 8.0);
  EXPECT_DOUBLE_EQ(Histogram({1.0}).Percentile(50), 0.0);  // Empty → 0.
}

TEST(HistogramTest, ExponentialBucketsAscend) {
  auto bounds = ExponentialBuckets(8, 4, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 8.0);
  EXPECT_DOUBLE_EQ(bounds[4], 8.0 * 256.0);
  for (size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h({1.0, 2.0});
  h.Observe(0.5);
  h.Observe(10.0);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

// ---------------------------------------------------------------------------
// Exporters

TEST(SnapshotTest, TextSnapshotListsNonzeroInstruments) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test.text_counter")->Reset();
  reg.GetCounter("obs_test.text_counter")->Add(7);
  reg.GetGauge("obs_test.text_gauge")->Set(1.25);
  reg.GetHistogram("obs_test.text_hist", {1.0, 10.0})->Observe(3.0);
  std::string text = reg.TextSnapshot();
  EXPECT_NE(text.find("counter obs_test.text_counter 7"), std::string::npos);
  EXPECT_NE(text.find("gauge obs_test.text_gauge 1.25"), std::string::npos);
  EXPECT_NE(text.find("histogram obs_test.text_hist"), std::string::npos);
}

TEST(SnapshotTest, JsonSnapshotIsValidJson) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter(R"(obs_test.we"ird\name)")->Add(1);
  reg.GetHistogram("obs_test.json_hist", {0.5, 5.0})->Observe(1.0);
  std::string json = reg.JsonSnapshot();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = TracingEnabled();
    ClearTrace();
  }
  void TearDown() override {
    SetTracingEnabled(was_enabled_);
    ClearTrace();
  }
  bool was_enabled_ = false;
};

TEST_F(TracingTest, DisabledRecordsNothing) {
  SetTracingEnabled(false);
  {
    DMML_TRACE_SPAN("obs_test.disabled");
  }
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(TracingTest, NestedSpansRecordInnerBeforeOuter) {
  SetTracingEnabled(true);
  {
    DMML_TRACE_SPAN("obs_test.outer");
    {
      DMML_TRACE_SPAN("obs_test.inner");
    }
  }
  auto events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tid, events[1].tid);
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "obs_test.outer") outer = &e;
    if (std::string(e.name) == "obs_test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner span nests inside the outer one.
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us, outer->start_us + outer->dur_us);
}

TEST_F(TracingTest, CollectsEventsFromExitedThreads) {
  SetTracingEnabled(true);
  std::thread([] { DMML_TRACE_SPAN("obs_test.worker_span"); }).join();
  auto events = CollectTraceEvents();
  bool found = false;
  for (const auto& e : events) {
    if (std::string(e.name) == "obs_test.worker_span") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TracingTest, ChromeTraceJsonIsValid) {
  SetTracingEnabled(true);
  {
    DMML_TRACE_SPAN("obs_test.chrome");
  }
  std::string json = ChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("obs_test.chrome"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TracingTest, ThreadIdsAreDenseAndStable) {
  uint32_t id1 = ThisThreadId();
  uint32_t id2 = ThisThreadId();
  EXPECT_EQ(id1, id2);
  std::atomic<uint32_t> other{0};
  std::thread([&] { other = ThisThreadId(); }).join();
  EXPECT_NE(other.load(), id1);
}

TEST(SnapshotTest, ExportsCarryQuantiles) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("obs_test.quantile_hist", {1.0, 2.0, 4.0, 8.0});
  h->Reset();
  for (int i = 0; i < 95; ++i) h->Observe(1.5);
  for (int i = 0; i < 5; ++i) h->Observe(7.0);

  std::string text = reg.TextSnapshot();
  size_t line = text.find("histogram obs_test.quantile_hist");
  ASSERT_NE(line, std::string::npos);
  std::string row = text.substr(line, text.find('\n', line) - line);
  for (const char* field : {"mean=", "p50=", "p95=", "p99="}) {
    EXPECT_NE(row.find(field), std::string::npos) << field << " in: " << row;
  }

  std::string json = reg.JsonSnapshot();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  size_t obj = json.find("\"obs_test.quantile_hist\"");
  ASSERT_NE(obj, std::string::npos);
  std::string hist_obj = json.substr(obj, json.find('}', obj) - obj);
  for (const char* field : {"\"mean\":", "\"p50\":", "\"p95\":", "\"p99\":"}) {
    EXPECT_NE(hist_obj.find(field), std::string::npos)
        << field << " in: " << hist_obj;
  }

  // The quantiles must bracket the data: p50 within the 1–2 bucket, p99 in
  // the 4–8 bucket (both bucket-interpolated).
  EXPECT_GT(h->Percentile(50), 1.0);
  EXPECT_LE(h->Percentile(50), 2.0);
  EXPECT_GT(h->Percentile(99), 4.0);
  EXPECT_LE(h->Percentile(99), 8.0);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

// ---------------------------------------------------------------------------
// Trace-ring semantics

TEST_F(TracingTest, RingOverflowKeepsTheNewestCapacityEvents) {
  const size_t cap = TraceRingCapacity();
  const size_t extra = 100;
  // Record straight into this thread's ring: start times are the sequence
  // number, so the retained window is directly checkable.
  for (size_t i = 0; i < cap + extra; ++i) {
    RecordSpan("obs_test.ring", /*start_us=*/i, /*end_us=*/i + 1);
  }
  auto events = CollectTraceEvents();
  size_t ours = 0;
  uint64_t min_start = UINT64_MAX;
  uint64_t max_start = 0;
  for (const auto& e : events) {
    if (std::string(e.name) != "obs_test.ring") continue;
    ++ours;
    min_start = std::min(min_start, e.start_us);
    max_start = std::max(max_start, e.start_us);
  }
  // Exactly one ring of events survives; the `extra` oldest were overwritten.
  EXPECT_EQ(ours, cap);
  EXPECT_EQ(min_start, extra);
  EXPECT_EQ(max_start, cap + extra - 1);
}

TEST_F(TracingTest, ChromeTraceJsonEscapesHostileSpanNames) {
  // Span names flow into JSON string literals; quotes, backslashes, and
  // control characters must come out escaped (static storage: names must
  // outlive the ring).
  static const char kHostile[] = "obs_test.\"quoted\\back\nnewline\x02";
  RecordSpan(kHostile, 1, 2);
  std::string json = ChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\\\"quoted"), std::string::npos);
  EXPECT_NE(json.find("\\\\back"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\u0002"), std::string::npos);
  // No raw newline may survive inside the document.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Profile registry

TEST(ProfileRegistryTest, RegisterSnapshotUnregister) {
  auto& reg = ProfileRegistry::Global();
  const size_t before = reg.size();
  auto full = reg.Register("obs_test.profile",
                           [] { return std::string("{\"x\":1}"); });
  auto empty = reg.Register("obs_test.empty", [] { return std::string(); });
  EXPECT_EQ(reg.size(), before + 2);

  std::string json = reg.JsonSnapshot();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"obs_test.profile\":{\"x\":1}"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.empty\":null"), std::string::npos);  // → null

  reg.Unregister("obs_test.profile", full);
  reg.Unregister("obs_test.empty", empty);
  EXPECT_EQ(reg.size(), before);
}

TEST(ProfileRegistryTest, StaleTokenCannotRemoveNewerSameNameRegistration) {
  auto& reg = ProfileRegistry::Global();
  const size_t before = reg.size();
  // Two concurrent trainers of the same kind register under one span name;
  // the first scope's teardown must not take down the second's entry.
  auto first = reg.Register("obs_test.dup", [] { return std::string("1"); });
  auto second = reg.Register("obs_test.dup", [] { return std::string("2"); });
  EXPECT_EQ(reg.size(), before + 1);

  reg.Unregister("obs_test.dup", first);  // stale token: leaves `second` live
  EXPECT_EQ(reg.size(), before + 1);
  EXPECT_NE(reg.JsonSnapshot().find("\"obs_test.dup\":2"), std::string::npos);

  reg.Unregister("obs_test.dup", second);
  EXPECT_EQ(reg.size(), before);
  reg.Unregister("obs_test.dup", second);  // double unregister: no-op
  EXPECT_EQ(reg.size(), before);
}

TEST(ProfileRegistryTest, UnregisterBlocksUntilInFlightInvocationReturns) {
  auto& reg = ProfileRegistry::Global();
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<bool> provider_done{false};
  auto token = reg.Register("obs_test.slow", [&] {
    entered = true;
    while (!release) std::this_thread::yield();
    provider_done = true;
    return std::string("{}");
  });

  std::thread scraper([&] { (void)reg.JsonSnapshot(); });
  while (!entered) std::this_thread::yield();
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release = true;
  });

  // The scrape is inside the provider right now; Unregister must not return
  // until it does — the registrant destroys the provider's referents next.
  reg.Unregister("obs_test.slow", token);
  EXPECT_TRUE(provider_done.load());

  scraper.join();
  releaser.join();
}

TEST(ProfileRegistryTest, ScopedRegistrationIsRaiiAndMovable) {
  auto& reg = ProfileRegistry::Global();
  const size_t before = reg.size();
  {
    ScopedProfileRegistration outer;
    {
      ScopedProfileRegistration inner("obs_test.scoped",
                                      [] { return std::string("[]"); });
      EXPECT_EQ(reg.size(), before + 1);
      outer = std::move(inner);  // ownership moves; no double unregister
    }
    EXPECT_EQ(reg.size(), before + 1);
  }
  EXPECT_EQ(reg.size(), before);
}

// ---------------------------------------------------------------------------
// Exposition server

namespace {

// Minimal raw-socket HTTP/1.1 GET against 127.0.0.1:`port`; returns the full
// response (headers + body), or "" on connection failure.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpBody(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

}  // namespace

TEST(ExpositionServerTest, ServesAllFourEndpointsWithValidPayloads) {
  MetricsRegistry::Global().GetCounter("obs_test.server_counter")->Add(3);
  ScopedProfileRegistration profile_reg("obs_test.server_profile",
                                        [] { return std::string("{\"ok\":true}"); });
  ExpositionServer server({/*port=*/0});
  ASSERT_TRUE(server.Start()) << server.error();
  ASSERT_GT(server.port(), 0);

  std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain"), std::string::npos);
  EXPECT_NE(HttpBody(metrics).find("obs_test.server_counter"), std::string::npos);

  for (const char* path : {"/metrics.json", "/trace", "/profiles"}) {
    std::string response = HttpGet(server.port(), path);
    EXPECT_NE(response.find("200 OK"), std::string::npos) << path;
    EXPECT_NE(response.find("application/json"), std::string::npos) << path;
    EXPECT_TRUE(JsonChecker(HttpBody(response)).Valid())
        << path << ": " << HttpBody(response);
  }
  EXPECT_NE(HttpBody(HttpGet(server.port(), "/profiles"))
                .find("\"obs_test.server_profile\":{\"ok\":true}"),
            std::string::npos);

  EXPECT_NE(HttpGet(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/").find("200 OK"), std::string::npos);
  // Query strings are routing noise, not a different resource.
  EXPECT_NE(HttpGet(server.port(), "/metrics?ts=1").find("200 OK"),
            std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(ExpositionServerTest, StopIsIdempotentAndServerRestartable) {
  ExpositionServer server({/*port=*/0});
  ASSERT_TRUE(server.Start());
  uint16_t first_port = server.port();
  EXPECT_FALSE(server.Start());  // double start refused
  server.Stop();
  server.Stop();  // idempotent
  ASSERT_TRUE(server.Start()) << server.error();
  EXPECT_GT(server.port(), 0);
  EXPECT_NE(HttpGet(server.port(), "/metrics").find("200 OK"), std::string::npos);
  server.Stop();
  (void)first_port;
}

TEST(ExpositionServerTest, ConcurrentScrapesWhileInstrumentsAdvance) {
  ExpositionServer server({/*port=*/0});
  ASSERT_TRUE(server.Start());
  const uint16_t port = server.port();

  // Writers hammer the instruments the endpoints snapshot while several
  // scrapers fetch every endpoint — the TSan gate runs this test.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t t = 0;
    while (!stop.load()) {
      DMML_COUNTER_INC("obs_test.scrape_counter");
      RecordSpan("obs_test.scrape_span", t, t + 1);
      ++t;
    }
  });

  constexpr int kScrapers = 4;
  std::atomic<int> ok{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  for (int t = 0; t < kScrapers; ++t) {
    scrapers.emplace_back([&, t] {
      const char* paths[] = {"/metrics", "/metrics.json", "/trace", "/profiles"};
      for (int i = 0; i < 8; ++i) {
        std::string response = HttpGet(port, paths[(t + i) % 4]);
        if (response.find("200 OK") != std::string::npos) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : scrapers) t.join();
  stop.store(true);
  writer.join();
  server.Stop();
  EXPECT_EQ(ok.load(), kScrapers * 8);
}

TEST(ExpositionServerTest, StartFromEnvHonorsTheVariable) {
  // Unset → no server.
  ::unsetenv("DMML_OBS_PORT");
  EXPECT_EQ(ExpositionServer::StartFromEnv(), nullptr);

  // Malformed → no server (and no crash).
  ::setenv("DMML_OBS_PORT", "not_a_port", 1);
  EXPECT_EQ(ExpositionServer::StartFromEnv(), nullptr);
  ::setenv("DMML_OBS_PORT", "70000", 1);
  EXPECT_EQ(ExpositionServer::StartFromEnv(), nullptr);

  // "0" → ephemeral port, serving.
  ::setenv("DMML_OBS_PORT", "0", 1);
  auto server = ExpositionServer::StartFromEnv();
  ASSERT_NE(server, nullptr);
  EXPECT_GT(server->port(), 0);
  EXPECT_NE(HttpGet(server->port(), "/metrics").find("200 OK"),
            std::string::npos);
  server->Stop();
  ::unsetenv("DMML_OBS_PORT");
}

// ---------------------------------------------------------------------------
// Hot-path macros

TEST(MacroTest, CounterAndHistogramMacrosReachRegistry) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test.macro_counter")->Reset();
  for (int i = 0; i < 3; ++i) DMML_COUNTER_INC("obs_test.macro_counter");
  DMML_COUNTER_ADD("obs_test.macro_counter", 7);
  EXPECT_EQ(reg.GetCounter("obs_test.macro_counter")->Value(), 10u);

  DMML_GAUGE_SET("obs_test.macro_gauge", 3.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("obs_test.macro_gauge")->Value(), 3.5);

  DMML_HISTOGRAM_OBSERVE("obs_test.macro_hist", obs::ExponentialBuckets(1, 2, 4), 3.0);
  EXPECT_EQ(reg.GetHistogram("obs_test.macro_hist", {})->TotalCount(), 1u);
}

}  // namespace
}  // namespace dmml::obs
