// Tests for structural common-subexpression elimination on LA DAGs.
#include <gtest/gtest.h>

#include <memory>

#include "data/generators.h"
#include "la/kernels.h"
#include "laopt/cse.h"
#include "laopt/executor.h"
#include "laopt/optimizer.h"

namespace dmml::laopt {
namespace {

using la::DenseMatrix;

ExprPtr Leaf(std::shared_ptr<DenseMatrix> m, const char* name) {
  return *ExprNode::Input(std::move(m), name);
}

TEST(CseTest, MergesStructurallyEqualSubtrees) {
  auto xm = std::make_shared<DenseMatrix>(data::GaussianMatrix(20, 20, 1));
  // Build t(X)*X twice, independently (distinct nodes, same structure).
  auto x1 = Leaf(xm, "X");
  auto x2 = Leaf(xm, "X");
  auto gram1 = *ExprNode::MatMul(*ExprNode::Transpose(x1), x1);
  auto gram2 = *ExprNode::MatMul(*ExprNode::Transpose(x2), x2);
  auto sum = *ExprNode::Add(gram1, gram2);

  CseReport report;
  auto optimized = EliminateCommonSubexpressions(sum, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_GT(report.merges, 0u);
  EXPECT_LT(report.nodes_after, report.nodes_before);

  // Executor now computes the gram matrix once.
  ExecStats before_stats, after_stats;
  auto expected = Execute(sum, nullptr, &before_stats);
  auto actual = Execute(*optimized, nullptr, &after_stats);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_TRUE(actual->ApproxEquals(*expected, 1e-10));
  EXPECT_LT(after_stats.ops_executed, before_stats.ops_executed);
}

TEST(CseTest, DifferentLeavesDoNotMerge) {
  auto a = Leaf(std::make_shared<DenseMatrix>(data::GaussianMatrix(4, 4, 2)), "A");
  auto b = Leaf(std::make_shared<DenseMatrix>(data::GaussianMatrix(4, 4, 3)), "B");
  auto expr = *ExprNode::Add(*ExprNode::Transpose(a), *ExprNode::Transpose(b));
  CseReport report;
  auto optimized = EliminateCommonSubexpressions(expr, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(report.merges, 0u);
  EXPECT_EQ(report.nodes_after, report.nodes_before);
}

TEST(CseTest, ScalarValueDistinguishesNodes) {
  auto xm = std::make_shared<DenseMatrix>(data::GaussianMatrix(3, 3, 4));
  auto x = Leaf(xm, "X");
  auto expr = *ExprNode::Add(*ExprNode::ScalarMul(2.0, x), *ExprNode::ScalarMul(3.0, x));
  CseReport report;
  auto optimized = EliminateCommonSubexpressions(expr, &report);
  ASSERT_TRUE(optimized.ok());
  // The two ScalarMuls must stay distinct.
  EXPECT_EQ((*optimized)->children()[0]->scalar(), 2.0);
  EXPECT_EQ((*optimized)->children()[1]->scalar(), 3.0);
  EXPECT_TRUE((*Execute(*optimized)).ApproxEquals(*Execute(expr), 1e-12));
}

TEST(CseTest, IdempotentOnAlreadySharedDag) {
  auto xm = std::make_shared<DenseMatrix>(data::GaussianMatrix(5, 5, 5));
  auto x = Leaf(xm, "X");
  auto shared = *ExprNode::MatMul(x, x);
  auto expr = *ExprNode::Add(shared, shared);  // Already pointer-shared.
  CseReport report;
  auto optimized = EliminateCommonSubexpressions(expr, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(report.nodes_after, report.nodes_before);
}

TEST(CseTest, ComposesWithRewriteOptimizer) {
  auto xm = std::make_shared<DenseMatrix>(data::GaussianMatrix(30, 6, 6));
  auto vm = std::make_shared<DenseMatrix>(data::GaussianMatrix(30, 1, 7));
  auto x1 = Leaf(xm, "X");
  auto x2 = Leaf(xm, "X");
  auto v = Leaf(vm, "v");
  // (t(X)*v) .* (t(X)*v), built twice; optimize then CSE.
  auto proj1 = *ExprNode::MatMul(*ExprNode::Transpose(x1), v);
  auto proj2 = *ExprNode::MatMul(*ExprNode::Transpose(x2), v);
  auto expr = *ExprNode::ElemMul(proj1, proj2);

  auto rewritten = Optimize(expr);
  ASSERT_TRUE(rewritten.ok());
  CseReport report;
  auto optimized = EliminateCommonSubexpressions(*rewritten, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_GT(report.merges, 0u);
  EXPECT_TRUE((*Execute(*optimized)).ApproxEquals(*Execute(expr), 1e-9));
}

TEST(CseTest, NullExpressionRejected) {
  EXPECT_FALSE(EliminateCommonSubexpressions(nullptr).ok());
}

}  // namespace
}  // namespace dmml::laopt
