// Tests for the storage layer: types, columns, schemas, tables, catalog,
// CSV load/store and table->matrix bridging.
#include <gtest/gtest.h>

#include <cstdio>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/types.h"

namespace dmml::storage {
namespace {

TEST(TypesTest, NamesRoundTrip) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeToString(DataType::kString), "STRING");
  EXPECT_STREQ(DataTypeToString(DataType::kBool), "BOOL");
  DataType t;
  EXPECT_TRUE(ParseDataType("double", &t));
  EXPECT_EQ(t, DataType::kDouble);
  EXPECT_TRUE(ParseDataType("BIGINT", &t));
  EXPECT_EQ(t, DataType::kInt64);
  EXPECT_TRUE(ParseDataType("varchar", &t));
  EXPECT_EQ(t, DataType::kString);
  EXPECT_FALSE(ParseDataType("blob", &t));
}

TEST(ColumnTest, TypedAppendAndGet) {
  Column c(DataType::kInt64);
  c.AppendInt64(7);
  c.AppendNull();
  c.AppendInt64(-3);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_TRUE(c.IsValid(0));
  EXPECT_FALSE(c.IsValid(1));
  EXPECT_EQ(c.GetInt64(0), 7);
  EXPECT_EQ(c.GetInt64(2), -3);
}

TEST(ColumnTest, GenericAppendValidatesType) {
  Column c(DataType::kDouble);
  EXPECT_TRUE(c.Append(Value(1.5)).ok());
  EXPECT_FALSE(c.Append(Value(int64_t{1})).ok());
  EXPECT_TRUE(c.Append(Value(std::monostate{})).ok());  // NULL always allowed.
  EXPECT_EQ(c.size(), 2u);
}

TEST(ColumnTest, GetValueAndNumeric) {
  Column c(DataType::kBool);
  c.AppendBool(true);
  c.AppendNull();
  EXPECT_EQ(std::get<bool>(c.GetValue(0)), true);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(c.GetValue(1)));
  EXPECT_DOUBLE_EQ(*c.GetNumeric(0), 1.0);
  EXPECT_FALSE(c.GetNumeric(1).ok());

  Column s(DataType::kString);
  s.AppendString("abc");
  EXPECT_FALSE(s.GetNumeric(0).ok());
  EXPECT_EQ(s.GetString(0), "abc");
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(ValueToString(Value(int64_t{42})), "42");
  EXPECT_EQ(ValueToString(Value(std::string("hi"))), "hi");
  EXPECT_EQ(ValueToString(Value(true)), "true");
  EXPECT_EQ(ValueToString(Value(std::monostate{})), "");
}

TEST(SchemaTest, MakeRejectsDuplicates) {
  auto ok =
      Schema::Make({{"a", DataType::kInt64, false}, {"b", DataType::kDouble, true}});
  ASSERT_TRUE(ok.ok());
  auto bad =
      Schema::Make({{"a", DataType::kInt64, false}, {"a", DataType::kDouble, true}});
  EXPECT_FALSE(bad.ok());
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"x", DataType::kDouble, true}, {"y", DataType::kInt64, true}});
  EXPECT_EQ(*s.FieldIndex("y"), 1u);
  EXPECT_FALSE(s.FieldIndex("z").has_value());
  EXPECT_TRUE(s.RequireField("x").ok());
  EXPECT_EQ(s.RequireField("nope").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ConcatDisambiguatesClashes) {
  Schema a({{"id", DataType::kInt64, false}, {"v", DataType::kDouble, true}});
  Schema b({{"id", DataType::kInt64, false}, {"w", DataType::kDouble, true}});
  Schema joined = a.Concat(b, "r_");
  EXPECT_EQ(joined.num_fields(), 4u);
  EXPECT_TRUE(joined.FieldIndex("r_id").has_value());
  EXPECT_TRUE(joined.FieldIndex("w").has_value());
}

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64, false},
                 {"name", DataType::kString, true},
                 {"score", DataType::kDouble, true},
                 {"active", DataType::kBool, true}});
}

TEST(TableTest, AppendAndGetRow) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::string("ann"), 0.5, true}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{2}, std::monostate{}, std::monostate{}, false}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  auto row = t.GetRow(1);
  EXPECT_EQ(std::get<int64_t>(row[0]), 2);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(row[1]));
}

TEST(TableTest, AppendRowValidation) {
  Table t(TestSchema());
  EXPECT_FALSE(t.AppendRow({int64_t{1}}).ok());  // Wrong arity.
  EXPECT_FALSE(t.AppendRow({0.5, std::string("x"), 0.5, true}).ok());  // Wrong type.
  EXPECT_FALSE(
      t.AppendRow({std::monostate{}, std::string("x"), 0.5, true}).ok());  // NULL PK.
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, ColumnByName) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::string("a"), 2.0, true}).ok());
  auto col = t.ColumnByName("score");
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ((*col)->GetDouble(0), 2.0);
  EXPECT_FALSE(t.ColumnByName("missing").ok());
}

TEST(TableTest, ToMatrixProjectsNumericColumns) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::string("a"), 2.0, true}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{5}, std::string("b"), -1.0, false}).ok());
  auto m = t.ToMatrix({"score", "id", "active"});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 2u);
  EXPECT_EQ(m->cols(), 3u);
  EXPECT_DOUBLE_EQ(m->At(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m->At(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m->At(0, 2), 1.0);
}

TEST(TableTest, ToMatrixRejectsStrings) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::string("a"), 2.0, true}).ok());
  EXPECT_FALSE(t.ToMatrix({"name"}).ok());
}

TEST(TableTest, ToMatrixNullPolicy) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::string("a"), std::monostate{}, true}).ok());
  auto lenient = t.ToMatrix({"score"});
  ASSERT_TRUE(lenient.ok());
  EXPECT_DOUBLE_EQ(lenient->At(0, 0), 0.0);  // NULL -> 0.
  EXPECT_FALSE(t.ToMatrix({"score"}, /*reject_nulls=*/true).ok());
}

TEST(TableTest, ColumnToVector) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{3}, std::string("a"), 1.5, true}).ok());
  auto v = t.ColumnToVector("id");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->rows(), 1u);
  EXPECT_DOUBLE_EQ(v->At(0, 0), 3.0);
}

TEST(TableTest, CsvRoundTrip) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({int64_t{1}, std::string("a,b"), 2.5, true}).ok());
  ASSERT_TRUE(t.AppendRow({int64_t{2}, std::monostate{}, -0.5, false}).ok());
  std::string path = testing::TempDir() + "/dmml_table_test.csv";
  ASSERT_TRUE(t.ToCsvFile(path).ok());

  auto loaded = Table::FromCsvFile(path, TestSchema());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(std::get<std::string>(loaded->GetRow(0)[1]), "a,b");
  EXPECT_TRUE(std::holds_alternative<std::monostate>(loaded->GetRow(1)[1]));
  EXPECT_DOUBLE_EQ(std::get<double>(loaded->GetRow(1)[2]), -0.5);
  std::remove(path.c_str());
}

TEST(TableTest, FromCsvRejectsBadArity) {
  std::string path = testing::TempDir() + "/dmml_bad_arity.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("id,name,score,active\n1,a\n", f);
  fclose(f);
  EXPECT_FALSE(Table::FromCsvFile(path, TestSchema()).ok());
  std::remove(path.c_str());
}

TEST(TableTest, FromCsvRejectsBadNumbers) {
  std::string path = testing::TempDir() + "/dmml_bad_num.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("id,name,score,active\nnotanint,a,1.0,true\n", f);
  fclose(f);
  EXPECT_FALSE(Table::FromCsvFile(path, TestSchema()).ok());
  std::remove(path.c_str());
}

TEST(CatalogTest, RegisterLookupDrop) {
  Catalog catalog;
  Table t(TestSchema());
  ASSERT_TRUE(catalog.RegisterTable("users", std::move(t)).ok());
  EXPECT_TRUE(catalog.HasTable("users"));
  EXPECT_FALSE(catalog.RegisterTable("users", Table(TestSchema())).ok());

  auto got = catalog.GetTable("users");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->num_rows(), 0u);
  EXPECT_FALSE(catalog.GetTable("ghosts").ok());

  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"users"});
  EXPECT_TRUE(catalog.DropTable("users").ok());
  EXPECT_FALSE(catalog.DropTable("users").ok());
  EXPECT_FALSE(catalog.HasTable("users"));
}

TEST(CatalogTest, PutTableReplaces) {
  Catalog catalog;
  catalog.PutTable("t", Table(TestSchema()));
  Table t2(TestSchema());
  ASSERT_TRUE(t2.AppendRow({int64_t{1}, std::string("x"), 1.0, true}).ok());
  catalog.PutTable("t", std::move(t2));
  EXPECT_EQ((*catalog.GetTable("t"))->num_rows(), 1u);
}

TEST(CatalogTest, SharedPtrSurvivesDrop) {
  Catalog catalog;
  catalog.PutTable("t", Table(TestSchema()));
  auto ref = *catalog.GetTable("t");
  ASSERT_TRUE(catalog.DropTable("t").ok());
  EXPECT_EQ(ref->num_rows(), 0u);  // Still alive through the shared_ptr.
}

}  // namespace
}  // namespace dmml::storage
