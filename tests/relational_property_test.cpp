// Property tests for the relational engine over randomized tables:
// complement/partition laws for Filter, join-algorithm equivalence,
// aggregate conservation laws and sort invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "relational/operators.h"
#include "relational/sort_merge_join.h"
#include "relational/statistics.h"
#include "storage/table.h"
#include "util/rng.h"

namespace dmml::relational {
namespace {

using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::Value;

// A random table with an int key, a double value (some NULLs) and a string
// category column.
Table RandomTable(size_t rows, size_t key_space, double null_prob, uint64_t seed) {
  Table t(Schema({{"k", DataType::kInt64, true},
                  {"v", DataType::kDouble, true},
                  {"cat", DataType::kString, true}}));
  Rng rng(seed);
  const char* cats[] = {"a", "b", "c", "d"};
  for (size_t i = 0; i < rows; ++i) {
    Value v;  // monostate (NULL) unless overwritten below.
    if (!rng.Bernoulli(null_prob)) v = rng.Normal(0, 10);
    EXPECT_TRUE(
        t.AppendRow({static_cast<int64_t>(rng.UniformInt(key_space)), v,
                     std::string(cats[rng.UniformInt(uint64_t{4})])})
            .ok());
  }
  return t;
}

class RelationalProperty : public ::testing::TestWithParam<int> {};

TEST_P(RelationalProperty, FilterPartitionsRows) {
  // Under two-valued collapse, p and Not(p) partition every table exactly.
  Table t = RandomTable(200, 20, 0.15, GetParam());
  auto p = Compare("v", CompareOp::kGt, 0.0);
  auto kept = Filter(t, p);
  auto dropped = Filter(t, Not(p));
  ASSERT_TRUE(kept.ok());
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(kept->num_rows() + dropped->num_rows(), t.num_rows());
}

TEST_P(RelationalProperty, FilterIsIdempotent) {
  Table t = RandomTable(150, 10, 0.1, GetParam() + 100);
  auto p = Compare("k", CompareOp::kLe, int64_t{5});
  auto once = Filter(t, p);
  ASSERT_TRUE(once.ok());
  auto twice = Filter(*once, p);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(once->num_rows(), twice->num_rows());
}

TEST_P(RelationalProperty, HashAndSortMergeJoinsAgree) {
  Table left = RandomTable(120, 15, 0.1, GetParam() + 200);
  Table right = RandomTable(60, 15, 0.1, GetParam() + 300);
  JoinOptions options;
  options.clash_prefix = "r_";
  auto hj = HashJoin(left, right, "k", "k", options);
  auto smj = SortMergeJoin(left, right, "k", "k");
  ASSERT_TRUE(hj.ok());
  ASSERT_TRUE(smj.ok());
  EXPECT_EQ(hj->num_rows(), smj->num_rows());

  // Key histograms of both outputs must match exactly.
  auto histogram = [](const Table& t) {
    std::map<int64_t, size_t> h;
    auto idx = *t.schema().FieldIndex("k");
    for (size_t i = 0; i < t.num_rows(); ++i) h[t.column(idx).GetInt64(i)]++;
    return h;
  };
  EXPECT_EQ(histogram(*hj), histogram(*smj));
}

TEST_P(RelationalProperty, JoinCardinalityIsSumOfKeyProducts) {
  Table left = RandomTable(100, 8, 0.0, GetParam() + 400);
  Table right = RandomTable(50, 8, 0.0, GetParam() + 500);
  auto joined = HashJoin(left, right, "k", "k");
  ASSERT_TRUE(joined.ok());
  std::map<int64_t, size_t> lh, rh;
  for (size_t i = 0; i < left.num_rows(); ++i) lh[left.column(0).GetInt64(i)]++;
  for (size_t i = 0; i < right.num_rows(); ++i) rh[right.column(0).GetInt64(i)]++;
  size_t expected = 0;
  for (const auto& [key, count] : lh) {
    auto it = rh.find(key);
    if (it != rh.end()) expected += count * it->second;
  }
  EXPECT_EQ(joined->num_rows(), expected);
}

TEST_P(RelationalProperty, GroupByCountsConserveRows) {
  Table t = RandomTable(180, 12, 0.2, GetParam() + 600);
  auto grouped = GroupBy(t, {"cat"}, {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(grouped.ok());
  int64_t total = 0;
  auto n_idx = *grouped->schema().FieldIndex("n");
  for (size_t i = 0; i < grouped->num_rows(); ++i) {
    total += grouped->column(n_idx).GetInt64(i);
  }
  EXPECT_EQ(static_cast<size_t>(total), t.num_rows());
}

TEST_P(RelationalProperty, GroupBySumMatchesDirectSum) {
  Table t = RandomTable(160, 6, 0.1, GetParam() + 700);
  auto grouped = GroupBy(t, {"k"}, {{AggFunc::kSum, "v", "s"}});
  ASSERT_TRUE(grouped.ok());
  double group_total = 0;
  auto s_idx = *grouped->schema().FieldIndex("s");
  for (size_t i = 0; i < grouped->num_rows(); ++i) {
    if (grouped->column(s_idx).IsValid(i)) {
      group_total += grouped->column(s_idx).GetDouble(i);
    }
  }
  double direct_total = 0;
  auto v_col = *t.ColumnByName("v");
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (v_col->IsValid(i)) direct_total += v_col->GetDouble(i);
  }
  EXPECT_NEAR(group_total, direct_total, 1e-9);
}

TEST_P(RelationalProperty, OrderByIsASortedPermutation) {
  Table t = RandomTable(130, 100, 0.1, GetParam() + 800);
  auto sorted = OrderBy(t, "v");
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->num_rows(), t.num_rows());
  auto v_idx = *sorted->schema().FieldIndex("v");
  // Non-decreasing among non-NULLs, NULLs up front.
  bool seen_value = false;
  double prev = -1e300;
  for (size_t i = 0; i < sorted->num_rows(); ++i) {
    if (!sorted->column(v_idx).IsValid(i)) {
      EXPECT_FALSE(seen_value) << "NULL after a value at row " << i;
      continue;
    }
    double v = sorted->column(v_idx).GetDouble(i);
    if (seen_value) {
      EXPECT_GE(v, prev);
    }
    prev = v;
    seen_value = true;
  }
  // Multiset of values preserved.
  auto collect = [v_idx](const Table& table) {
    std::multiset<double> values;
    for (size_t i = 0; i < table.num_rows(); ++i) {
      if (table.column(v_idx).IsValid(i)) {
        values.insert(table.column(v_idx).GetDouble(i));
      }
    }
    return values;
  };
  EXPECT_EQ(collect(*sorted), collect(t));
}

TEST_P(RelationalProperty, SelectivityEstimateTracksActual) {
  Table t = RandomTable(500, 30, 0.1, GetParam() + 900);
  auto stats = CollectStatistics(t);
  ASSERT_TRUE(stats.ok());
  for (double threshold : {-5.0, 0.0, 5.0}) {
    auto est = EstimateSelectivity(*stats, "v", CompareOp::kLt, threshold);
    ASSERT_TRUE(est.ok());
    auto actual_rows = Filter(t, Compare("v", CompareOp::kLt, threshold));
    ASSERT_TRUE(actual_rows.ok());
    double actual =
        static_cast<double>(actual_rows->num_rows()) / static_cast<double>(t.num_rows());
    EXPECT_NEAR(*est, actual, 0.08) << "threshold " << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationalProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace dmml::relational
