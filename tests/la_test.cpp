// Tests for the linear-algebra substrate: DenseMatrix, SparseMatrix,
// kernels and the checked ops (including the linear solver).
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "la/dense_matrix.h"
#include "la/kernels.h"
#include "la/ops.h"
#include "la/sparse_matrix.h"
#include "util/thread_pool.h"

namespace dmml::la {
namespace {

TEST(DenseMatrixTest, ConstructionAndAccess) {
  DenseMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0);
  m.At(1, 2) = 5.5;
  EXPECT_EQ(m(1, 2), 5.5);
}

TEST(DenseMatrixTest, InitializerList) {
  DenseMatrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.At(2, 1), 6.0);
}

TEST(DenseMatrixTest, VectorsAndIdentity) {
  auto v = DenseMatrix::ColumnVector({1, 2, 3});
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 1u);
  EXPECT_TRUE(v.IsVector());
  auto r = DenseMatrix::RowVector({1, 2});
  EXPECT_EQ(r.rows(), 1u);
  auto eye = DenseMatrix::Identity(3);
  EXPECT_EQ(eye.At(1, 1), 1.0);
  EXPECT_EQ(eye.At(0, 1), 0.0);
}

TEST(DenseMatrixTest, Slicing) {
  DenseMatrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  auto rows = m.SliceRows(1, 3);
  EXPECT_EQ(rows.rows(), 2u);
  EXPECT_EQ(rows.At(0, 0), 4.0);
  auto cols = m.SliceCols(1, 2);
  EXPECT_EQ(cols.cols(), 1u);
  EXPECT_EQ(cols.At(2, 0), 8.0);
  auto col = m.Column(2);
  EXPECT_EQ(col.At(1, 0), 6.0);
}

TEST(DenseMatrixTest, EqualityAndApprox) {
  DenseMatrix a{{1, 2}, {3, 4}};
  DenseMatrix b = a;
  EXPECT_TRUE(a == b);
  b.At(0, 0) += 1e-12;
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9));
  EXPECT_FALSE(a.ApproxEquals(DenseMatrix(2, 3), 1.0));
}

TEST(DenseMatrixTest, ToStringTruncates) {
  DenseMatrix m(20, 20, 1.0);
  std::string s = m.ToString(2, 2);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("20x20"), std::string::npos);
}

TEST(KernelsTest, MultiplyMatchesHandComputed) {
  DenseMatrix a{{1, 2}, {3, 4}};
  DenseMatrix b{{5, 6}, {7, 8}};
  DenseMatrix c = Multiply(a, b);
  EXPECT_TRUE(c == (DenseMatrix{{19, 22}, {43, 50}}));
}

TEST(KernelsTest, MultiplyParallelMatchesSerial) {
  auto a = data::GaussianMatrix(37, 23, 1);
  auto b = data::GaussianMatrix(23, 11, 2);
  ThreadPool pool(4);
  EXPECT_TRUE(Multiply(a, b).ApproxEquals(Multiply(a, b, &pool), 1e-12));
}

TEST(KernelsTest, GemvAndGevm) {
  DenseMatrix a{{1, 2}, {3, 4}, {5, 6}};
  auto x = DenseMatrix::ColumnVector({1, -1});
  DenseMatrix y = Gemv(a, x);
  EXPECT_TRUE(y == DenseMatrix::ColumnVector({-1, -1, -1}));
  auto u = DenseMatrix::ColumnVector({1, 0, 2});
  DenseMatrix z = Gevm(u, a);
  EXPECT_TRUE(z == DenseMatrix::RowVector({11, 14}));
}

TEST(KernelsTest, GemvEqualsMultiply) {
  auto a = data::GaussianMatrix(15, 9, 5);
  auto x = data::GaussianMatrix(9, 1, 6);
  EXPECT_TRUE(Gemv(a, x).ApproxEquals(Multiply(a, x), 1e-12));
}

TEST(KernelsTest, TransposeInvolution) {
  auto a = data::GaussianMatrix(7, 4, 9);
  EXPECT_TRUE(Transpose(Transpose(a)) == a);
  EXPECT_EQ(Transpose(a).rows(), 4u);
  EXPECT_EQ(Transpose(a).At(2, 5), a.At(5, 2));
}

TEST(KernelsTest, ElementwiseOps) {
  DenseMatrix a{{1, 2}, {3, 4}};
  DenseMatrix b{{10, 20}, {30, 40}};
  EXPECT_TRUE(Add(a, b) == (DenseMatrix{{11, 22}, {33, 44}}));
  EXPECT_TRUE(Subtract(b, a) == (DenseMatrix{{9, 18}, {27, 36}}));
  EXPECT_TRUE(ElementwiseMultiply(a, a) == (DenseMatrix{{1, 4}, {9, 16}}));
  EXPECT_TRUE(Scale(a, 2.0) == (DenseMatrix{{2, 4}, {6, 8}}));
  EXPECT_TRUE(AddScalar(a, 1.0) == (DenseMatrix{{2, 3}, {4, 5}}));
  EXPECT_TRUE(Map(a, [](double v) { return v * v; }) ==
              (DenseMatrix{{1, 4}, {9, 16}}));
}

TEST(KernelsTest, Reductions) {
  DenseMatrix a{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(Sum(a), 10.0);
  EXPECT_TRUE(ColumnSums(a) == DenseMatrix::RowVector({4, 6}));
  EXPECT_TRUE(RowSums(a) == DenseMatrix::ColumnVector({3, 7}));
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), std::sqrt(30.0));
}

TEST(KernelsTest, DotAndAxpy) {
  auto x = DenseMatrix::ColumnVector({1, 2, 3});
  auto y = DenseMatrix::ColumnVector({4, 5, 6});
  EXPECT_DOUBLE_EQ(Dot(x, y), 32.0);
  double buf[3] = {1, 1, 1};
  Axpy(2.0, x.data(), buf, 3);
  EXPECT_DOUBLE_EQ(buf[2], 7.0);
}

TEST(KernelsTest, RowSquaredDistance) {
  DenseMatrix a{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(RowSquaredDistance(a, 0, a, 1), 25.0);
  EXPECT_DOUBLE_EQ(RowSquaredDistance(a, 1, a, 1), 0.0);
}

// --------------------------------------------------------------------------
// Sparse
// --------------------------------------------------------------------------

TEST(SparseMatrixTest, FromTripletsCoalescesAndSorts) {
  auto m = SparseMatrix::FromTriplets(
      3, 3, {{0, 2, 1.0}, {0, 0, 2.0}, {0, 2, 3.0}, {2, 1, -1.0}});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 4.0);  // 1 + 3 coalesced.
  EXPECT_DOUBLE_EQ(m.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
}

TEST(SparseMatrixTest, ZeroSumTripletsDropped) {
  auto m = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(SparseMatrixTest, DenseRoundTrip) {
  auto dense = data::GaussianMatrix(10, 8, 3);
  // Zero out some entries.
  for (size_t i = 0; i < dense.rows(); ++i) {
    for (size_t j = 0; j < dense.cols(); j += 2) dense.At(i, j) = 0.0;
  }
  auto sparse = SparseMatrix::FromDense(dense);
  EXPECT_TRUE(sparse.ToDense() == dense);
  EXPECT_DOUBLE_EQ(sparse.Density(), static_cast<double>(sparse.nnz()) / 80.0);
}

TEST(SparseMatrixTest, SparseGemvMatchesDense) {
  auto sparse = data::SparseGaussianMatrix(30, 20, 0.2, 4);
  auto dense = sparse.ToDense();
  auto x = data::GaussianMatrix(20, 1, 5);
  EXPECT_TRUE(SparseGemv(sparse, x).ApproxEquals(Gemv(dense, x), 1e-10));
}

TEST(SparseMatrixTest, SparseGevmMatchesDense) {
  auto sparse = data::SparseGaussianMatrix(30, 20, 0.2, 6);
  auto dense = sparse.ToDense();
  auto u = data::GaussianMatrix(30, 1, 7);
  EXPECT_TRUE(SparseGevm(u, sparse).ApproxEquals(Gevm(u, dense), 1e-10));
}

TEST(SparseMatrixTest, SparseMultiplyDenseMatchesDense) {
  auto sparse = data::SparseGaussianMatrix(12, 18, 0.3, 8);
  auto b = data::GaussianMatrix(18, 5, 9);
  EXPECT_TRUE(
      SparseMultiplyDense(sparse, b).ApproxEquals(Multiply(sparse.ToDense(), b), 1e-10));
}

TEST(SparseMatrixTest, SparseTransposeMatchesDense) {
  auto sparse = data::SparseGaussianMatrix(9, 14, 0.25, 10);
  EXPECT_TRUE(SparseTranspose(sparse).ToDense() == Transpose(sparse.ToDense()));
}

// --------------------------------------------------------------------------
// Checked ops + solver
// --------------------------------------------------------------------------

TEST(OpsTest, CheckedOpsRejectBadShapes) {
  DenseMatrix a(2, 3), b(2, 3), c(3, 2);
  EXPECT_FALSE(CheckedMultiply(a, b).ok());
  EXPECT_TRUE(CheckedMultiply(a, c).ok());
  EXPECT_FALSE(CheckedAdd(a, c).ok());
  EXPECT_TRUE(CheckedAdd(a, b).ok());
  EXPECT_FALSE(CheckedSubtract(a, c).ok());
  EXPECT_FALSE(CheckedElementwiseMultiply(a, c).ok());
}

TEST(OpsTest, SolveRecoversSolution) {
  DenseMatrix a{{4, 1}, {1, 3}};
  auto b = DenseMatrix::ColumnVector({1, 2});
  auto x = Solve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(Multiply(a, *x).ApproxEquals(b, 1e-10));
}

TEST(OpsTest, SolveWithPivoting) {
  // Zero on the diagonal forces a pivot swap.
  DenseMatrix a{{0, 1}, {1, 0}};
  auto b = DenseMatrix::ColumnVector({3, 7});
  auto x = Solve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x->At(0, 0), 7.0, 1e-12);
  EXPECT_NEAR(x->At(1, 0), 3.0, 1e-12);
}

TEST(OpsTest, SolveDetectsSingular) {
  DenseMatrix a{{1, 2}, {2, 4}};
  auto b = DenseMatrix::ColumnVector({1, 2});
  auto x = Solve(a, b);
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OpsTest, SolveRejectsNonSquare) {
  EXPECT_FALSE(Solve(DenseMatrix(2, 3), DenseMatrix(2, 1)).ok());
  EXPECT_FALSE(Solve(DenseMatrix(2, 2), DenseMatrix(3, 1)).ok());
}

TEST(OpsTest, InverseTimesSelfIsIdentity) {
  auto a = data::GaussianMatrix(6, 6, 11);
  for (size_t i = 0; i < 6; ++i) a.At(i, i) += 6.0;  // Diagonal dominance.
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(Multiply(a, *inv).ApproxEquals(DenseMatrix::Identity(6), 1e-8));
}

// Property sweep: random solve instances are actually solved.
class SolvePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolvePropertyTest, RandomWellConditionedSystems) {
  const int seed = GetParam();
  auto a = data::GaussianMatrix(8, 8, seed);
  for (size_t i = 0; i < 8; ++i) a.At(i, i) += 10.0;
  auto b = data::GaussianMatrix(8, 2, seed + 1000);
  auto x = Solve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(Multiply(a, *x).ApproxEquals(b, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolvePropertyTest, ::testing::Range(0, 10));

// Property sweep: (AB)^T == B^T A^T across random shapes.
class TransposeProductProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TransposeProductProperty, TransposeOfProduct) {
  auto [m, k, n] = GetParam();
  auto a = data::GaussianMatrix(m, k, m * 100 + k);
  auto b = data::GaussianMatrix(k, n, k * 100 + n);
  EXPECT_TRUE(Transpose(Multiply(a, b))
                  .ApproxEquals(Multiply(Transpose(b), Transpose(a)), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TransposeProductProperty,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(2, 5),
                                            ::testing::Values(1, 4, 7)));

}  // namespace
}  // namespace dmml::la
