// Tests for the LA expression DAG, the rewrite optimizer (transpose
// elimination, scalar folding, matrix-chain reordering) and the executor.
#include <gtest/gtest.h>

#include <memory>

#include "data/generators.h"
#include "la/kernels.h"
#include "laopt/executor.h"
#include "laopt/expr.h"
#include "laopt/optimizer.h"

namespace dmml::laopt {
namespace {

using la::DenseMatrix;

ExprPtr Leaf(const DenseMatrix& m, std::string name = "") {
  return *ExprNode::Input(std::make_shared<DenseMatrix>(m), std::move(name));
}

TEST(ExprTest, ShapeInference) {
  auto a = Leaf(DenseMatrix(3, 4));
  auto b = Leaf(DenseMatrix(4, 2));
  auto mm = ExprNode::MatMul(a, b);
  ASSERT_TRUE(mm.ok());
  EXPECT_EQ((*mm)->rows(), 3u);
  EXPECT_EQ((*mm)->cols(), 2u);
  auto t = ExprNode::Transpose(a);
  EXPECT_EQ((*t)->rows(), 4u);
  EXPECT_EQ((*t)->cols(), 3u);
}

TEST(ExprTest, ShapeErrors) {
  auto a = Leaf(DenseMatrix(3, 4));
  auto b = Leaf(DenseMatrix(3, 4));
  EXPECT_FALSE(ExprNode::MatMul(a, b).ok());
  EXPECT_TRUE(ExprNode::Add(a, b).ok());
  EXPECT_FALSE(ExprNode::Add(a, Leaf(DenseMatrix(4, 3))).ok());
  EXPECT_FALSE(ExprNode::ElemMul(a, Leaf(DenseMatrix(3, 5))).ok());
  EXPECT_FALSE(ExprNode::Input(nullptr).ok());
}

TEST(ExprTest, ToStringRendersStructure) {
  auto x = Leaf(DenseMatrix(3, 2), "X");
  auto expr = *ExprNode::MatMul(*ExprNode::Transpose(x), x);
  EXPECT_EQ(expr->ToString(), "(t(X[3x2]) * X[3x2])");
}

TEST(ExprTest, NumNodesCountsSharedOnce) {
  auto x = Leaf(DenseMatrix(3, 3), "X");
  auto xx = *ExprNode::MatMul(x, x);        // Shares the same leaf.
  EXPECT_EQ(xx->NumNodes(), 2u);            // mm + shared leaf.
  auto sum = *ExprNode::Add(xx, xx);        // Shares the same matmul.
  EXPECT_EQ(sum->NumNodes(), 3u);
}

TEST(ExecutorTest, EvaluatesArithmetic) {
  DenseMatrix a{{1, 2}, {3, 4}};
  DenseMatrix b{{5, 6}, {7, 8}};
  auto expr = *ExprNode::Add(*ExprNode::MatMul(Leaf(a), Leaf(b)),
                             *ExprNode::ScalarMul(2.0, Leaf(a)));
  auto result = Execute(expr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result == la::Add(la::Multiply(a, b), la::Scale(a, 2.0)));
}

TEST(ExecutorTest, EvaluatesAllOps) {
  DenseMatrix a{{1, 2}, {3, 4}};
  auto ea = Leaf(a);
  EXPECT_TRUE(*Execute(*ExprNode::Transpose(ea)) == la::Transpose(a));
  EXPECT_TRUE(*Execute(*ExprNode::Subtract(ea, ea)) == DenseMatrix(2, 2));
  EXPECT_TRUE(*Execute(*ExprNode::ElemMul(ea, ea)) ==
              la::ElementwiseMultiply(a, a));
  EXPECT_TRUE(*Execute(ea) == a);
}

TEST(ExecutorTest, MemoizesSharedSubDags) {
  auto x = Leaf(data::GaussianMatrix(20, 20, 1), "X");
  auto xx = *ExprNode::MatMul(x, x);
  auto expr = *ExprNode::Add(xx, xx);  // Same matmul twice.
  ExecStats stats;
  auto result = Execute(expr, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.ops_executed, 2u);  // One matmul + one add.
  EXPECT_GE(stats.memo_hits, 1u);
}

TEST(OptimizerTest, EliminatesDoubleTranspose) {
  auto x = Leaf(data::GaussianMatrix(4, 6, 2), "X");
  auto expr = *ExprNode::Transpose(*ExprNode::Transpose(x));
  OptimizerReport report;
  auto optimized = Optimize(expr, {}, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(report.transposes_eliminated, 1u);
  EXPECT_EQ((*optimized)->kind(), OpKind::kInput);
  EXPECT_TRUE(*Execute(*optimized) == *Execute(expr));
}

TEST(OptimizerTest, FoldsNestedScalars) {
  auto x = Leaf(data::GaussianMatrix(3, 3, 3), "X");
  auto expr = *ExprNode::ScalarMul(2.0, *ExprNode::ScalarMul(3.0, x));
  OptimizerReport report;
  auto optimized = Optimize(expr, {}, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(report.scalars_folded, 1u);
  EXPECT_EQ((*optimized)->kind(), OpKind::kScalarMul);
  EXPECT_DOUBLE_EQ((*optimized)->scalar(), 6.0);
  EXPECT_TRUE((*Execute(*optimized)).ApproxEquals(*Execute(expr), 1e-12));
}

TEST(OptimizerTest, HoistsScalarOutOfMatMul) {
  auto x = Leaf(data::GaussianMatrix(3, 3, 4), "X");
  auto y = Leaf(data::GaussianMatrix(3, 3, 5), "Y");
  auto expr = *ExprNode::MatMul(*ExprNode::ScalarMul(2.0, x),
                                *ExprNode::ScalarMul(5.0, y));
  auto optimized = Optimize(expr);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ((*optimized)->kind(), OpKind::kScalarMul);
  EXPECT_DOUBLE_EQ((*optimized)->scalar(), 10.0);
  EXPECT_TRUE((*Execute(*optimized)).ApproxEquals(*Execute(expr), 1e-9));
}

TEST(OptimizerTest, ReordersSkewedChain) {
  // t(X) * (X * v): already optimal. Force the bad order (t(X)*X)*v and
  // check the optimizer recovers the cheap one.
  auto x = Leaf(data::GaussianMatrix(200, 30, 6), "X");
  auto v = Leaf(data::GaussianMatrix(200, 1, 7), "v");
  auto xt = *ExprNode::Transpose(x);
  auto bad = *ExprNode::MatMul(*ExprNode::MatMul(xt, x), *ExprNode::MatMul(xt, v));
  OptimizerReport report;
  auto optimized = Optimize(bad, {}, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_LT(report.flops_after, report.flops_before);
  EXPECT_TRUE((*Execute(*optimized)).ApproxEquals(*Execute(bad), 1e-7));
}

TEST(OptimizerTest, ChainReorderingPreservesValue) {
  // A(2x50) B(50x3) C(3x40): left-to-right is poor; optimal splits at B.
  auto a = Leaf(data::GaussianMatrix(2, 50, 8), "A");
  auto b = Leaf(data::GaussianMatrix(50, 3, 9), "B");
  auto c = Leaf(data::GaussianMatrix(3, 40, 10), "C");
  auto expr = *ExprNode::MatMul(*ExprNode::MatMul(a, b), c);
  OptimizerReport report;
  auto optimized = Optimize(expr, {}, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_TRUE((*Execute(*optimized)).ApproxEquals(*Execute(expr), 1e-9));
}

TEST(OptimizerTest, OptimalChainCostDp) {
  // Classic example: shapes 10x30, 30x5, 5x60.
  // (A(BC)): 2*(30*5*60 + 10*30*60) = 54000; ((AB)C): 2*(10*30*5 + 10*5*60)=9000.
  double cost = OptimalChainCost({{10, 30}, {30, 5}, {5, 60}});
  EXPECT_DOUBLE_EQ(cost, 9000.0);
  EXPECT_DOUBLE_EQ(OptimalChainCost({{3, 4}}), 0.0);
  EXPECT_DOUBLE_EQ(OptimalChainCost({{2, 3}, {3, 4}}), 2.0 * 2 * 3 * 4);
}

TEST(OptimizerTest, PassesCanBeDisabled) {
  auto x = Leaf(data::GaussianMatrix(4, 4, 11), "X");
  auto expr = *ExprNode::Transpose(*ExprNode::Transpose(x));
  OptimizerOptions options;
  options.eliminate_transposes = false;
  OptimizerReport report;
  auto optimized = Optimize(expr, options, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(report.transposes_eliminated, 0u);
  EXPECT_EQ((*optimized)->kind(), OpKind::kTranspose);
}

TEST(OptimizerTest, OptimizeAndExecuteConvenience) {
  auto x = Leaf(data::GaussianMatrix(10, 3, 12), "X");
  auto v = Leaf(data::GaussianMatrix(10, 1, 13), "v");
  auto expr =
      *ExprNode::MatMul(*ExprNode::Transpose(x), v);  // t(X)*v : 3x1 result.
  auto result = OptimizeAndExecute(expr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows(), 3u);
}

TEST(EstimateFlopsTest, CountsMultiplyCost) {
  auto a = Leaf(DenseMatrix(10, 20));
  auto b = Leaf(DenseMatrix(20, 5));
  auto mm = *ExprNode::MatMul(a, b);
  EXPECT_DOUBLE_EQ(EstimateFlops(mm), 2.0 * 10 * 20 * 5);
}

// Property sweep: optimizer output always matches unoptimized output on
// random DAGs assembled from a fixed grammar.
class OptimizerEquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerEquivalenceProperty, RandomDagsPreserveSemantics) {
  const int seed = GetParam();
  Rng rng(seed);
  // Random conforming chain of 4 matrices with random inner dims, plus
  // transposes and scalars sprinkled in.
  std::vector<size_t> dims(5);
  for (auto& d : dims) d = 1 + rng.UniformInt(uint64_t{30});
  ExprPtr chain =
      Leaf(data::GaussianMatrix(dims[0], dims[1], seed * 10), "M0");
  for (int i = 1; i < 4; ++i) {
    ExprPtr next = Leaf(
        data::GaussianMatrix(dims[i], dims[i + 1], seed * 10 + i), "M");
    if (rng.Bernoulli(0.3)) {
      next = *ExprNode::Transpose(*ExprNode::Transpose(next));
    }
    if (rng.Bernoulli(0.3)) next = *ExprNode::ScalarMul(1.5, next);
    chain = *ExprNode::MatMul(chain, next);
  }
  auto optimized = Optimize(chain);
  ASSERT_TRUE(optimized.ok());
  auto expected = Execute(chain);
  auto actual = Execute(*optimized);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  double scale = std::max(1.0, la::FrobeniusNorm(*expected));
  EXPECT_TRUE(actual->ApproxEquals(*expected, 1e-7 * scale))
      << chain->ToString() << " vs " << (*optimized)->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalenceProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace dmml::laopt
