// Tests for softmax regression and gradient-sparsified parameter-server
// training (top-k pushes with error feedback).
#include <gtest/gtest.h>

#include "data/generators.h"
#include "ml/metrics.h"
#include "ml/softmax.h"
#include "ps/parameter_server.h"

namespace dmml {
namespace {

using la::DenseMatrix;

// --------------------------------------------------------------------------
// Softmax regression
// --------------------------------------------------------------------------

TEST(SoftmaxTest, SeparatesThreeBlobs) {
  auto blobs = data::MakeBlobs(450, 3, 3, 8.0, 1.0, 1);
  auto model = ml::TrainSoftmax(blobs.x, blobs.labels);
  ASSERT_TRUE(model.ok());
  auto pred = *model->Predict(blobs.x);
  int hits = 0;
  for (size_t i = 0; i < pred.size(); ++i) hits += pred[i] == blobs.labels[i];
  EXPECT_GT(static_cast<double>(hits) / pred.size(), 0.95);
}

TEST(SoftmaxTest, ProbabilitiesSumToOne) {
  auto blobs = data::MakeBlobs(120, 2, 4, 5.0, 1.2, 2);
  auto model = ml::TrainSoftmax(blobs.x, blobs.labels);
  ASSERT_TRUE(model.ok());
  auto probs = *model->PredictProba(blobs.x);
  for (size_t i = 0; i < probs.rows(); ++i) {
    double total = 0;
    for (size_t c = 0; c < probs.cols(); ++c) {
      EXPECT_GE(probs.At(i, c), 0.0);
      total += probs.At(i, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(SoftmaxTest, LossDecreasesMonotonically) {
  auto blobs = data::MakeBlobs(200, 3, 3, 4.0, 1.5, 3);
  ml::SoftmaxConfig config;
  config.max_epochs = 50;
  config.tolerance = 0;
  auto model = ml::TrainSoftmax(blobs.x, blobs.labels, config);
  ASSERT_TRUE(model.ok());
  for (size_t e = 1; e < model->loss_history.size(); ++e) {
    EXPECT_LE(model->loss_history[e], model->loss_history[e - 1] + 1e-9);
  }
}

TEST(SoftmaxTest, TwoClassMatchesLogisticFamilyAccuracy) {
  auto ds = data::MakeClassification(500, 4, 0.05, 4);
  std::vector<int> labels(ds.y.rows());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(ds.y.At(i, 0));
  }
  ml::SoftmaxConfig config;
  config.max_epochs = 500;
  auto model = ml::TrainSoftmax(ds.x, labels, config);
  ASSERT_TRUE(model.ok());
  auto pred = *model->Predict(ds.x);
  int hits = 0;
  for (size_t i = 0; i < pred.size(); ++i) hits += pred[i] == labels[i];
  double softmax_acc = static_cast<double>(hits) / pred.size();

  // On two classes softmax must match the Binomial GLM, which is the ground
  // truth for what is achievable on this (noisy) dataset.
  ml::GlmConfig glm_config;
  glm_config.family = ml::GlmFamily::kBinomial;
  glm_config.learning_rate = 0.5;
  glm_config.max_epochs = 500;
  auto glm = ml::TrainGlm(ds.x, ds.y, glm_config);
  ASSERT_TRUE(glm.ok());
  double glm_acc = *ml::Accuracy(ds.y, *glm->PredictLabels(ds.x));
  EXPECT_NEAR(softmax_acc, glm_acc, 0.02);
  EXPECT_GT(softmax_acc, 0.7);
}

TEST(SoftmaxTest, ArbitraryLabelValuesPreserved) {
  auto blobs = data::MakeBlobs(150, 2, 3, 10.0, 0.5, 5);
  std::vector<int> labels(blobs.labels.size());
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = blobs.labels[i] * 100 - 7;
  auto model = ml::TrainSoftmax(blobs.x, labels);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->classes, (std::vector<int>{-7, 93, 193}));
  auto pred = model->Predict(blobs.x);
  ASSERT_TRUE(pred.ok());
  for (int p : *pred) {
    EXPECT_TRUE(p == -7 || p == 93 || p == 193);
  }
}

TEST(SoftmaxTest, Validation) {
  EXPECT_FALSE(ml::TrainSoftmax(DenseMatrix(0, 2), {}).ok());
  EXPECT_FALSE(ml::TrainSoftmax(DenseMatrix(3, 2), {0, 1}).ok());
  EXPECT_FALSE(ml::TrainSoftmax(DenseMatrix(3, 2), {5, 5, 5}).ok());
  auto blobs = data::MakeBlobs(50, 2, 2, 8.0, 0.5, 6);
  ml::SoftmaxConfig config;
  config.learning_rate = 0;
  EXPECT_FALSE(ml::TrainSoftmax(blobs.x, blobs.labels, config).ok());
  auto model = ml::TrainSoftmax(blobs.x, blobs.labels);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Predict(DenseMatrix(2, 5)).ok());
}

// --------------------------------------------------------------------------
// Gradient-sparsified parameter server
// --------------------------------------------------------------------------

ps::PsConfig SparseBase() {
  ps::PsConfig config;
  config.num_workers = 2;
  config.epochs = 30;
  config.batch_size = 32;
  config.learning_rate = 0.2;
  config.family = ml::GlmFamily::kBinomial;
  return config;
}

TEST(SparsePsTest, PushSparseUpdatesOnlyGivenCoordinates) {
  ps::ParameterServer server(4, 1);
  server.PushSparse({1, 3}, {2.0, -1.0}, 0.5, 0.1);
  std::vector<double> w;
  double b = 0;
  server.Pull(&w, &b);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], -0.2);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
  EXPECT_DOUBLE_EQ(w[3], 0.1);
  EXPECT_DOUBLE_EQ(b, -0.05);
}

TEST(SparsePsTest, TopKReducesCommunication) {
  auto ds = data::MakeClassification(800, 40, 0.0, 7);
  ps::PsConfig dense = SparseBase();
  auto dense_result = ps::TrainGlmParameterServer(ds.x, ds.y, dense);
  ASSERT_TRUE(dense_result.ok());

  ps::PsConfig sparse = SparseBase();
  sparse.topk_fraction = 0.1;  // 4 of 40 coordinates per push.
  auto sparse_result = ps::TrainGlmParameterServer(ds.x, ds.y, sparse);
  ASSERT_TRUE(sparse_result.ok());

  EXPECT_EQ(dense_result->total_coordinates_pushed,
            dense_result->total_pushes * 40);
  EXPECT_EQ(sparse_result->total_coordinates_pushed,
            sparse_result->total_pushes * 4);
  EXPECT_LT(sparse_result->total_coordinates_pushed,
            dense_result->total_coordinates_pushed / 5);
}

TEST(SparsePsTest, ErrorFeedbackPreservesConvergence) {
  auto ds = data::MakeClassification(800, 40, 0.0, 8);
  ps::PsConfig sparse = SparseBase();
  sparse.topk_fraction = 0.1;
  auto result = ps::TrainGlmParameterServer(ds.x, ds.y, sparse);
  ASSERT_TRUE(result.ok());
  auto labels = result->model.PredictLabels(ds.x);
  ASSERT_TRUE(labels.ok());
  EXPECT_GT(*ml::Accuracy(ds.y, *labels), 0.85);
  EXPECT_LT(result->loss_per_epoch.back(), result->loss_per_epoch.front());
}

TEST(SparsePsTest, WorksAcrossConsistencyModes) {
  auto ds = data::MakeClassification(400, 20, 0.05, 9);
  for (auto mode : {ps::ConsistencyMode::kBsp, ps::ConsistencyMode::kAsync,
                    ps::ConsistencyMode::kSsp}) {
    ps::PsConfig config = SparseBase();
    config.mode = mode;
    config.topk_fraction = 0.25;
    auto result = ps::TrainGlmParameterServer(ds.x, ds.y, config);
    ASSERT_TRUE(result.ok()) << ps::ConsistencyModeName(mode);
    auto labels = result->model.PredictLabels(ds.x);
    EXPECT_GT(*ml::Accuracy(ds.y, *labels), 0.8) << ps::ConsistencyModeName(mode);
  }
}

TEST(SparsePsTest, InvalidFractionRejected) {
  auto ds = data::MakeClassification(100, 5, 0.0, 10);
  ps::PsConfig config = SparseBase();
  config.topk_fraction = 0;
  EXPECT_FALSE(ps::TrainGlmParameterServer(ds.x, ds.y, config).ok());
  config.topk_fraction = 1.5;
  EXPECT_FALSE(ps::TrainGlmParameterServer(ds.x, ds.y, config).ok());
}

}  // namespace
}  // namespace dmml
