// Tests for gradient-boosted tree ensembles.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "ml/gradient_boosting.h"
#include "ml/metrics.h"

namespace dmml::ml {
namespace {

using la::DenseMatrix;

TEST(BoostingTest, RegressorFitsNonlinearTarget) {
  // y = sin(3 x0) + x1^2: out of reach for linear models, easy for boosting.
  const size_t n = 600;
  auto x = data::UniformMatrix(n, 2, -1, 1, 1);
  DenseMatrix y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    y.At(i, 0) = std::sin(3 * x.At(i, 0)) + x.At(i, 1) * x.At(i, 1);
  }
  BoostingConfig config;
  config.num_rounds = 80;
  config.learning_rate = 0.2;
  auto model = TrainBoostedRegressor(x, y, config);
  ASSERT_TRUE(model.ok());
  auto pred = *model->Predict(x);
  EXPECT_GT(*R2(y, pred), 0.97);
}

TEST(BoostingTest, TrainingLossDecreasesMonotonically) {
  auto ds = data::MakeRegression(300, 4, 0.1, 2);
  BoostingConfig config;
  config.num_rounds = 40;
  auto model = TrainBoostedRegressor(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->train_loss.size(), 40u);
  for (size_t r = 1; r < model->train_loss.size(); ++r) {
    EXPECT_LE(model->train_loss[r], model->train_loss[r - 1] + 1e-9);
  }
}

TEST(BoostingTest, ClassifierLearnsXor) {
  DenseMatrix x(400, 2);
  DenseMatrix y(400, 1);
  Rng rng(3);
  for (size_t i = 0; i < 400; ++i) {
    double a = rng.Uniform() < 0.5 ? 0.0 : 1.0;
    double b = rng.Uniform() < 0.5 ? 0.0 : 1.0;
    x.At(i, 0) = a + rng.Normal(0, 0.05);
    x.At(i, 1) = b + rng.Normal(0, 0.05);
    y.At(i, 0) = (a != b) ? 1.0 : 0.0;
  }
  BoostingConfig config;
  config.num_rounds = 30;
  config.learning_rate = 0.3;
  auto model = TrainBoostedClassifier(x, y, config);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(*Accuracy(y, *model->PredictLabels(x)), 0.97);
  // Probabilities are valid and informative.
  auto probs = *model->Predict(x);
  for (size_t i = 0; i < probs.rows(); ++i) {
    EXPECT_GE(probs.At(i, 0), 0.0);
    EXPECT_LE(probs.At(i, 0), 1.0);
  }
  EXPECT_GT(*RocAuc(y, probs), 0.99);
}

TEST(BoostingTest, BaseScoreIsPriorLogOdds) {
  DenseMatrix x(10, 1);
  DenseMatrix y(10, 1);
  for (size_t i = 0; i < 8; ++i) y.At(i, 0) = 1.0;  // 80% positives.
  BoostingConfig config;
  config.num_rounds = 1;
  auto model = TrainBoostedClassifier(x, y, config);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->base_score, std::log(0.8 / 0.2), 1e-9);
}

TEST(BoostingTest, MoreRoundsReduceLoss) {
  auto ds = data::MakeClassification(400, 4, 0.1, 4);
  BoostingConfig few, many;
  few.num_rounds = 5;
  many.num_rounds = 60;
  auto model_few = TrainBoostedClassifier(ds.x, ds.y, few);
  auto model_many = TrainBoostedClassifier(ds.x, ds.y, many);
  ASSERT_TRUE(model_few.ok());
  ASSERT_TRUE(model_many.ok());
  EXPECT_LT(model_many->train_loss.back(), model_few->train_loss.back());
}

TEST(BoostingTest, SubsamplingStillLearns) {
  auto ds = data::MakeRegression(500, 3, 0.1, 5);
  BoostingConfig config;
  config.num_rounds = 60;
  config.subsample = 0.5;
  auto model = TrainBoostedRegressor(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(*R2(ds.y, *model->Predict(ds.x)), 0.9);
}

TEST(BoostingTest, ShrinkageControlsStepSize) {
  auto ds = data::MakeRegression(200, 3, 0.05, 6);
  BoostingConfig slow;
  slow.num_rounds = 5;
  slow.learning_rate = 0.01;
  auto model = TrainBoostedRegressor(ds.x, ds.y, slow);
  ASSERT_TRUE(model.ok());
  // With tiny shrinkage and few rounds the fit barely moves off the mean.
  double var = 0, mean = 0;
  for (size_t i = 0; i < ds.y.rows(); ++i) mean += ds.y.At(i, 0);
  mean /= static_cast<double>(ds.y.rows());
  for (size_t i = 0; i < ds.y.rows(); ++i) {
    double d = ds.y.At(i, 0) - mean;
    var += d * d;
  }
  var /= static_cast<double>(ds.y.rows());
  EXPECT_GT(model->train_loss.back(), 0.3 * var);
}

TEST(BoostingTest, Validation) {
  auto ds = data::MakeRegression(50, 2, 0.1, 7);
  BoostingConfig config;
  config.num_rounds = 0;
  EXPECT_FALSE(TrainBoostedRegressor(ds.x, ds.y, config).ok());
  config = BoostingConfig{};
  config.learning_rate = 0;
  EXPECT_FALSE(TrainBoostedRegressor(ds.x, ds.y, config).ok());
  config = BoostingConfig{};
  config.subsample = 0;
  EXPECT_FALSE(TrainBoostedRegressor(ds.x, ds.y, config).ok());
  config = BoostingConfig{};
  EXPECT_FALSE(TrainBoostedClassifier(ds.x, ds.y, config).ok());  // Non-binary y.
  GradientBoostingModel untrained;
  EXPECT_FALSE(untrained.Predict(ds.x).ok());
}

TEST(BoostingTest, DeterministicGivenSeed) {
  auto ds = data::MakeRegression(150, 3, 0.2, 8);
  BoostingConfig config;
  config.num_rounds = 10;
  config.subsample = 0.7;
  config.seed = 55;
  auto a = TrainBoostedRegressor(ds.x, ds.y, config);
  auto b = TrainBoostedRegressor(ds.x, ds.y, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a->Predict(ds.x) == *b->Predict(ds.x));
}

}  // namespace
}  // namespace dmml::ml
