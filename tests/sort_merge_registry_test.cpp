// Tests for the sort-merge join (vs hash join equivalence) and the
// model registry (versioned model management).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "data/generators.h"
#include "ml/glm.h"
#include "modelsel/model_registry.h"
#include "relational/sort_merge_join.h"

namespace dmml {
namespace {

using relational::HashJoin;
using relational::SortMergeJoin;
using storage::DataType;
using storage::Schema;
using storage::Table;

// --------------------------------------------------------------------------
// Sort-merge join
// --------------------------------------------------------------------------

Table MakeKeyed(const std::vector<int64_t>& keys, const std::vector<double>& values,
                const char* key_name, const char* value_name) {
  Table t(Schema({{key_name, DataType::kInt64, true},
                  {value_name, DataType::kDouble, true}}));
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(t.AppendRow({keys[i], values[i]}).ok());
  }
  return t;
}

// Canonical multiset of (key, lvalue, rvalue) triples from a join output.
std::vector<std::tuple<int64_t, double, double>> Triples(const Table& joined) {
  std::vector<std::tuple<int64_t, double, double>> out;
  auto k = *joined.schema().FieldIndex("k");
  auto lv = *joined.schema().FieldIndex("lv");
  auto rv = *joined.schema().FieldIndex("rv");
  for (size_t i = 0; i < joined.num_rows(); ++i) {
    out.emplace_back(joined.column(k).GetInt64(i), joined.column(lv).GetDouble(i),
                     joined.column(rv).GetDouble(i));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SortMergeJoinTest, MatchesHashJoinRowMultiset) {
  Rng rng(1);
  std::vector<int64_t> lkeys, rkeys;
  std::vector<double> lvals, rvals;
  for (int i = 0; i < 200; ++i) {
    lkeys.push_back(static_cast<int64_t>(rng.UniformInt(uint64_t{30})));
    lvals.push_back(rng.Normal());
  }
  for (int i = 0; i < 60; ++i) {
    rkeys.push_back(static_cast<int64_t>(rng.UniformInt(uint64_t{30})));
    rvals.push_back(rng.Normal());
  }
  Table left = MakeKeyed(lkeys, lvals, "k", "lv");
  Table right = MakeKeyed(rkeys, rvals, "k2", "rv");
  // Rename right key to line up schemas: select k2 as key on the right.
  auto smj = SortMergeJoin(left, right, "k", "k2");
  auto hj = HashJoin(left, right, "k", "k2");
  ASSERT_TRUE(smj.ok());
  ASSERT_TRUE(hj.ok());
  EXPECT_EQ(smj->num_rows(), hj->num_rows());
  EXPECT_EQ(Triples(*smj), Triples(*hj));
}

TEST(SortMergeJoinTest, OutputIsKeyOrdered) {
  Table left = MakeKeyed({5, 1, 3}, {50, 10, 30}, "k", "lv");
  Table right = MakeKeyed({3, 5, 1}, {0.3, 0.5, 0.1}, "k2", "rv");
  auto joined = SortMergeJoin(left, right, "k", "k2");
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->num_rows(), 3u);
  auto k = *joined->schema().FieldIndex("k");
  EXPECT_EQ(joined->column(k).GetInt64(0), 1);
  EXPECT_EQ(joined->column(k).GetInt64(1), 3);
  EXPECT_EQ(joined->column(k).GetInt64(2), 5);
}

TEST(SortMergeJoinTest, ManyToManyFansOut) {
  Table left = MakeKeyed({1, 1}, {10, 11}, "k", "lv");
  Table right = MakeKeyed({1, 1, 1}, {0.1, 0.2, 0.3}, "k2", "rv");
  auto joined = SortMergeJoin(left, right, "k", "k2");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 6u);
}

TEST(SortMergeJoinTest, NullKeysDropped) {
  Table left(Schema({{"k", DataType::kInt64, true}}));
  ASSERT_TRUE(left.AppendRow({std::monostate{}}).ok());
  ASSERT_TRUE(left.AppendRow({int64_t{1}}).ok());
  Table right(Schema({{"k2", DataType::kInt64, true}}));
  ASSERT_TRUE(right.AppendRow({int64_t{1}}).ok());
  ASSERT_TRUE(right.AppendRow({std::monostate{}}).ok());
  auto joined = SortMergeJoin(left, right, "k", "k2");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 1u);
}

TEST(SortMergeJoinTest, StringKeysAndValidation) {
  Table left(Schema({{"k", DataType::kString, true}}));
  ASSERT_TRUE(left.AppendRow({std::string("b")}).ok());
  ASSERT_TRUE(left.AppendRow({std::string("a")}).ok());
  Table right(Schema({{"k2", DataType::kString, true}}));
  ASSERT_TRUE(right.AppendRow({std::string("a")}).ok());
  auto joined = SortMergeJoin(left, right, "k", "k2");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 1u);

  Table dbl(Schema({{"k3", DataType::kDouble, true}}));
  EXPECT_FALSE(SortMergeJoin(left, dbl, "k", "k3").ok());
  EXPECT_FALSE(SortMergeJoin(left, right, "nope", "k2").ok());
}

// --------------------------------------------------------------------------
// Model registry
// --------------------------------------------------------------------------

class ModelRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/dmml_registry_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    // Fresh directory per test.
    std::string cmd = "rm -rf " + root_;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  ml::GlmModel TrainSmallModel(uint64_t seed) {
    auto ds = data::MakeRegression(100, 3, 0.1, seed);
    ml::GlmConfig config;
    config.solver = ml::GlmSolver::kNormalEquations;
    return *ml::TrainGlm(ds.x, ds.y, config);
  }

  std::string root_;
};

TEST_F(ModelRegistryTest, SaveLoadRoundTrip) {
  auto registry = modelsel::ModelRegistry::Open(root_);
  ASSERT_TRUE(registry.ok());
  auto model = TrainSmallModel(1);
  auto version = registry->Save("churn", model, {{"dataset", "synthetic"}});
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);

  auto loaded = registry->Load("churn");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->weights.ApproxEquals(model.weights, 0));
  EXPECT_DOUBLE_EQ(loaded->intercept, model.intercept);
  EXPECT_EQ(loaded->family, model.family);
}

TEST_F(ModelRegistryTest, VersionsAreAppendOnly) {
  auto registry = modelsel::ModelRegistry::Open(root_);
  ASSERT_TRUE(registry.ok());
  auto m1 = TrainSmallModel(1);
  auto m2 = TrainSmallModel(2);
  EXPECT_EQ(*registry->Save("m", m1), 1u);
  EXPECT_EQ(*registry->Save("m", m2), 2u);
  EXPECT_EQ(registry->ListVersions("m"), (std::vector<size_t>{1, 2}));

  // Latest is v2; v1 remains loadable.
  auto latest = registry->Load("m");
  ASSERT_TRUE(latest.ok());
  EXPECT_TRUE(latest->weights.ApproxEquals(m2.weights, 0));
  auto v1 = registry->Load("m", 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->weights.ApproxEquals(m1.weights, 0));
}

TEST_F(ModelRegistryTest, RecordsCarryTags) {
  auto registry = modelsel::ModelRegistry::Open(root_);
  ASSERT_TRUE(registry.ok());
  auto model = TrainSmallModel(3);
  ASSERT_TRUE(
      registry->Save("tagged", model, {{"rmse", "0.123"}, {"owner", "alice"}}).ok());
  auto record = registry->GetRecord("tagged");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->name, "tagged");
  EXPECT_EQ(record->version, 1u);
  EXPECT_EQ(record->num_features, 3u);
  EXPECT_EQ(record->tags.at("rmse"), "0.123");
  EXPECT_EQ(record->tags.at("owner"), "alice");
}

TEST_F(ModelRegistryTest, ListModels) {
  auto registry = modelsel::ModelRegistry::Open(root_);
  ASSERT_TRUE(registry.ok());
  auto model = TrainSmallModel(4);
  ASSERT_TRUE(registry->Save("alpha", model).ok());
  ASSERT_TRUE(registry->Save("beta", model).ok());
  EXPECT_EQ(registry->ListModels(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(ModelRegistryTest, ErrorsOnMisuse) {
  auto registry = modelsel::ModelRegistry::Open(root_);
  ASSERT_TRUE(registry.ok());
  EXPECT_FALSE(registry->Load("ghost").ok());
  EXPECT_FALSE(registry->GetRecord("ghost").ok());
  auto model = TrainSmallModel(5);
  EXPECT_FALSE(registry->Save("bad name!", model).ok());
  EXPECT_FALSE(registry->Save("", model).ok());
  ml::GlmModel untrained;
  EXPECT_FALSE(registry->Save("empty", untrained).ok());
  ASSERT_TRUE(registry->Save("ok", model).ok());
  EXPECT_FALSE(registry->Load("ok", 99).ok());
  // Tag keys with spaces rejected.
  EXPECT_FALSE(registry->Save("ok", model, {{"bad key", "v"}}).ok());
}

TEST_F(ModelRegistryTest, ReopenSeesExistingModels) {
  {
    auto registry = modelsel::ModelRegistry::Open(root_);
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE(registry->Save("persist", TrainSmallModel(6)).ok());
  }
  auto reopened = modelsel::ModelRegistry::Open(root_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->ListModels(), std::vector<std::string>{"persist"});
  EXPECT_TRUE(reopened->Load("persist").ok());
}

}  // namespace
}  // namespace dmml
