// Tests for the full compilation pipeline (rewrites -> CSE -> fusion),
// including a differential property suite: the compiled plan must produce
// the same result as naive execution for randomly assembled DAGs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/generators.h"
#include "la/kernels.h"
#include "laopt/executor.h"
#include "laopt/parser.h"
#include "laopt/pipeline.h"

namespace dmml::laopt {
namespace {

using la::DenseMatrix;

ExprPtr Leaf(std::shared_ptr<DenseMatrix> m, const char* name) {
  return *ExprNode::Input(std::move(m), name);
}

TEST(PipelineTest, AllPassesReportAndAgree) {
  auto xm = std::make_shared<DenseMatrix>(data::GaussianMatrix(60, 10, 1));
  auto vm = std::make_shared<DenseMatrix>(data::GaussianMatrix(60, 1, 2));
  // Two independently built copies of t(X)%*%v, double transpose, nested
  // scalars, and an elementwise tail: every pass has something to do.
  auto build_proj = [&] {
    auto x = Leaf(xm, "X");
    auto v = Leaf(vm, "v");
    return *ExprNode::MatMul(*ExprNode::Transpose(*ExprNode::Transpose(
                                 *ExprNode::Transpose(x))),
                             v);
  };
  auto proj1 = build_proj();
  auto proj2 = build_proj();
  auto expr = *ExprNode::Add(
      *ExprNode::ScalarMul(2.0, *ExprNode::ScalarMul(3.0, proj1)),
      *ExprNode::ElemMul(proj2, proj2));

  PlanReport report;
  auto result = CompileAndExecute(expr, {}, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(report.rewriter.transposes_eliminated, 2u);
  EXPECT_GE(report.rewriter.scalars_folded, 1u);
  EXPECT_GT(report.cse.merges, 0u);
  EXPECT_GE(report.fusion.regions_fused, 1u);

  auto naive = Execute(expr);
  ASSERT_TRUE(naive.ok());
  EXPECT_TRUE(result->ApproxEquals(*naive, 1e-9));
}

TEST(PipelineTest, PassesCanBeDisabled) {
  auto xm = std::make_shared<DenseMatrix>(data::GaussianMatrix(5, 5, 3));
  auto x1 = Leaf(xm, "X");
  auto x2 = Leaf(xm, "X");
  auto expr = *ExprNode::Add(*ExprNode::Transpose(x1), *ExprNode::Transpose(x2));
  PipelineOptions options;
  options.run_cse = false;
  options.run_fusion = false;
  PlanReport report;
  auto result = CompileAndExecute(expr, options, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(report.cse.merges, 0u);
  EXPECT_EQ(report.fusion.regions_fused, 0u);
}

TEST(PipelineTest, WorksOnParsedExpressions) {
  auto xm = std::make_shared<DenseMatrix>(data::GaussianMatrix(40, 6, 4));
  auto vm = std::make_shared<DenseMatrix>(data::GaussianMatrix(6, 1, 5));
  Environment env = {{"X", xm}, {"v", vm}};
  auto parsed = ParseExpression("sum((X %*% v) .* (X %*% v))", env);
  // '.*' is not in the grammar; use '*' for elementwise.
  ASSERT_FALSE(parsed.ok());
  parsed = ParseExpression("sum((X %*% v) * (X %*% v))", env);
  ASSERT_TRUE(parsed.ok());
  PlanReport report;
  auto result = CompileAndExecute(*parsed, {}, &report);
  ASSERT_TRUE(result.ok());
  auto mv = la::Multiply(*xm, *vm);
  double expected = 0;
  for (size_t i = 0; i < mv.rows(); ++i) expected += mv.At(i, 0) * mv.At(i, 0);
  EXPECT_NEAR(result->At(0, 0), expected, 1e-7 * std::max(1.0, std::fabs(expected)));
  // CSE shares the two (X %*% v) occurrences.
  EXPECT_GT(report.cse.merges, 0u);
}

TEST(PipelineTest, NullRejected) {
  EXPECT_FALSE(CompilePlan(nullptr).ok());
  EXPECT_FALSE(CompileAndExecute(nullptr).ok());
}

// Differential property: compiled == naive on random DAGs mixing matmuls,
// transposes, scalars, elementwise ops and aggregates.
class PipelineDifferential : public ::testing::TestWithParam<int> {};

TEST_P(PipelineDifferential, CompiledMatchesNaive) {
  const int seed = GetParam();
  Rng rng(seed);
  const size_t n = 5 + rng.UniformInt(uint64_t{20});
  const size_t d = 2 + rng.UniformInt(uint64_t{10});

  auto xm = std::make_shared<DenseMatrix>(data::GaussianMatrix(n, d, seed * 3 + 1));
  auto ym = std::make_shared<DenseMatrix>(data::GaussianMatrix(n, d, seed * 3 + 2));
  auto vm = std::make_shared<DenseMatrix>(data::GaussianMatrix(d, 1, seed * 3 + 3));

  // Random expression over a fixed grammar; always shape-valid.
  auto x = Leaf(xm, "X");
  auto y = Leaf(ym, "Y");
  auto v = Leaf(vm, "v");
  ExprPtr e = x;
  for (int step = 0; step < 6; ++step) {
    switch (rng.UniformInt(uint64_t{5})) {
      case 0:
        e = *ExprNode::Add(e, y);
        break;
      case 1:
        e = *ExprNode::ElemMul(e, x);
        break;
      case 2:
        e = *ExprNode::ScalarMul(rng.Uniform(-2, 2), e);
        break;
      case 3:
        e = *ExprNode::Subtract(e, *ExprNode::ScalarMul(0.5, y));
        break;
      case 4:
        e = *ExprNode::Transpose(*ExprNode::Transpose(e));
        break;
    }
  }
  // Finish with a reduction mixing matmul and aggregates.
  ExprPtr final_expr;
  if (seed % 2) {
    final_expr = *ExprNode::Sum(*ExprNode::MatMul(e, v));
  } else {
    final_expr = *ExprNode::ColSums(e);
  }

  auto naive = Execute(final_expr);
  PlanReport report;
  auto compiled = CompileAndExecute(final_expr, {}, &report);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(compiled.ok());
  double scale = std::max(1.0, la::FrobeniusNorm(*naive));
  EXPECT_TRUE(compiled->ApproxEquals(*naive, 1e-8 * scale))
      << final_expr->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDifferential, ::testing::Range(0, 16));

}  // namespace
}  // namespace dmml::laopt
