// Tests for ALS matrix factorization and GLM training on compressed data.
#include <gtest/gtest.h>

#include <cmath>

#include "cla/compressed_glm.h"
#include "data/generators.h"
#include "factorized/factorized_glm.h"
#include "la/kernels.h"
#include "ml/als.h"
#include "ml/metrics.h"

namespace dmml {
namespace {

using la::DenseMatrix;
using la::SparseMatrix;

// Builds a ratings matrix from planted rank-r factors, observing each cell
// with probability `density`.
SparseMatrix PlantedRatings(size_t n, size_t m, size_t rank, double density,
                            double noise, uint64_t seed, DenseMatrix* u_out,
                            DenseMatrix* v_out) {
  Rng rng(seed);
  DenseMatrix u(n, rank), v(m, rank);
  for (size_t e = 0; e < u.size(); ++e) u.data()[e] = rng.Normal(0, 1.0);
  for (size_t e = 0; e < v.size(); ++e) v.data()[e] = rng.Normal(0, 1.0);
  std::vector<la::Triplet> triplets;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (!rng.Bernoulli(density)) continue;
      double r = la::Dot(u.Row(i), v.Row(j), rank) + rng.Normal(0, noise);
      if (r == 0.0) r = 1e-9;
      triplets.push_back({i, j, r});
    }
  }
  if (u_out) *u_out = std::move(u);
  if (v_out) *v_out = std::move(v);
  return SparseMatrix::FromTriplets(n, m, std::move(triplets));
}

TEST(AlsTest, RecoversPlantedLowRankStructure) {
  auto ratings = PlantedRatings(60, 40, 3, 0.4, 0.01, 1, nullptr, nullptr);
  ml::AlsConfig config;
  config.rank = 3;
  config.l2 = 0.05;
  config.max_iters = 30;
  auto model = ml::TrainAls(ratings, config);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->rmse_history.back(), 0.1);
}

TEST(AlsTest, RmseDecreasesMonotonically) {
  auto ratings = PlantedRatings(40, 30, 2, 0.3, 0.1, 2, nullptr, nullptr);
  ml::AlsConfig config;
  config.rank = 2;
  config.max_iters = 15;
  config.tolerance = 0;
  auto model = ml::TrainAls(ratings, config);
  ASSERT_TRUE(model.ok());
  for (size_t i = 1; i < model->rmse_history.size(); ++i) {
    EXPECT_LE(model->rmse_history[i], model->rmse_history[i - 1] + 1e-6);
  }
}

TEST(AlsTest, GeneralizesToHeldOutEntries) {
  // Same planted factors, two disjoint observation masks.
  DenseMatrix u, v;
  auto train = PlantedRatings(80, 50, 3, 0.3, 0.05, 3, &u, &v);
  ml::AlsConfig config;
  config.rank = 3;
  config.l2 = 0.05;
  config.max_iters = 25;
  auto model = ml::TrainAls(train, config);
  ASSERT_TRUE(model.ok());
  // Evaluate on fresh entries from the same factors.
  Rng rng(999);
  double acc = 0;
  int count = 0;
  for (int s = 0; s < 500; ++s) {
    size_t i = rng.UniformInt(uint64_t{80});
    size_t j = rng.UniformInt(uint64_t{50});
    double truth = la::Dot(u.Row(i), v.Row(j), 3);
    double pred = *model->Predict(i, j);
    acc += (pred - truth) * (pred - truth);
    ++count;
  }
  EXPECT_LT(std::sqrt(acc / count), 0.6);
}

TEST(AlsTest, HigherRankFitsTighter) {
  auto ratings = PlantedRatings(50, 40, 4, 0.5, 0.05, 4, nullptr, nullptr);
  double prev = 1e18;
  for (size_t rank : {1, 2, 4}) {
    ml::AlsConfig config;
    config.rank = rank;
    config.l2 = 0.05;
    config.max_iters = 25;
    auto model = ml::TrainAls(ratings, config);
    ASSERT_TRUE(model.ok());
    EXPECT_LT(model->rmse_history.back(), prev + 1e-9);
    prev = model->rmse_history.back();
  }
}

TEST(AlsTest, UsersWithoutRatingsKeepInitialFactors) {
  // Row 5 has no observations; training must not touch or crash on it.
  auto ratings = SparseMatrix::FromTriplets(
      6, 4, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 3.0}, {3, 3, 1.5}, {4, 0, 2.5}});
  ml::AlsConfig config;
  config.rank = 2;
  auto model = ml::TrainAls(ratings, config);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Predict(5, 0).ok());
}

TEST(AlsTest, Validation) {
  ml::AlsConfig config;
  EXPECT_FALSE(ml::TrainAls(SparseMatrix(), config).ok());
  auto empty_obs = SparseMatrix::FromTriplets(3, 3, {});
  EXPECT_FALSE(ml::TrainAls(empty_obs, config).ok());
  auto ratings = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}});
  config.rank = 0;
  EXPECT_FALSE(ml::TrainAls(ratings, config).ok());
  config = ml::AlsConfig{};
  config.l2 = 0;
  EXPECT_FALSE(ml::TrainAls(ratings, config).ok());
  config = ml::AlsConfig{};
  auto model = ml::TrainAls(ratings, config);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Predict(5, 0).ok());
  EXPECT_FALSE(model->Rmse(SparseMatrix::FromTriplets(9, 9, {{0, 0, 1.0}})).ok());
}

// --------------------------------------------------------------------------
// Compressed GLM
// --------------------------------------------------------------------------

TEST(CompressedGlmTest, MatchesDenseMatrixFormTraining) {
  auto x = data::LowCardinalityMatrix(400, 6, 8, false, 5);
  Rng rng(6);
  DenseMatrix w_true(6, 1);
  for (size_t j = 0; j < 6; ++j) w_true.At(j, 0) = rng.Normal();
  DenseMatrix y = la::Gemv(x, w_true);

  auto cm = cla::CompressedMatrix::Compress(x);
  ml::GlmConfig config;
  config.learning_rate = 1e-4;  // Low-card values are large; keep steps stable.
  config.max_epochs = 50;
  config.tolerance = 0;
  auto compressed = cla::TrainCompressedGlm(cm, y, config);
  ASSERT_TRUE(compressed.ok());
  auto dense = factorized::TrainDenseGlmMatrixForm(x, y, config);
  ASSERT_TRUE(dense.ok());
  EXPECT_TRUE(compressed->weights.ApproxEquals(dense->weights, 1e-8));
  EXPECT_NEAR(compressed->intercept, dense->intercept, 1e-8);
}

TEST(CompressedGlmTest, LogisticFamilyOnCompressedData) {
  auto ds = data::MakeClassification(500, 5, 0.05, 7);
  // Quantize features so compression bites but the task stays learnable.
  DenseMatrix x(ds.x.rows(), ds.x.cols());
  for (size_t e = 0; e < x.size(); ++e) {
    x.data()[e] = std::round(ds.x.data()[e] * 2.0) / 2.0;
  }
  auto cm = cla::CompressedMatrix::Compress(x);
  ml::GlmConfig config;
  config.family = ml::GlmFamily::kBinomial;
  config.learning_rate = 0.5;
  config.max_epochs = 200;
  auto model = cla::TrainCompressedGlm(cm, ds.y, config);
  ASSERT_TRUE(model.ok());
  auto labels = model->PredictLabels(x);
  ASSERT_TRUE(labels.ok());
  EXPECT_GT(*ml::Accuracy(ds.y, *labels), 0.85);
}

TEST(CompressedGlmTest, Validation) {
  auto cm = cla::CompressedMatrix::Compress(data::GaussianMatrix(10, 2, 8));
  ml::GlmConfig config;
  EXPECT_FALSE(cla::TrainCompressedGlm(cm, DenseMatrix(5, 1), config).ok());
  config.learning_rate = 0;
  EXPECT_FALSE(cla::TrainCompressedGlm(cm, DenseMatrix(10, 1), config).ok());
  config = ml::GlmConfig{};
  config.family = ml::GlmFamily::kBinomial;
  EXPECT_FALSE(cla::TrainCompressedGlm(cm, DenseMatrix(10, 1, 0.3), config).ok());
}

}  // namespace
}  // namespace dmml
