// Parity tests for the parallel CLA engine: pooled compression and ops must
// agree with their serial selves across every encoding (incl. co-coded
// groups, all-zero columns and row counts not divisible by the chunking),
// ranged group kernels must agree with full-range calls, and the `Into`
// variants must overwrite dirty buffers without steady-state allocations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "cla/compressed_glm.h"
#include "cla/compressed_kmeans.h"
#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "la/kernels.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace dmml::cla {
namespace {

using la::DenseMatrix;

// 7 columns exercising every encoding: 2 low-card (DDC, co-codable),
// 2 sorted runs (RLE), 1 sparse (OLE), 1 gaussian (UC), 1 all-zero.
DenseMatrix ParityData(size_t n, uint64_t seed) {
  DenseMatrix m(n, 7);
  auto lowcard = data::LowCardinalityMatrix(n, 2, 5, false, seed);
  auto sorted = data::LowCardinalityMatrix(n, 2, 7, true, seed + 1);
  Rng rng(seed + 2);
  for (size_t i = 0; i < n; ++i) {
    m.At(i, 0) = lowcard.At(i, 0);
    m.At(i, 1) = lowcard.At(i, 1);
    m.At(i, 2) = sorted.At(i, 0);
    m.At(i, 3) = sorted.At(i, 1);
    if (rng.Bernoulli(0.05)) m.At(i, 4) = rng.Normal();
    m.At(i, 5) = rng.Normal();
    // Column 6 stays all-zero.
  }
  return m;
}

CompressionOptions CocodingOptions() {
  CompressionOptions options;
  options.enable_cocoding = true;
  return options;
}

// |a - b| bounded by `tol` scaled to the magnitude of the reference: pooled
// chunking reassociates floating-point sums, so parity is relative.
void ExpectMatricesNear(const DenseMatrix& a, const DenseMatrix& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  double max_abs = 1.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(a.data()[i]));
  }
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol * max_abs) << "element " << i;
  }
}

uint64_t Counter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

// --------------------------------------------------------------------------
// Pooled vs serial compression
// --------------------------------------------------------------------------

TEST(ClaParallelCompressTest, PooledPlanMatchesSerialPlan) {
  auto m = ParityData(4997, 21);  // Not divisible by any chunking.
  ThreadPool pool(4);
  auto serial = CompressedMatrix::Compress(m, CocodingOptions());
  auto pooled = CompressedMatrix::Compress(m, CocodingOptions(), &pool);

  ASSERT_EQ(serial.groups().size(), pooled.groups().size());
  for (size_t g = 0; g < serial.groups().size(); ++g) {
    EXPECT_EQ(serial.groups()[g]->format(), pooled.groups()[g]->format());
    EXPECT_EQ(serial.groups()[g]->columns(), pooled.groups()[g]->columns());
    EXPECT_EQ(serial.groups()[g]->SizeInBytes(), pooled.groups()[g]->SizeInBytes());
  }
  EXPECT_EQ(serial.SizeInBytes(), pooled.SizeInBytes());
  EXPECT_TRUE(serial.Decompress() == pooled.Decompress());
  EXPECT_TRUE(pooled.Decompress(&pool) == m);
}

TEST(ClaParallelCompressTest, PooledSamplingPlanMatchesSerial) {
  auto m = ParityData(8000, 22);
  ThreadPool pool(4);
  CompressionOptions options;
  options.sample_rows = 500;
  auto serial = CompressedMatrix::Compress(m, options);
  auto pooled = CompressedMatrix::Compress(m, options, &pool);
  ASSERT_EQ(serial.groups().size(), pooled.groups().size());
  for (size_t g = 0; g < serial.groups().size(); ++g) {
    EXPECT_EQ(serial.groups()[g]->format(), pooled.groups()[g]->format());
  }
  EXPECT_TRUE(serial.Decompress() == pooled.Decompress());
}

TEST(ClaParallelCompressTest, CompressCountersAdvance) {
  auto m = ParityData(1000, 23);
  uint64_t analyzed = Counter("cla.compress.columns_analyzed");
  uint64_t encoded = Counter("cla.compress.groups_encoded");
  auto cm = CompressedMatrix::Compress(m);
  EXPECT_EQ(Counter("cla.compress.columns_analyzed") - analyzed, m.cols());
  EXPECT_EQ(Counter("cla.compress.groups_encoded") - encoded, cm.groups().size());
}

// --------------------------------------------------------------------------
// Pooled vs serial ops
// --------------------------------------------------------------------------

class ClaParallelOpsTest : public ::testing::Test {
 protected:
  // Large enough that a 4-thread pool genuinely chunks the row space, prime
  // so chunk boundaries never align with runs or skip blocks.
  ClaParallelOpsTest()
      : m_(ParityData(9973, 31)),
        cm_(CompressedMatrix::Compress(m_, CocodingOptions())),
        pool_(4) {}

  DenseMatrix m_;
  CompressedMatrix cm_;
  ThreadPool pool_;
};

TEST_F(ClaParallelOpsTest, MultiplyVectorMatchesSerial) {
  auto v = data::GaussianMatrix(m_.cols(), 1, 41);
  auto serial = cm_.MultiplyVector(v);
  auto pooled = cm_.MultiplyVector(v, &pool_);
  ASSERT_TRUE(serial.ok() && pooled.ok());
  ExpectMatricesNear(*serial, *pooled, 1e-12);
  ExpectMatricesNear(*serial, la::Multiply(m_, v), 1e-9);
}

TEST_F(ClaParallelOpsTest, VectorMultiplyMatchesSerial) {
  auto u = data::GaussianMatrix(m_.rows(), 1, 42);
  auto serial = cm_.VectorMultiply(u);
  auto pooled = cm_.VectorMultiply(u, &pool_);
  ASSERT_TRUE(serial.ok() && pooled.ok());
  ExpectMatricesNear(*serial, *pooled, 1e-12);
  ExpectMatricesNear(*serial, la::Multiply(la::Transpose(u), m_), 1e-9);
}

TEST_F(ClaParallelOpsTest, MultiplyMatrixMatchesSerial) {
  auto rhs = data::GaussianMatrix(m_.cols(), 4, 43);
  auto serial = cm_.MultiplyMatrix(rhs);
  auto pooled = cm_.MultiplyMatrix(rhs, &pool_);
  ASSERT_TRUE(serial.ok() && pooled.ok());
  ExpectMatricesNear(*serial, *pooled, 1e-12);
  ExpectMatricesNear(*serial, la::Multiply(m_, rhs), 1e-9);
}

TEST_F(ClaParallelOpsTest, TransposeMultiplyMatrixMatchesSerial) {
  auto rhs = data::GaussianMatrix(m_.rows(), 3, 44);
  auto serial = cm_.TransposeMultiplyMatrix(rhs);
  auto pooled = cm_.TransposeMultiplyMatrix(rhs, &pool_);
  ASSERT_TRUE(serial.ok() && pooled.ok());
  ExpectMatricesNear(*serial, *pooled, 1e-12);
  ExpectMatricesNear(*serial, la::Multiply(la::Transpose(m_), rhs), 1e-9);
}

TEST_F(ClaParallelOpsTest, RowSquaredNormsSumDecompressMatchSerial) {
  ExpectMatricesNear(cm_.RowSquaredNorms(), cm_.RowSquaredNorms(&pool_), 1e-12);
  EXPECT_NEAR(cm_.Sum(), cm_.Sum(&pool_), 1e-12 * std::fabs(cm_.Sum()) + 1e-12);
  EXPECT_TRUE(cm_.Decompress() == cm_.Decompress(&pool_));
}

TEST_F(ClaParallelOpsTest, RangedCountersAdvanceUnderPool) {
  auto v = data::GaussianMatrix(m_.cols(), 1, 45);
  auto u = data::GaussianMatrix(m_.rows(), 1, 46);
  uint64_t ranged = Counter("cla.ops.ranged_calls");
  uint64_t reductions = Counter("cla.ops.partial_reductions");
  ASSERT_TRUE(cm_.MultiplyVector(v, &pool_).ok());
  ASSERT_TRUE(cm_.VectorMultiply(u, &pool_).ok());
  EXPECT_GT(Counter("cla.ops.ranged_calls"), ranged);
  EXPECT_GT(Counter("cla.ops.partial_reductions"), reductions);
}

// --------------------------------------------------------------------------
// Ranged group kernels vs full range
// --------------------------------------------------------------------------

TEST(ClaRangedKernelTest, SubRangesComposeToFullRange) {
  auto m = ParityData(2500, 51);
  auto cm = CompressedMatrix::Compress(m, CocodingOptions());
  const size_t n = m.rows(), d = m.cols(), k = 3;
  auto v = data::GaussianMatrix(d, 1, 52);
  auto u = data::GaussianMatrix(n, 1, 53);
  auto rhs_t = data::GaussianMatrix(n, k, 54);
  auto rhs_m = data::GaussianMatrix(d, k, 55);
  // Awkward split points: straddle RLE skip blocks and run boundaries.
  const std::vector<size_t> cuts = {0, 7, 1024, 1031, 2047, n};

  for (const auto& g : cm.groups()) {
    // MultiplyVector: ranged writes are disjoint per row.
    DenseMatrix full(n, 1), split(n, 1);
    g->MultiplyVectorRange(v.data(), nullptr, full.data(), 0, n);
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      g->MultiplyVectorRange(v.data(), nullptr, split.data(), cuts[c], cuts[c + 1]);
    }
    ExpectMatricesNear(full, split, 1e-12);

    // VectorMultiply: ranged contributions accumulate.
    DenseMatrix vm_full(1, d), vm_split(1, d);
    g->VectorMultiplyRange(u.data(), vm_full.data(), 0, n);
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      g->VectorMultiplyRange(u.data(), vm_split.data(), cuts[c], cuts[c + 1]);
    }
    ExpectMatricesNear(vm_full, vm_split, 1e-12);

    // MultiplyMatrix.
    DenseMatrix mm_full(n, k), mm_split(n, k);
    g->MultiplyMatrixRange(rhs_m, nullptr, &mm_full, 0, n, 0);
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      g->MultiplyMatrixRange(rhs_m, nullptr, &mm_split, cuts[c], cuts[c + 1], 0);
    }
    ExpectMatricesNear(mm_full, mm_split, 1e-12);

    // TransposeMultiplyMatrix.
    DenseMatrix tm_full(d, k), tm_split(d, k);
    g->TransposeMultiplyMatrixRange(rhs_t, tm_full.data(), 0, n, 0);
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      g->TransposeMultiplyMatrixRange(rhs_t, tm_split.data(), cuts[c],
                                      cuts[c + 1], 0);
    }
    ExpectMatricesNear(tm_full, tm_split, 1e-12);

    // Sum and row squared norms.
    double sum_split = 0;
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      sum_split += g->SumRange(cuts[c], cuts[c + 1]);
    }
    EXPECT_NEAR(g->SumRange(0, n), sum_split,
                1e-12 * (1.0 + std::fabs(sum_split)));
    DenseMatrix rn_full(n, 1), rn_split(n, 1);
    g->AddRowSquaredNormsRange(nullptr, rn_full.data(), 0, n);
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      g->AddRowSquaredNormsRange(nullptr, rn_split.data(), cuts[c], cuts[c + 1]);
    }
    ExpectMatricesNear(rn_full, rn_split, 1e-12);

    // Decompress.
    DenseMatrix dc_full(n, d), dc_split(n, d);
    g->DecompressRange(&dc_full, 0, n, 0);
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      g->DecompressRange(&dc_split, cuts[c], cuts[c + 1], 0);
    }
    EXPECT_TRUE(dc_full == dc_split);
  }
}

TEST(ClaRangedKernelTest, ExplicitPreaggMatchesThreadLocalFallback) {
  auto m = ParityData(1500, 61);
  auto cm = CompressedMatrix::Compress(m, CocodingOptions());
  auto v = data::GaussianMatrix(m.cols(), 1, 62);
  for (const auto& g : cm.groups()) {
    if (g->DictionarySize() == 0) continue;
    std::vector<double> preagg(g->DictionarySize());
    g->PreaggregateVector(v.data(), preagg.data());
    DenseMatrix with(m.rows(), 1), without(m.rows(), 1);
    g->MultiplyVectorRange(v.data(), preagg.data(), with.data(), 0, m.rows());
    g->MultiplyVectorRange(v.data(), nullptr, without.data(), 0, m.rows());
    EXPECT_TRUE(with == without);
  }
}

// --------------------------------------------------------------------------
// Into variants: dirty buffers and steady-state allocations
// --------------------------------------------------------------------------

TEST(ClaIntoTest, IntoVariantsOverwriteDirtyBuffers) {
  auto m = ParityData(800, 71);
  auto cm = CompressedMatrix::Compress(m, CocodingOptions());
  auto v = data::GaussianMatrix(m.cols(), 1, 72);
  auto u = data::GaussianMatrix(m.rows(), 1, 73);
  auto rhs_m = data::GaussianMatrix(m.cols(), 3, 74);
  auto rhs_t = data::GaussianMatrix(m.rows(), 3, 75);

  DenseMatrix dirty(5, 9, 123.456);  // Wrong shape AND poisoned contents.
  ASSERT_TRUE(cm.MultiplyVectorInto(v, &dirty).ok());
  EXPECT_TRUE(dirty == *cm.MultiplyVector(v));

  dirty = DenseMatrix(5, 9, -7.0);
  ASSERT_TRUE(cm.VectorMultiplyInto(u, &dirty).ok());
  EXPECT_TRUE(dirty == *cm.VectorMultiply(u));

  dirty = DenseMatrix(5, 9, 1e300);
  ASSERT_TRUE(cm.MultiplyMatrixInto(rhs_m, &dirty).ok());
  EXPECT_TRUE(dirty == *cm.MultiplyMatrix(rhs_m));

  dirty = DenseMatrix(5, 9, -1e300);
  ASSERT_TRUE(cm.TransposeMultiplyMatrixInto(rhs_t, &dirty).ok());
  EXPECT_TRUE(dirty == *cm.TransposeMultiplyMatrix(rhs_t));

  dirty = DenseMatrix(5, 9, 42.0);
  ASSERT_TRUE(cm.RowSquaredNormsInto(&dirty).ok());
  EXPECT_TRUE(dirty == cm.RowSquaredNorms());
}

TEST(ClaIntoTest, IntoVariantsRejectBadShapes) {
  auto cm = CompressedMatrix::Compress(ParityData(100, 76));
  DenseMatrix out;
  EXPECT_FALSE(cm.MultiplyVectorInto(DenseMatrix(3, 1), &out).ok());
  EXPECT_FALSE(cm.VectorMultiplyInto(DenseMatrix(3, 1), &out).ok());
  EXPECT_FALSE(cm.MultiplyMatrixInto(DenseMatrix(3, 2), &out).ok());
  EXPECT_FALSE(cm.TransposeMultiplyMatrixInto(DenseMatrix(3, 2), &out).ok());
}

TEST(ClaIntoTest, RepeatedIntoCallsReuseBuffers) {
  auto m = ParityData(600, 77);
  auto cm = CompressedMatrix::Compress(m);
  auto v = data::GaussianMatrix(m.cols(), 1, 78);
  DenseMatrix out;
  ASSERT_TRUE(cm.MultiplyVectorInto(v, &out).ok());  // First call may allocate.
  uint64_t allocs = Counter("cla.inplace.allocs");
  uint64_t reuses = Counter("cla.inplace.reuses");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cm.MultiplyVectorInto(v, &out).ok());
  }
  EXPECT_EQ(Counter("cla.inplace.allocs"), allocs);
  EXPECT_EQ(Counter("cla.inplace.reuses"), reuses + 5);
}

// Steady-state training must not allocate: the number of buffer allocations
// in compressed GLM is independent of the epoch count.
TEST(ClaIntoTest, CompressedGlmEpochsAllocationFree) {
  auto m = ParityData(500, 81);
  auto cm = CompressedMatrix::Compress(m, CocodingOptions());
  DenseMatrix y(m.rows(), 1);
  Rng rng(82);
  for (size_t i = 0; i < m.rows(); ++i) y.At(i, 0) = rng.Normal();

  ml::GlmConfig config;
  config.learning_rate = 1e-3;
  config.tolerance = 0.0;  // Run every epoch.

  auto allocs_for = [&](size_t epochs) {
    config.max_epochs = epochs;
    uint64_t before = Counter("cla.inplace.allocs");
    auto model = TrainCompressedGlm(cm, y, config);
    EXPECT_TRUE(model.ok());
    EXPECT_EQ(model->epochs_run, epochs);
    return Counter("cla.inplace.allocs") - before;
  };

  uint64_t short_run = allocs_for(3);
  uint64_t long_run = allocs_for(12);
  EXPECT_EQ(short_run, long_run);
  EXPECT_LE(long_run, 2u);  // scores + grad sized once.
}

TEST(ClaIntoTest, CompressedKMeansItersAllocationFree) {
  auto m = ParityData(400, 83);
  auto cm = CompressedMatrix::Compress(m);

  ml::KMeansConfig config;
  config.k = 3;
  config.seed = 84;
  config.tolerance = 0.0;

  auto allocs_for = [&](size_t iters) {
    config.max_iters = iters;
    uint64_t before = Counter("cla.inplace.allocs");
    auto model = TrainCompressedKMeans(cm, config);
    EXPECT_TRUE(model.ok());
    return Counter("cla.inplace.allocs") - before;
  };

  uint64_t short_run = allocs_for(3);
  uint64_t long_run = allocs_for(12);
  EXPECT_EQ(short_run, long_run);
}

// --------------------------------------------------------------------------
// Pooled training parity
// --------------------------------------------------------------------------

TEST(ClaParallelTrainingTest, PooledGlmMatchesSerial) {
  auto m = ParityData(5000, 91);
  auto cm = CompressedMatrix::Compress(m, CocodingOptions());
  DenseMatrix y(m.rows(), 1);
  Rng rng(92);
  for (size_t i = 0; i < m.rows(); ++i) y.At(i, 0) = rng.Normal();

  ml::GlmConfig config;
  config.learning_rate = 1e-3;
  config.max_epochs = 5;
  config.tolerance = 0.0;

  ThreadPool pool(4);
  auto serial = TrainCompressedGlm(cm, y, config);
  auto pooled = TrainCompressedGlm(cm, y, config, &pool);
  ASSERT_TRUE(serial.ok() && pooled.ok());
  ExpectMatricesNear(serial->weights, pooled->weights, 1e-9);
  ASSERT_EQ(serial->loss_history.size(), pooled->loss_history.size());
  for (size_t e = 0; e < serial->loss_history.size(); ++e) {
    EXPECT_NEAR(serial->loss_history[e], pooled->loss_history[e],
                1e-9 * (1.0 + std::fabs(serial->loss_history[e])));
  }
}

TEST(ClaParallelTrainingTest, PooledKMeansMatchesSerial) {
  auto m = ParityData(5000, 93);
  auto cm = CompressedMatrix::Compress(m);

  ml::KMeansConfig config;
  config.k = 4;
  config.max_iters = 10;
  config.seed = 94;

  ThreadPool pool(4);
  auto serial = TrainCompressedKMeans(cm, config);
  auto pooled = TrainCompressedKMeans(cm, config, &pool);
  ASSERT_TRUE(serial.ok() && pooled.ok());
  EXPECT_EQ(serial->labels, pooled->labels);
  ExpectMatricesNear(serial->centers, pooled->centers, 1e-9);
}

}  // namespace
}  // namespace dmml::cla
