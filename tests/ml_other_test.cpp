// Tests for metrics, the scaler, k-means, naive Bayes and decision trees.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "data/generators.h"
#include "la/kernels.h"
#include "ml/decision_tree.h"
#include "ml/kmeans.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/scaler.h"

namespace dmml::ml {
namespace {

using la::DenseMatrix;

// --------------------------------------------------------------------------
// Metrics
// --------------------------------------------------------------------------

TEST(MetricsTest, RmseMaeOnKnownVectors) {
  auto yt = DenseMatrix::ColumnVector({1, 2, 3});
  auto yp = DenseMatrix::ColumnVector({1, 2, 5});
  EXPECT_NEAR(*Rmse(yt, yp), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(*Mae(yt, yp), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, R2PerfectAndBaseline) {
  auto yt = DenseMatrix::ColumnVector({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(*R2(yt, yt), 1.0);
  auto mean = DenseMatrix::ColumnVector({2.5, 2.5, 2.5, 2.5});
  EXPECT_DOUBLE_EQ(*R2(yt, mean), 0.0);
  auto constant = DenseMatrix::ColumnVector({5, 5});
  EXPECT_FALSE(R2(constant, constant).ok());  // Undefined for constant truth.
}

TEST(MetricsTest, AccuracyAndPrf) {
  auto yt = DenseMatrix::ColumnVector({1, 1, 0, 0});
  auto yp = DenseMatrix::ColumnVector({1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(*Accuracy(yt, yp), 0.5);
  auto prf = BinaryPrf(yt, yp);
  ASSERT_TRUE(prf.ok());
  EXPECT_DOUBLE_EQ(prf->precision, 0.5);  // tp=1, fp=1.
  EXPECT_DOUBLE_EQ(prf->recall, 0.5);     // tp=1, fn=1.
  EXPECT_DOUBLE_EQ(prf->f1, 0.5);
}

TEST(MetricsTest, LogLossPerfectAndClipped) {
  auto yt = DenseMatrix::ColumnVector({1, 0});
  auto good = DenseMatrix::ColumnVector({1.0, 0.0});
  EXPECT_LT(*LogLoss(yt, good), 1e-10);
  auto bad = DenseMatrix::ColumnVector({0.0, 1.0});
  EXPECT_GT(*LogLoss(yt, bad), 10.0);
  EXPECT_TRUE(std::isfinite(*LogLoss(yt, bad)));
}

TEST(MetricsTest, RocAucPerfectRandomInverted) {
  auto yt = DenseMatrix::ColumnVector({0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(*RocAuc(yt, DenseMatrix::ColumnVector({0.1, 0.2, 0.8, 0.9})), 1.0);
  EXPECT_DOUBLE_EQ(*RocAuc(yt, DenseMatrix::ColumnVector({0.9, 0.8, 0.2, 0.1})), 0.0);
  EXPECT_DOUBLE_EQ(*RocAuc(yt, DenseMatrix::ColumnVector({0.5, 0.5, 0.5, 0.5})), 0.5);
}

TEST(MetricsTest, RocAucHandlesTies) {
  auto yt = DenseMatrix::ColumnVector({0, 1, 0, 1});
  auto ys = DenseMatrix::ColumnVector({0.3, 0.3, 0.1, 0.9});
  double auc = *RocAuc(yt, ys);
  EXPECT_GT(auc, 0.5);
  EXPECT_LT(auc, 1.0);
}

TEST(MetricsTest, SingleClassAucUndefined) {
  auto yt = DenseMatrix::ColumnVector({1, 1});
  EXPECT_FALSE(RocAuc(yt, DenseMatrix::ColumnVector({0.1, 0.9})).ok());
}

TEST(MetricsTest, ShapeValidation) {
  auto a = DenseMatrix::ColumnVector({1});
  auto b = DenseMatrix::ColumnVector({1, 2});
  EXPECT_FALSE(Rmse(a, b).ok());
  EXPECT_FALSE(Accuracy(a, b).ok());
  EXPECT_FALSE(Rmse(DenseMatrix(0, 1), DenseMatrix(0, 1)).ok());
}

// --------------------------------------------------------------------------
// Scaler
// --------------------------------------------------------------------------

TEST(ScalerTest, StandardizesColumns) {
  auto x = data::UniformMatrix(500, 3, -5, 20, 1);
  StandardScaler scaler;
  auto scaled = scaler.FitTransform(x);
  ASSERT_TRUE(scaled.ok());
  for (size_t j = 0; j < 3; ++j) {
    double mean = 0, var = 0;
    for (size_t i = 0; i < scaled->rows(); ++i) mean += scaled->At(i, j);
    mean /= static_cast<double>(scaled->rows());
    for (size_t i = 0; i < scaled->rows(); ++i) {
      double d = scaled->At(i, j) - mean;
      var += d * d;
    }
    var /= static_cast<double>(scaled->rows());
    EXPECT_NEAR(mean, 0.0, 1e-10);
    EXPECT_NEAR(var, 1.0, 1e-10);
  }
}

TEST(ScalerTest, InverseTransformRoundTrips) {
  auto x = data::GaussianMatrix(50, 4, 2);
  StandardScaler scaler;
  auto scaled = scaler.FitTransform(x);
  ASSERT_TRUE(scaled.ok());
  auto restored = scaler.InverseTransform(*scaled);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->ApproxEquals(x, 1e-10));
}

TEST(ScalerTest, ConstantColumnSurvives) {
  DenseMatrix x(10, 2);
  for (size_t i = 0; i < 10; ++i) x.At(i, 0) = 7.0;  // Zero variance.
  StandardScaler scaler;
  auto scaled = scaler.FitTransform(x);
  ASSERT_TRUE(scaled.ok());
  for (size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(scaled->At(i, 0), 0.0);
}

TEST(ScalerTest, ErrorsOnMisuse) {
  StandardScaler scaler;
  EXPECT_FALSE(scaler.Transform(DenseMatrix(2, 2)).ok());  // Unfitted.
  ASSERT_TRUE(scaler.Fit(DenseMatrix(5, 3, 1.0)).ok());
  EXPECT_FALSE(scaler.Transform(DenseMatrix(2, 2)).ok());  // Width mismatch.
  EXPECT_FALSE(scaler.Fit(DenseMatrix(0, 3)).ok());        // Empty.
}

// --------------------------------------------------------------------------
// k-means
// --------------------------------------------------------------------------

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  auto blobs = data::MakeBlobs(300, 2, 3, /*center_spread=*/20.0,
                               /*cluster_sigma=*/0.5, 3);
  KMeansConfig config;
  config.k = 3;
  config.seed = 4;
  auto model = TrainKMeans(blobs.x, config);
  ASSERT_TRUE(model.ok());
  // Every found cluster should be nearly pure wrt ground truth.
  for (size_t c = 0; c < 3; ++c) {
    std::map<int, int> votes;
    for (size_t i = 0; i < blobs.x.rows(); ++i) {
      if (model->labels[i] == static_cast<int>(c)) votes[blobs.labels[i]]++;
    }
    int total = 0, best = 0;
    for (auto& [_, v] : votes) {
      total += v;
      best = std::max(best, v);
    }
    ASSERT_GT(total, 0);
    EXPECT_GT(static_cast<double>(best) / total, 0.95);
  }
}

TEST(KMeansTest, InertiaDecreasesMonotonically) {
  auto blobs = data::MakeBlobs(200, 3, 4, 5.0, 1.0, 5);
  KMeansConfig config;
  config.k = 4;
  auto model = TrainKMeans(blobs.x, config);
  ASSERT_TRUE(model.ok());
  for (size_t i = 1; i < model->inertia_history.size(); ++i) {
    EXPECT_LE(model->inertia_history[i], model->inertia_history[i - 1] + 1e-6);
  }
}

TEST(KMeansTest, PredictAssignsNearestCenter) {
  DenseMatrix x{{0, 0}, {0, 1}, {10, 10}, {10, 11}};
  KMeansConfig config;
  config.k = 2;
  auto model = TrainKMeans(x, config);
  ASSERT_TRUE(model.ok());
  auto assign = model->Predict(x);
  ASSERT_TRUE(assign.ok());
  EXPECT_EQ((*assign)[0], (*assign)[1]);
  EXPECT_EQ((*assign)[2], (*assign)[3]);
  EXPECT_NE((*assign)[0], (*assign)[2]);
  EXPECT_FALSE(model->Predict(DenseMatrix(2, 3)).ok());
}

TEST(KMeansTest, KEqualsNPutsEachPointAlone) {
  auto x = data::GaussianMatrix(5, 2, 6);
  KMeansConfig config;
  config.k = 5;
  config.max_iters = 50;
  auto model = TrainKMeans(x, config);
  ASSERT_TRUE(model.ok());
  std::set<int> labels(model->labels.begin(), model->labels.end());
  EXPECT_EQ(labels.size(), 5u);
  EXPECT_NEAR(model->inertia, 0.0, 1e-18);
}

TEST(KMeansTest, InvalidArguments) {
  auto x = data::GaussianMatrix(5, 2, 7);
  KMeansConfig config;
  config.k = 0;
  EXPECT_FALSE(TrainKMeans(x, config).ok());
  config.k = 6;
  EXPECT_FALSE(TrainKMeans(x, config).ok());
  config.k = 2;
  EXPECT_FALSE(TrainKMeans(DenseMatrix(0, 2), config).ok());
}

TEST(KMeansTest, RandomInitAlsoWorks) {
  auto blobs = data::MakeBlobs(150, 2, 3, 15.0, 0.5, 8);
  KMeansConfig config;
  config.k = 3;
  config.kmeanspp_init = false;
  config.max_iters = 200;
  auto model = TrainKMeans(blobs.x, config);
  ASSERT_TRUE(model.ok());
  // Random init may land in a poor local optimum, so assert structure, not
  // quality: reported inertia is consistent with the returned assignment.
  double recomputed = KMeansInertia(blobs.x, model->centers, model->labels);
  EXPECT_NEAR(model->inertia, recomputed, 1e-6 * std::max(1.0, recomputed));
  for (int label : model->labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 3);
  }
}

// --------------------------------------------------------------------------
// Naive Bayes
// --------------------------------------------------------------------------

TEST(NaiveBayesTest, SeparatesGaussianClasses) {
  auto blobs = data::MakeBlobs(400, 3, 2, 10.0, 1.0, 9);
  auto model = TrainNaiveBayes(blobs.x, blobs.labels);
  ASSERT_TRUE(model.ok());
  auto pred = model->Predict(blobs.x);
  ASSERT_TRUE(pred.ok());
  int hits = 0;
  for (size_t i = 0; i < pred->size(); ++i) hits += (*pred)[i] == blobs.labels[i];
  EXPECT_GT(static_cast<double>(hits) / pred->size(), 0.97);
}

TEST(NaiveBayesTest, PosteriorsSumToOne) {
  auto blobs = data::MakeBlobs(100, 2, 3, 6.0, 1.5, 10);
  auto model = TrainNaiveBayes(blobs.x, blobs.labels);
  ASSERT_TRUE(model.ok());
  auto proba = model->PredictProba(blobs.x);
  ASSERT_TRUE(proba.ok());
  for (size_t i = 0; i < proba->rows(); ++i) {
    double total = 0;
    for (size_t c = 0; c < proba->cols(); ++c) {
      total += proba->At(i, c);
      EXPECT_GE(proba->At(i, c), 0.0);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(NaiveBayesTest, PriorsReflectImbalance) {
  DenseMatrix x(10, 1);
  std::vector<int> y = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1};
  for (size_t i = 0; i < 10; ++i) x.At(i, 0) = y[i] * 10.0 + (i % 3) * 0.1;
  auto model = TrainNaiveBayes(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(std::exp(model->log_priors[0]), 0.8, 1e-12);
  EXPECT_NEAR(std::exp(model->log_priors[1]), 0.2, 1e-12);
}

TEST(NaiveBayesTest, ArbitraryLabelValues) {
  auto blobs = data::MakeBlobs(100, 2, 2, 12.0, 0.5, 11);
  std::vector<int> y(blobs.labels.size());
  for (size_t i = 0; i < y.size(); ++i) y[i] = blobs.labels[i] == 0 ? -7 : 42;
  auto model = TrainNaiveBayes(blobs.x, y);
  ASSERT_TRUE(model.ok());
  auto pred = model->Predict(blobs.x);
  ASSERT_TRUE(pred.ok());
  for (int label : *pred) EXPECT_TRUE(label == -7 || label == 42);
}

TEST(NaiveBayesTest, InvalidInputs) {
  EXPECT_FALSE(TrainNaiveBayes(DenseMatrix(0, 2), {}).ok());
  EXPECT_FALSE(TrainNaiveBayes(DenseMatrix(3, 2), {0, 1}).ok());  // |y| != n.
  EXPECT_FALSE(TrainNaiveBayes(DenseMatrix(3, 2), {1, 1, 1}).ok());  // 1 class.
  auto model = TrainNaiveBayes(data::GaussianMatrix(10, 2, 12),
                               {0, 1, 0, 1, 0, 1, 0, 1, 0, 1});
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Predict(DenseMatrix(2, 3)).ok());
}

// --------------------------------------------------------------------------
// Decision tree
// --------------------------------------------------------------------------

TEST(DecisionTreeTest, LearnsAxisAlignedRule) {
  // Label = x0 > 0.5.
  auto x = data::UniformMatrix(300, 2, 0, 1, 13);
  DenseMatrix y(300, 1);
  for (size_t i = 0; i < 300; ++i) y.At(i, 0) = x.At(i, 0) > 0.5 ? 1.0 : 0.0;
  auto model = TrainTreeClassifier(x, y);
  ASSERT_TRUE(model.ok());
  auto pred = model->Predict(x);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(*Accuracy(y, *pred), 0.99);
  EXPECT_LE(model->Depth(), 8u);
}

TEST(DecisionTreeTest, LearnsXorWithDepthTwo) {
  // XOR needs two levels; impossible for a linear model.
  DenseMatrix x(400, 2);
  DenseMatrix y(400, 1);
  Rng rng(14);
  for (size_t i = 0; i < 400; ++i) {
    double a = rng.Uniform() < 0.5 ? 0.0 : 1.0;
    double b = rng.Uniform() < 0.5 ? 0.0 : 1.0;
    x.At(i, 0) = a + rng.Normal(0, 0.05);
    x.At(i, 1) = b + rng.Normal(0, 0.05);
    y.At(i, 0) = (a != b) ? 1.0 : 0.0;
  }
  auto model = TrainTreeClassifier(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(*Accuracy(y, *model->Predict(x)), 0.98);
}

TEST(DecisionTreeTest, RegressorFitsPiecewiseConstant) {
  DenseMatrix x(200, 1);
  DenseMatrix y(200, 1);
  for (size_t i = 0; i < 200; ++i) {
    x.At(i, 0) = static_cast<double>(i) / 200.0;
    y.At(i, 0) = x.At(i, 0) < 0.3 ? 1.0 : (x.At(i, 0) < 0.7 ? 5.0 : -2.0);
  }
  auto model = TrainTreeRegressor(x, y);
  ASSERT_TRUE(model.ok());
  auto pred = model->Predict(x);
  EXPECT_LT(*Rmse(y, *pred), 0.01);
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  auto ds = data::MakeClassification(300, 4, 0.2, 15);
  TreeConfig config;
  config.max_depth = 2;
  auto model = TrainTreeClassifier(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->Depth(), 2u);
  EXPECT_LE(model->NumLeaves(), 4u);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  auto ds = data::MakeClassification(100, 2, 0.1, 16);
  TreeConfig config;
  config.min_samples_leaf = 20;
  auto model = TrainTreeClassifier(ds.x, ds.y, config);
  ASSERT_TRUE(model.ok());
  for (const auto& node : model->nodes) {
    if (node.is_leaf) {
      EXPECT_GE(node.num_samples, 20u);
    }
  }
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  DenseMatrix x(10, 1);
  DenseMatrix y(10, 1, 1.0);  // All same class.
  auto model = TrainTreeClassifier(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->nodes.size(), 1u);
  EXPECT_TRUE(model->nodes[0].is_leaf);
  EXPECT_DOUBLE_EQ(model->nodes[0].value, 1.0);
}

TEST(DecisionTreeTest, InvalidInputs) {
  EXPECT_FALSE(TrainTreeClassifier(DenseMatrix(0, 1), DenseMatrix(0, 1)).ok());
  EXPECT_FALSE(TrainTreeClassifier(DenseMatrix(5, 1), DenseMatrix(4, 1)).ok());
  auto model = TrainTreeClassifier(data::UniformMatrix(20, 2, 0, 1, 17),
                                   DenseMatrix(20, 1));
  ASSERT_TRUE(model.ok());
  DecisionTreeModel untrained;
  EXPECT_FALSE(untrained.Predict(DenseMatrix(1, 2)).ok());
}

TEST(DecisionTreeTest, GeneralizesToHeldOutData) {
  auto train = data::MakeClassification(600, 5, 0.05, 18);
  auto test = data::MakeClassification(200, 5, 0.05, 18);  // Same generator.
  TreeConfig config;
  config.max_depth = 6;
  auto model = TrainTreeClassifier(train.x, train.y, config);
  ASSERT_TRUE(model.ok());
  // In-sample should beat chance comfortably; the planted weights are shared
  // so held-out accuracy should too.
  EXPECT_GT(*Accuracy(train.y, *model->Predict(train.x)), 0.8);
  EXPECT_GT(*Accuracy(test.y, *model->Predict(test.x)), 0.65);
}

}  // namespace
}  // namespace dmml::ml
