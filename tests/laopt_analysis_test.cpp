// Tests for the laopt static analyzer: shape/sparsity/memory inference,
// plan-time rejection of shape-mismatched programs, unknown-dimension
// propagation, overflow-safe footprint math, and the two in-tree consumers
// (matrix-chain costing, fusion memory guard) observed through obs counters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>

#include "data/generators.h"
#include "laopt/analysis.h"
#include "laopt/cse.h"
#include "laopt/executor.h"
#include "laopt/fusion.h"
#include "laopt/optimizer.h"
#include "laopt/parser.h"
#include "laopt/pipeline.h"
#include "obs/metrics.h"

namespace dmml::laopt {
namespace {

using la::DenseMatrix;

ExprPtr Leaf(std::shared_ptr<DenseMatrix> m, const char* name) {
  return *ExprNode::Input(std::move(m), name);
}

ExprPtr DenseLeaf(size_t rows, size_t cols, const char* name, double fill = 1.0) {
  return Leaf(std::make_shared<DenseMatrix>(rows, cols, fill), name);
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

TEST(AnalysisTest, InfersShapeSparsityAndFootprint) {
  auto x = DenseLeaf(100, 10, "X");
  auto v = DenseLeaf(10, 1, "v");
  auto expr = *ExprNode::MatMul(x, v);

  auto analysis = AnalyzeDag(expr);
  ASSERT_TRUE(analysis.ok());
  const NodeAnalysis* out = analysis->Find(expr.get());
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->shape.FullyKnown());
  EXPECT_EQ(out->shape.rows.value, 100u);
  EXPECT_EQ(out->shape.cols.value, 1u);
  EXPECT_DOUBLE_EQ(out->sparsity, 1.0);  // Dense inputs stay dense.
  EXPECT_TRUE(out->bytes_known);
  EXPECT_EQ(out->dense_bytes, 100u * 1u * sizeof(double));
  EXPECT_EQ(analysis->NumAnalyzed(), 3u);
}

TEST(AnalysisTest, ExactInputNnzAndSparsityFormulas) {
  // 10x10 with exactly 10 nonzeros -> sparsity 0.1.
  auto m = std::make_shared<DenseMatrix>(10, 10);
  for (size_t i = 0; i < 10; ++i) m->At(i, i) = 2.0;
  auto a = Leaf(m, "A");

  DagAnalysis analysis;
  auto a_info = analysis.Ensure(a);
  ASSERT_TRUE(a_info.ok());
  EXPECT_DOUBLE_EQ(a_info->sparsity, 0.1);

  // Elementwise product: sa * sb.
  auto prod = *ExprNode::ElemMul(a, a);
  auto prod_info = analysis.Ensure(prod);
  ASSERT_TRUE(prod_info.ok());
  EXPECT_DOUBLE_EQ(prod_info->sparsity, 0.01);

  // Add: sa + sb - sa*sb.
  auto sum = *ExprNode::Add(a, a);
  auto sum_info = analysis.Ensure(sum);
  ASSERT_TRUE(sum_info.ok());
  EXPECT_DOUBLE_EQ(sum_info->sparsity, 0.1 + 0.1 - 0.01);

  // MatMul: 1 - (1 - sa*sb)^k with k = 10.
  auto mm = *ExprNode::MatMul(a, a);
  auto mm_info = analysis.Ensure(mm);
  ASSERT_TRUE(mm_info.ok());
  EXPECT_DOUBLE_EQ(mm_info->sparsity, MatMulSparsityEstimate(0.1, 0.1, 10));
  EXPECT_NEAR(mm_info->sparsity, 1.0 - std::pow(0.99, 10.0), 1e-12);

  // Scaling by zero annihilates.
  auto zero = *ExprNode::ScalarMul(0.0, a);
  auto zero_info = analysis.Ensure(zero);
  ASSERT_TRUE(zero_info.ok());
  EXPECT_DOUBLE_EQ(zero_info->sparsity, 0.0);

  // A sparse matrix is estimated cheaper than dense in CSR-ish storage.
  EXPECT_LT(a_info->est_bytes, a_info->dense_bytes);
}

TEST(AnalysisTest, RejectsMismatchedInnerDimensionsAtPlanTime) {
  // X(100x10) %*% Y(20x5): constructible only with deferred checks; the
  // analyzer must name the node and both operand shapes.
  Environment env;
  env["X"] = std::make_shared<DenseMatrix>(100, 10, 1.0);
  env["Y"] = std::make_shared<DenseMatrix>(20, 5, 1.0);
  ParseOptions parse_options;
  parse_options.defer_shape_checks = true;
  auto expr = ParseExpression("X %*% Y", env, parse_options);
  ASSERT_TRUE(expr.ok());  // Parse succeeds; the error is a plan-time error.

  const uint64_t rejects_before = CounterValue("laopt.analysis.shape_rejects");
  PlanReport report;
  auto plan = CompilePlan(*expr, {}, &report);
  ASSERT_FALSE(plan.ok());
  const std::string& message = plan.status().message();
  EXPECT_NE(message.find("plan-time shape error"), std::string::npos) << message;
  EXPECT_NE(message.find("X[100x10]"), std::string::npos) << message;
  EXPECT_NE(message.find("Y[20x5]"), std::string::npos) << message;
  EXPECT_NE(message.find("100x10"), std::string::npos) << message;
  EXPECT_NE(message.find("20x5"), std::string::npos) << message;
  EXPECT_EQ(CounterValue("laopt.analysis.shape_rejects"), rejects_before + 1);
}

TEST(AnalysisTest, RejectsMismatchedElementwiseShapes) {
  auto a = *ExprNode::Placeholder(3, 4, "A");
  auto b = *ExprNode::Placeholder(3, 5, "B");
  auto bad = *ExprNode::MakeUnchecked(OpKind::kAdd, {a, b});
  auto analysis = AnalyzeDag(bad);
  ASSERT_FALSE(analysis.ok());
  EXPECT_NE(analysis.status().message().find("3x4"), std::string::npos);
  EXPECT_NE(analysis.status().message().find("3x5"), std::string::npos);
}

TEST(AnalysisTest, CheckedFactoriesStillRejectEagerly) {
  auto x = DenseLeaf(100, 10, "X");
  auto y = DenseLeaf(20, 5, "Y");
  EXPECT_FALSE(ExprNode::MatMul(x, y).ok());
  EXPECT_FALSE(ExprNode::Add(x, y).ok());
}

TEST(AnalysisTest, ChainedTransposes) {
  auto x = DenseLeaf(7, 3, "X");
  ExprPtr e = x;
  for (int i = 0; i < 9; ++i) e = *ExprNode::Transpose(e);
  auto analysis = AnalyzeDag(e);
  ASSERT_TRUE(analysis.ok());
  const NodeAnalysis* info = analysis->Find(e.get());
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->shape.rows.value, 3u);  // Odd number of transposes.
  EXPECT_EQ(info->shape.cols.value, 7u);
  EXPECT_EQ(info->dense_bytes, 7u * 3u * sizeof(double));
}

TEST(AnalysisTest, ZeroRowAndZeroColMatrices) {
  auto a = DenseLeaf(0, 5, "A");
  auto b = DenseLeaf(5, 0, "B");
  auto mm = *ExprNode::MatMul(a, b);  // 0x0 result.
  auto analysis = AnalyzeDag(mm);
  ASSERT_TRUE(analysis.ok());
  const NodeAnalysis* info = analysis->Find(mm.get());
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->shape.rows.value, 0u);
  EXPECT_EQ(info->shape.cols.value, 0u);
  EXPECT_TRUE(info->bytes_known);
  EXPECT_EQ(info->dense_bytes, 0u);
  EXPECT_EQ(info->est_bytes, 0u);
  // Empty inputs have no nonzeros and a well-defined sparsity of 0.
  EXPECT_DOUBLE_EQ(analysis->Find(a.get())->sparsity, 0.0);
}

TEST(AnalysisTest, UnknownDimensionPropagation) {
  // t(P(?x10)) %*% P(?x10) has a known 10x10 shape: the unknown row count
  // cancels through the inner dimension.
  auto p = *ExprNode::Placeholder(ExprNode::kUnknownDim, 10, "P");
  auto gram = *ExprNode::MatMul(*ExprNode::Transpose(p), p);
  DagAnalysis analysis;
  auto gram_info = analysis.Ensure(gram);
  ASSERT_TRUE(gram_info.ok());
  EXPECT_TRUE(gram_info->shape.FullyKnown());
  EXPECT_EQ(gram_info->shape.rows.value, 10u);
  EXPECT_EQ(gram_info->shape.cols.value, 10u);

  // P itself: rows unknown -> no footprint estimate.
  auto p_info = analysis.Ensure(p);
  ASSERT_TRUE(p_info.ok());
  EXPECT_FALSE(p_info->shape.FullyKnown());
  EXPECT_FALSE(p_info->bytes_known);
  EXPECT_EQ(p_info->shape.ToString(), "?x10");

  // Known dim wins when adding known to unknown.
  auto q = *ExprNode::Placeholder(ExprNode::kUnknownDim, ExprNode::kUnknownDim, "Q");
  auto known = *ExprNode::Placeholder(4, 6, "K");
  auto mixed = *ExprNode::Add(q, known);
  auto mixed_info = analysis.Ensure(mixed);
  ASSERT_TRUE(mixed_info.ok());
  EXPECT_EQ(mixed_info->shape.ToString(), "4x6");
}

TEST(AnalysisTest, UnknownDimsThroughCsedSubtrees) {
  // Two structurally identical subtrees over the same placeholder must merge
  // under CSE and stay analyzable; distinct placeholders must NOT merge.
  auto p = *ExprNode::Placeholder(ExprNode::kUnknownDim, 8, "P");
  auto gram1 = *ExprNode::MatMul(*ExprNode::Transpose(p), p);
  auto gram2 = *ExprNode::MatMul(*ExprNode::Transpose(p), p);
  auto both = *ExprNode::Add(gram1, gram2);

  CseReport cse_report;
  auto merged = EliminateCommonSubexpressions(both, &cse_report);
  ASSERT_TRUE(merged.ok());
  EXPECT_GT(cse_report.merges, 0u);
  EXPECT_EQ((*merged)->children()[0].get(), (*merged)->children()[1].get());

  auto analysis = AnalyzeDag(*merged);
  ASSERT_TRUE(analysis.ok());
  const NodeAnalysis* info = analysis->Find(merged->get());
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->shape.ToString(), "8x8");

  // Distinct placeholders: same declared shape, but different future data.
  auto p2 = *ExprNode::Placeholder(ExprNode::kUnknownDim, 8, "P2");
  auto cross = *ExprNode::Add(p, p2);
  CseReport cross_report;
  auto cross_merged = EliminateCommonSubexpressions(cross, &cross_report);
  ASSERT_TRUE(cross_merged.ok());
  EXPECT_NE((*cross_merged)->children()[0].get(),
            (*cross_merged)->children()[1].get());
}

TEST(AnalysisTest, FootprintOverflowSaturatesInsteadOfWrapping) {
  bool saturated = false;
  EXPECT_EQ(DenseFootprintBytes(8, 8, &saturated), 512u);
  EXPECT_FALSE(saturated);

  // (2^62) x 16 cells x 8 bytes overflows uint64 twice over.
  DenseFootprintBytes(uint64_t{1} << 62, 16, &saturated);
  EXPECT_TRUE(saturated);
  EXPECT_EQ(DenseFootprintBytes(uint64_t{1} << 62, 16, &saturated), UINT64_MAX);

  // End to end: a placeholder-declared giant matrix saturates and says so.
  auto giant = *ExprNode::Placeholder(uint64_t{1} << 40, uint64_t{1} << 40, "G");
  auto analysis = AnalyzeDag(giant);
  ASSERT_TRUE(analysis.ok());
  const NodeAnalysis* info = analysis->Find(giant.get());
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->bytes_known);
  EXPECT_TRUE(info->bytes_saturated);
  EXPECT_EQ(info->dense_bytes, UINT64_MAX);
}

TEST(AnalysisTest, MmChainCostingConsumesAnalyzerEstimates) {
  // 3-factor chain -> the optimizer must run the analyzer-backed DP.
  auto a = DenseLeaf(10, 30, "A");
  auto b = DenseLeaf(30, 5, "B");
  auto c = DenseLeaf(5, 60, "C");
  auto chain = *ExprNode::MatMul(*ExprNode::MatMul(a, b), c);

  const uint64_t costed_before = CounterValue("laopt.optimize.chains_costed");
  OptimizerReport report;
  auto optimized = Optimize(chain, {}, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(report.chains_costed, 1u);
  EXPECT_GT(CounterValue("laopt.optimize.chains_costed"), costed_before);

  // A chain with unknown-dimension factors is left alone (no sizes to cost).
  auto p = *ExprNode::Placeholder(ExprNode::kUnknownDim, 30, "P");
  auto unknown_chain = *ExprNode::MatMul(*ExprNode::MatMul(p, b), c);
  OptimizerReport unknown_report;
  auto unknown_optimized = Optimize(unknown_chain, {}, &unknown_report);
  ASSERT_TRUE(unknown_optimized.ok());
  EXPECT_EQ(unknown_report.chains_costed, 0u);
  EXPECT_EQ(unknown_report.chains_reordered, 0u);
}

TEST(AnalysisTest, SparsityAwareChainCostPrefersSparseSide) {
  // Dense costing of {A 20x20, B 20x20, C 20x1} prefers right-to-left
  // (through the skinny C). Sparsity must discount the left operand.
  std::vector<ChainFactor> dense = {{20, 20, 1.0}, {20, 20, 1.0}, {20, 1, 1.0}};
  std::vector<ChainFactor> sparse_left = {{20, 20, 0.01}, {20, 20, 1.0}, {20, 1, 1.0}};
  EXPECT_LT(OptimalSparseChainCost(sparse_left), OptimalSparseChainCost(dense));
  // Dense overload matches the original all-dense DP.
  EXPECT_DOUBLE_EQ(OptimalChainCost({{10, 30}, {30, 5}, {5, 60}}), 4500.0 * 2.0);
}

TEST(AnalysisTest, FusionMemoryGuardDeclinesOverBudgetRegions) {
  // 100x100 elementwise region: working set = 2 distinct inputs + output =
  // 3 * 80000 bytes. A 100KB budget must decline it; 1MB must fuse it.
  auto xm = std::make_shared<DenseMatrix>(data::GaussianMatrix(100, 100, 7));
  auto ym = std::make_shared<DenseMatrix>(data::GaussianMatrix(100, 100, 8));
  auto build = [&] {
    auto x = Leaf(xm, "X");
    auto y = Leaf(ym, "Y");
    return *ExprNode::ScalarMul(2.0, *ExprNode::Add(*ExprNode::ElemMul(x, y), x));
  };

  const uint64_t declines_before = CounterValue("laopt.fusion.budget_declines");
  FusionOptions tight;
  tight.memory_budget_bytes = 100 * 1024;
  FusionStats tight_stats;
  auto declined = ExecuteWithFusion(build(), tight, &tight_stats);
  ASSERT_TRUE(declined.ok());
  EXPECT_EQ(tight_stats.regions_fused, 0u);
  EXPECT_GE(tight_stats.regions_declined, 1u);
  EXPECT_GT(CounterValue("laopt.fusion.budget_declines"), declines_before);

  FusionOptions roomy;
  roomy.memory_budget_bytes = 1024 * 1024;
  FusionStats roomy_stats;
  auto fused = ExecuteWithFusion(build(), roomy, &roomy_stats);
  ASSERT_TRUE(fused.ok());
  EXPECT_GE(roomy_stats.regions_fused, 1u);
  EXPECT_EQ(roomy_stats.regions_declined, 0u);

  // Declining fusion must not change the result.
  EXPECT_TRUE(declined->ApproxEquals(*fused, 1e-12));
}

TEST(AnalysisTest, PipelineWiresGuardAndReportsAnalysis) {
  auto xm = std::make_shared<DenseMatrix>(data::GaussianMatrix(50, 40, 3));
  auto x1 = Leaf(xm, "X");
  auto x2 = Leaf(xm, "X");
  auto expr = *ExprNode::Add(*ExprNode::ElemMul(x1, x2), x1);

  PipelineOptions options;
  options.fusion.memory_budget_bytes = 1;  // Decline everything.
  PlanReport report;
  auto result = CompileAndExecute(expr, options, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(report.fusion.regions_declined, 1u);
  EXPECT_EQ(report.fusion.regions_fused, 0u);
  EXPECT_GT(report.analysis_nodes, 0u);
  EXPECT_TRUE(report.output_bytes_known);
  EXPECT_EQ(report.output_est_bytes, 50u * 40u * sizeof(double));

  auto naive = Execute(expr);
  ASSERT_TRUE(naive.ok());
  EXPECT_TRUE(result->ApproxEquals(*naive, 1e-12));
}

TEST(AnalysisTest, ExplainDumpListsNodesShapesAndPlaceholders) {
  auto p = *ExprNode::Placeholder(ExprNode::kUnknownDim, 10, "P");
  auto x = DenseLeaf(10, 10, "X");
  auto expr = *ExprNode::MatMul(p, x);

  DagAnalysis analysis;
  std::string dump = analysis.Explain(expr);
  EXPECT_NE(dump.find("EXPLAIN plan: 3 nodes"), std::string::npos) << dump;
  EXPECT_NE(dump.find("(placeholder)"), std::string::npos) << dump;
  EXPECT_NE(dump.find("?x10"), std::string::npos) << dump;
  EXPECT_NE(dump.find("matmul"), std::string::npos) << dump;
  EXPECT_NE(dump.find("10x10"), std::string::npos) << dump;

  PipelineOptions options;
  options.capture_explain = true;
  PlanReport report;
  auto plan = CompilePlan(*ExprNode::MatMul(x, x), options, &report);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(report.explain.find("EXPLAIN plan"), std::string::npos);
}

TEST(AnalysisTest, UnboundPlaceholderFailsExecutionGracefully) {
  auto p = *ExprNode::Placeholder(4, 4, "theta");
  auto expr = *ExprNode::Add(p, p);
  auto direct = Execute(expr);
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("theta"), std::string::npos);
  auto fused = ExecuteWithFusion(expr);
  ASSERT_FALSE(fused.ok());
}

}  // namespace
}  // namespace dmml::laopt
