// Tests for PCA (power iteration) and random forests.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "la/kernels.h"
#include "ml/metrics.h"
#include "ml/pca.h"
#include "ml/random_forest.h"

namespace dmml::ml {
namespace {

using la::DenseMatrix;

// --------------------------------------------------------------------------
// PCA
// --------------------------------------------------------------------------

// Builds data with a known dominant direction: z * dir + small noise.
DenseMatrix AnisotropicData(size_t n, const std::vector<double>& dir, double noise,
                            uint64_t seed) {
  Rng rng(seed);
  DenseMatrix x(n, dir.size());
  for (size_t i = 0; i < n; ++i) {
    double z = rng.Normal(0, 3.0);
    for (size_t j = 0; j < dir.size(); ++j) {
      x.At(i, j) = z * dir[j] + rng.Normal(0, noise);
    }
  }
  return x;
}

TEST(PcaTest, RecoversDominantDirection) {
  std::vector<double> dir = {0.6, 0.8};  // Unit vector.
  auto x = AnisotropicData(500, dir, 0.05, 1);
  PcaConfig config;
  config.num_components = 1;
  auto model = TrainPca(x, config);
  ASSERT_TRUE(model.ok());
  // Recovered PC equals ±dir.
  double dot = model->components.At(0, 0) * dir[0] + model->components.At(0, 1) * dir[1];
  EXPECT_NEAR(std::fabs(dot), 1.0, 1e-3);
  EXPECT_GT(model->explained_variance_ratio[0], 0.99);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  auto x = data::GaussianMatrix(300, 6, 2);
  PcaConfig config;
  config.num_components = 4;
  auto model = TrainPca(x, config);
  ASSERT_TRUE(model.ok());
  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = 0; b < 4; ++b) {
      double dot = la::Dot(model->components.Row(a), model->components.Row(b), 6);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-3) << a << "," << b;
    }
  }
}

TEST(PcaTest, ExplainedVarianceDescendsAndSumsBelowTotal) {
  auto x = data::GaussianMatrix(400, 5, 3);
  PcaConfig config;
  config.num_components = 5;
  auto model = TrainPca(x, config);
  ASSERT_TRUE(model.ok());
  double ratio_sum = 0;
  for (size_t c = 1; c < 5; ++c) {
    EXPECT_LE(model->explained_variance[c], model->explained_variance[c - 1] + 1e-9);
  }
  for (double r : model->explained_variance_ratio) ratio_sum += r;
  EXPECT_NEAR(ratio_sum, 1.0, 1e-6);  // All d components explain everything.
}

TEST(PcaTest, TransformReducesReconstructionErrorWithMoreComponents) {
  auto x = AnisotropicData(200, {1.0, 0.0, 0.0}, 0.3, 4);
  double prev_err = 1e18;
  for (size_t k = 1; k <= 3; ++k) {
    PcaConfig config;
    config.num_components = k;
    auto model = TrainPca(x, config);
    ASSERT_TRUE(model.ok());
    auto z = *model->Transform(x);
    EXPECT_EQ(z.cols(), k);
    auto back = *model->InverseTransform(z);
    double err = la::FrobeniusNorm(la::Subtract(back, x));
    EXPECT_LT(err, prev_err + 1e-9);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-6);  // Full rank reconstructs exactly.
}

TEST(PcaTest, TransformValidatesShapes) {
  auto x = data::GaussianMatrix(50, 4, 5);
  PcaConfig config;
  config.num_components = 2;
  auto model = TrainPca(x, config);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Transform(DenseMatrix(3, 5)).ok());
  EXPECT_FALSE(model->InverseTransform(DenseMatrix(3, 3)).ok());
}

TEST(PcaTest, InvalidInputs) {
  PcaConfig config;
  EXPECT_FALSE(TrainPca(DenseMatrix(1, 3), config).ok());
  config.num_components = 0;
  EXPECT_FALSE(TrainPca(DenseMatrix(10, 3), config).ok());
  config.num_components = 4;
  EXPECT_FALSE(TrainPca(DenseMatrix(10, 3), config).ok());
}

// --------------------------------------------------------------------------
// Random forest
// --------------------------------------------------------------------------

TEST(ForestTest, BeatsSingleTreeOnNoisyData) {
  auto train = data::MakeClassification(800, 8, 0.15, 6);
  ForestConfig config;
  config.num_trees = 25;
  config.tree.max_depth = 5;
  config.seed = 7;
  auto forest = TrainForestClassifier(train.x, train.y, config);
  ASSERT_TRUE(forest.ok());

  TreeConfig solo_config;
  solo_config.max_depth = 5;
  auto solo = TrainTreeClassifier(train.x, train.y, solo_config);
  ASSERT_TRUE(solo.ok());

  // Evaluate on freshly generated data from the same planted model: the
  // generator re-creates x and w from the same seed, so draw more rows and
  // slice off an unseen tail.
  auto big = data::MakeClassification(1600, 8, 0.15, 6);
  auto x_test = big.x.SliceRows(800, 1600);
  auto y_test = big.y.SliceRows(800, 1600);
  double forest_acc = *Accuracy(y_test, *forest->Predict(x_test));
  double solo_acc = *Accuracy(y_test, *solo->Predict(x_test));
  EXPECT_GT(forest_acc, 0.70);
  EXPECT_GE(forest_acc, solo_acc - 0.02);  // At worst on par, usually better.
}

TEST(ForestTest, RegressorAveragesTrees) {
  auto ds = data::MakeRegression(500, 5, 0.2, 8);
  ForestConfig config;
  config.num_trees = 15;
  config.tree.max_depth = 8;
  config.max_features = 5;  // Linear target: every tree needs all features.
  auto forest = TrainForestRegressor(ds.x, ds.y, config);
  ASSERT_TRUE(forest.ok());
  EXPECT_FALSE(forest->is_classifier);
  auto pred = *forest->Predict(ds.x);
  EXPECT_GT(*R2(ds.y, pred), 0.7);
}

TEST(ForestTest, PredictProbaIsVoteFraction) {
  auto ds = data::MakeClassification(300, 4, 0.05, 9);
  ForestConfig config;
  config.num_trees = 10;
  auto forest = TrainForestClassifier(ds.x, ds.y, config);
  ASSERT_TRUE(forest.ok());
  auto proba = *forest->PredictProba(ds.x);
  for (size_t i = 0; i < proba.rows(); ++i) {
    double p = proba.At(i, 0);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    // Vote fractions are multiples of 1/num_trees.
    double scaled = p * 10.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
  }
}

TEST(ForestTest, FeatureSubsetsRespectMaxFeatures) {
  auto ds = data::MakeClassification(200, 9, 0.1, 10);
  ForestConfig config;
  config.num_trees = 8;
  config.max_features = 3;
  auto forest = TrainForestClassifier(ds.x, ds.y, config);
  ASSERT_TRUE(forest.ok());
  for (const auto& subset : forest->feature_subsets) {
    EXPECT_EQ(subset.size(), 3u);
    for (size_t c : subset) EXPECT_LT(c, 9u);
  }
}

TEST(ForestTest, DeterministicGivenSeed) {
  auto ds = data::MakeClassification(150, 4, 0.1, 11);
  ForestConfig config;
  config.num_trees = 5;
  config.seed = 1234;
  auto a = TrainForestClassifier(ds.x, ds.y, config);
  auto b = TrainForestClassifier(ds.x, ds.y, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a->Predict(ds.x) == *b->Predict(ds.x));
}

TEST(ForestTest, ParallelTrainingMatchesSerial) {
  auto ds = data::MakeClassification(200, 5, 0.1, 12);
  ForestConfig config;
  config.num_trees = 6;
  config.seed = 77;
  auto serial = TrainForestClassifier(ds.x, ds.y, config);
  ThreadPool pool(3);
  auto parallel = TrainForestClassifier(ds.x, ds.y, config, &pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(*serial->Predict(ds.x) == *parallel->Predict(ds.x));
}

TEST(ForestTest, InvalidInputs) {
  auto ds = data::MakeClassification(50, 3, 0.0, 13);
  ForestConfig config;
  config.num_trees = 0;
  EXPECT_FALSE(TrainForestClassifier(ds.x, ds.y, config).ok());
  config = ForestConfig{};
  config.bootstrap_fraction = 0;
  EXPECT_FALSE(TrainForestClassifier(ds.x, ds.y, config).ok());
  config = ForestConfig{};
  EXPECT_FALSE(TrainForestClassifier(DenseMatrix(0, 3), DenseMatrix(0, 1), config).ok());
  RandomForestModel untrained;
  EXPECT_FALSE(untrained.Predict(ds.x).ok());
  // PredictProba on a regressor is rejected.
  auto reg = TrainForestRegressor(ds.x, ds.y, ForestConfig{});
  ASSERT_TRUE(reg.ok());
  EXPECT_FALSE(reg->PredictProba(ds.x).ok());
}

}  // namespace
}  // namespace dmml::ml
