// Tests for LA aggregates in the expression DAG: sum / rowSums / colSums,
// the sum(A*B) rewrite, and the parser builtins.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/generators.h"
#include "la/kernels.h"
#include "laopt/cse.h"
#include "laopt/executor.h"
#include "laopt/optimizer.h"
#include "laopt/parser.h"

namespace dmml::laopt {
namespace {

using la::DenseMatrix;

ExprPtr Leaf(const DenseMatrix& m, const char* name = "M") {
  return *ExprNode::Input(std::make_shared<DenseMatrix>(m), name);
}

TEST(AggregateTest, ShapesAndValues) {
  DenseMatrix m{{1, 2, 3}, {4, 5, 6}};
  auto leaf = Leaf(m);
  auto sum = *Execute(*ExprNode::Sum(leaf));
  EXPECT_EQ(sum.rows(), 1u);
  EXPECT_EQ(sum.cols(), 1u);
  EXPECT_DOUBLE_EQ(sum.At(0, 0), 21.0);

  auto rows = *Execute(*ExprNode::RowSums(leaf));
  EXPECT_TRUE(rows == DenseMatrix::ColumnVector({6, 15}));
  auto cols = *Execute(*ExprNode::ColSums(leaf));
  EXPECT_TRUE(cols == DenseMatrix::RowVector({5, 7, 9}));
}

TEST(AggregateTest, SumOfMatMulRewrite) {
  auto a = Leaf(data::GaussianMatrix(40, 30, 1), "A");
  auto b = Leaf(data::GaussianMatrix(30, 50, 2), "B");
  auto expr = *ExprNode::Sum(*ExprNode::MatMul(a, b));

  OptimizerReport report;
  auto optimized = Optimize(expr, {}, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_GE(report.chains_reordered, 1u);
  // Rewritten plan avoids the product: flops drop by ~n*m*k / (n*k + k*m).
  EXPECT_LT(report.flops_after, report.flops_before / 10);
  // And the value is identical.
  auto naive = *Execute(expr);
  auto fast = *Execute(*optimized);
  EXPECT_NEAR(fast.At(0, 0), naive.At(0, 0), 1e-7 * std::fabs(naive.At(0, 0)));
}

TEST(AggregateTest, SumOfScalarMulFolds) {
  auto x = Leaf(data::GaussianMatrix(5, 5, 3), "X");
  auto expr = *ExprNode::Sum(*ExprNode::ScalarMul(3.0, x));
  OptimizerReport report;
  auto optimized = Optimize(expr, {}, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_GE(report.scalars_folded, 1u);
  EXPECT_EQ((*optimized)->kind(), OpKind::kScalarMul);
  EXPECT_NEAR((*Execute(*optimized)).At(0, 0), (*Execute(expr)).At(0, 0), 1e-10);
}

TEST(AggregateTest, CsePreservesAggregates) {
  auto xm = std::make_shared<DenseMatrix>(data::GaussianMatrix(6, 4, 4));
  auto x1 = *ExprNode::Input(xm, "X");
  auto x2 = *ExprNode::Input(xm, "X");
  auto expr = *ExprNode::Add(*ExprNode::RowSums(x1), *ExprNode::RowSums(x2));
  CseReport report;
  auto deduped = EliminateCommonSubexpressions(expr, &report);
  ASSERT_TRUE(deduped.ok());
  EXPECT_GT(report.merges, 0u);
  EXPECT_TRUE((*Execute(*deduped)).ApproxEquals(*Execute(expr), 1e-12));
}

TEST(AggregateTest, ParserBuiltins) {
  auto x = std::make_shared<DenseMatrix>(DenseMatrix{{1, 2}, {3, 4}});
  Environment env = {{"X", x}};
  auto total = EvalExpression("sum(X)", env);
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(total->At(0, 0), 10.0);

  auto rs = EvalExpression("rowSums(X)", env);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(*rs == DenseMatrix::ColumnVector({3, 7}));

  auto cs = EvalExpression("colSums(X)", env);
  ASSERT_TRUE(cs.ok());
  EXPECT_TRUE(*cs == DenseMatrix::RowVector({4, 6}));

  // Composition: sum(t(X) %*% X) via the rewrite path.
  auto composed = EvalExpression("sum(t(X) %*% X)", env);
  ASSERT_TRUE(composed.ok());
  auto gram = la::Multiply(la::Transpose(*x), *x);
  EXPECT_NEAR(composed->At(0, 0), la::Sum(gram), 1e-10);
}

TEST(AggregateTest, ParserRejectsScalarOperand) {
  Environment env;
  EXPECT_FALSE(ParseExpression("sum(3)", env).ok());
  EXPECT_FALSE(ParseExpression("rowSums(2 * 3)", env).ok());
}

TEST(AggregateTest, NamedMatrixShadowedByBuiltinCallOnly) {
  // A matrix named "sum" is usable unless followed by '('.
  auto v = std::make_shared<DenseMatrix>(DenseMatrix::ColumnVector({1, 2}));
  Environment env = {{"sum", v}};
  auto plain = EvalExpression("sum + sum", env);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(*plain == DenseMatrix::ColumnVector({2, 4}));
}

}  // namespace
}  // namespace dmml::laopt
