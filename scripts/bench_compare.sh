#!/usr/bin/env bash
# Compares two bench captures and fails on throughput regressions.
#
#   scripts/bench_compare.sh baseline.txt candidate.txt [threshold_pct]
#
# Each input is the stdout of a bench binary (e.g. bench/bench_kernels) —
# only the JSONL records between "#BENCH-JSON-BEGIN" and "#BENCH-JSON-END"
# are read, so full logs can be passed as-is. Records join on
# (name, size, threads); a candidate whose ns_per_op exceeds the baseline by
# more than threshold_pct (default 10) is flagged.
#
# Exit codes: 0 no regressions, 1 regressions found, 2 usage/parse problem.
set -u -o pipefail

if [ "$#" -lt 2 ] || [ "$#" -gt 3 ]; then
  echo "usage: $0 baseline.txt candidate.txt [threshold_pct]" >&2
  exit 2
fi
baseline="$1"
candidate="$2"
threshold="${3:-10}"

for f in "$baseline" "$candidate"; do
  if [ ! -r "$f" ]; then
    echo "bench_compare: cannot read '$f'" >&2
    exit 2
  fi
done

# Extracts "key<TAB>ns_per_op" lines from the #BENCH-JSON block. The records
# are flat single-line JSON objects emitted by BenchJsonEmitter, so field
# extraction with sed is reliable here (no nesting, fixed field names).
extract() {
  awk '/^#BENCH-JSON-BEGIN/{on=1; next} /^#BENCH-JSON-END/{on=0} on' "$1" |
    sed -n 's/.*"name":"\([^"]*\)".*"size":"\([^"]*\)".*"threads":\([0-9]*\).*"ns_per_op":\([0-9.eE+-]*\).*/\1|\2|t\3\t\4/p'
}

base_tsv="$(extract "$baseline")"
cand_tsv="$(extract "$candidate")"
if [ -z "$base_tsv" ]; then
  echo "bench_compare: no #BENCH-JSON records in '$baseline'" >&2
  exit 2
fi
if [ -z "$cand_tsv" ]; then
  echo "bench_compare: no #BENCH-JSON records in '$candidate'" >&2
  exit 2
fi

awk -F'\t' -v thr="$threshold" '
  NR == FNR { base[$1] = $2; next }
  {
    if (!($1 in base)) { missing_base++; next }
    seen[$1] = 1
    delta = (base[$1] > 0) ? ($2 - base[$1]) / base[$1] * 100 : 0
    if (delta > thr) {
      printf "REGRESSION %-40s %12.1f -> %12.1f ns/op (%+.1f%%)\n",
             $1, base[$1], $2, delta
      regressions++
    } else if (delta < -thr) {
      printf "improved   %-40s %12.1f -> %12.1f ns/op (%+.1f%%)\n",
             $1, base[$1], $2, delta
    }
    compared++
  }
  END {
    for (k in base) if (!(k in seen)) missing_cand++
    printf "bench_compare: %d records compared, %d regressions (threshold %s%%)\n",
           compared + 0, regressions + 0, thr
    if (missing_base + 0 > 0)
      printf "bench_compare: note: %d candidate records missing from baseline\n", missing_base
    if (missing_cand + 0 > 0)
      printf "bench_compare: note: %d baseline records missing from candidate\n", missing_cand
    exit (regressions + 0 > 0) ? 1 : 0
  }
' <(printf '%s\n' "$base_tsv") <(printf '%s\n' "$cand_tsv")
