#!/usr/bin/env bash
# Three gates in one script:
#
#  1. clang-tidy (config: .clang-tidy at the repo root) over every
#     translation unit in src/, failing on any warning, so new findings
#     cannot land silently.
#  2. A Release-build smoke: bench/bench_kernels --smoke runs the
#     blocked-vs-reference parity suite plus a ~3 second throughput pass, and
#     bench/bench_cla --smoke checks compressed-vs-dense and pooled-vs-serial
#     parity; both exit nonzero on any NaN or parity mismatch — catching
#     miscompiled or numerically broken kernels that an -O0 test run would
#     miss. bench/bench_pipeline --smoke gates the declarative pipeline
#     chooser: factorized picked (and faster) on the skewed star join,
#     materialization picked on the inverted workload, identical models
#     from both routes.
#  3. A mixed-representation parity gate: tests/laopt_repr_test (one laopt
#     plan executed under dense, sparse and compressed leaf bindings, plus
#     the unified GLM/k-means trainers) built and run under TSan and under
#     ASan+UBSan, so the representation-dispatch and slot-reuse paths of the
#     buffered executor are exercised with threads under both sanitizers.
#     The TSan build additionally runs obs_test (concurrent endpoint scrapes
#     against the exposition server) and laopt_profile_test (profile writes
#     racing registry reads). Both sanitizer builds also run
#     laopt_verify_test, so the verifier, the lint rules, and the
#     liveness-driven buffer sharing are exercised under TSan and ASan+UBSan,
#     and modelsel_shared_test (the shared-scan rung engine's wide multi-root
#     plans), each twice: default scheduling and DMML_INTER_NODE=1.
#     pipeline_frontend_test (table -> join -> train through both physical
#     routes) also runs under both sanitizers, plain and with
#     DMML_VERIFY=1 DMML_INTER_NODE=1.
#  4. A plan-verifier gate: every laopt test binary plus the laopt benches
#     re-run in the Release build with DMML_VERIFY=1 DMML_LINT=1, so the
#     structural verifier checks every optimizer pass output at -O2 (Release
#     defines NDEBUG, which otherwise leaves the verifier off). Any
#     diagnostic of severity error fails the plan and hence the binary.
#     The same suite then re-runs with DMML_INTER_NODE=1, forcing the
#     dependency-counter dataflow scheduler onto every pooled executor —
#     results must stay bit-identical and laopt.sched.buffer_conflicts zero.
#
# The Release smoke also covers the profiler: bench_laopt --smoke asserts
# that the profiler-disabled unified GLM epoch loop stays within
# DMML_SMOKE_PROFILER_BOUND (default 1.25, see bench_laopt.cpp) of the
# hand-coded baseline, and a
# curl pass starts bench_laopt with DMML_OBS_PORT=0, scrapes /metrics and
# /profiles from the advertised port, and validates the JSON (skipped
# gracefully when curl is absent).
#
# Usage:
#
#   scripts/static_checks.sh [build-dir]
#
# A compile_commands.json is generated into the build dir (default
# build-tidy) if not already present; the smoke uses a separate Release
# build dir (build-smoke). Exit codes: 0 clean, 1 findings or smoke
# failure, 2 environment problem (no clang-tidy on PATH).
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-tidy}"

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "static_checks: '$tidy_bin' not found on PATH." >&2
  echo "Install clang-tidy (or set CLANG_TIDY) and re-run." >&2
  exit 2
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null \
    || { echo "static_checks: cmake configure failed" >&2; exit 2; }
fi

mapfile -t sources < <(find "$repo_root/src" -name '*.cpp' | sort)
echo "static_checks: running $tidy_bin over ${#sources[@]} files..."

status=0
for f in "${sources[@]}"; do
  # --quiet suppresses the "N warnings generated" chatter; findings still
  # print. WarningsAsErrors in .clang-tidy makes any finding a failure.
  if ! "$tidy_bin" --quiet -p "$build_dir" "$f"; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "static_checks: FAILED — fix the findings above (policy: .clang-tidy)" >&2
else
  echo "static_checks: clang-tidy clean"
fi

# ---------------------------------------------------------------------------
# Release smoke: parity + NaN scan at full optimization.
# ---------------------------------------------------------------------------
smoke_dir="$repo_root/build-smoke"
echo "static_checks: building smoke benches (Release) in $smoke_dir..."
if cmake -B "$smoke_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null \
    && cmake --build "$smoke_dir" --target bench_kernels --target bench_cla \
         --target bench_laopt --target bench_ablations --target bench_modelsel \
         --target bench_pipeline -j >/dev/null; then
  if "$smoke_dir/bench/bench_kernels" --smoke; then
    echo "static_checks: kernel smoke clean"
  else
    echo "static_checks: FAILED — bench_kernels smoke found parity/NaN errors" >&2
    status=1
  fi
  if "$smoke_dir/bench/bench_cla" --smoke >/dev/null; then
    echo "static_checks: cla smoke clean"
  else
    echo "static_checks: FAILED — bench_cla smoke found parity errors" >&2
    status=1
  fi
  # Profiler-disabled overhead gate: the unified GLM epoch loop with no
  # profile attached must stay within the bound of the hand-coded baseline
  # (the executor adds one pointer test per node when profiling is off).
  if "$smoke_dir/bench/bench_laopt" --smoke >/dev/null; then
    echo "static_checks: laopt profiler-overhead smoke clean"
  else
    echo "static_checks: FAILED — bench_laopt smoke (profiler overhead bound)" >&2
    status=1
  fi
  # The ablation, model-selection and pipeline benches exit nonzero on any
  # parity, training or route-choice failure; --smoke keeps each to seconds.
  for b in bench_ablations bench_modelsel bench_pipeline; do
    if "$smoke_dir/bench/$b" --smoke >/dev/null; then
      echo "static_checks: $b smoke clean"
    else
      echo "static_checks: FAILED — $b --smoke" >&2
      status=1
    fi
  done

  # Exposition-endpoint smoke: run the bench with the obs server held open,
  # scrape /metrics and /profiles from the advertised ephemeral port, and
  # validate the JSON payload.
  if command -v curl >/dev/null 2>&1; then
    obs_log="$smoke_dir/obs_smoke.log"
    DMML_OBS_PORT=0 DMML_OBS_HOLD_SECS=20 \
      "$smoke_dir/bench/bench_laopt" --smoke >"$obs_log" 2>&1 &
    obs_pid=$!
    obs_port=""
    for _ in $(seq 1 100); do
      obs_port="$(sed -n 's/^#OBS-SERVER port=\([0-9][0-9]*\)$/\1/p' "$obs_log" | head -n1)"
      [ -n "$obs_port" ] && break
      kill -0 "$obs_pid" 2>/dev/null || break
      sleep 0.1
    done
    obs_ok=1
    if [ -z "$obs_port" ]; then
      echo "static_checks: FAILED — bench_laopt never advertised #OBS-SERVER port" >&2
      obs_ok=0
    else
      # The bench holds the server open for DMML_OBS_HOLD_SECS after its
      # last section, so the endpoints stay scrapeable here.
      if ! curl -fsS --max-time 10 "http://127.0.0.1:$obs_port/metrics" | grep -q '^counter '; then
        echo "static_checks: FAILED — /metrics scrape on port $obs_port" >&2
        obs_ok=0
      fi
      profiles_json="$(curl -fsS --max-time 10 "http://127.0.0.1:$obs_port/profiles")" || profiles_json=""
      case "$profiles_json" in
        '{"profiles":'*) : ;;
        *) echo "static_checks: FAILED — /profiles scrape on port $obs_port" >&2; obs_ok=0 ;;
      esac
      if [ "$obs_ok" -eq 1 ] && command -v python3 >/dev/null 2>&1; then
        if ! printf '%s' "$profiles_json" | python3 -c 'import json,sys; json.load(sys.stdin)'; then
          echo "static_checks: FAILED — /profiles payload is not valid JSON" >&2
          obs_ok=0
        fi
      fi
    fi
    kill "$obs_pid" 2>/dev/null
    wait "$obs_pid" 2>/dev/null
    if [ "$obs_ok" -eq 1 ]; then
      echo "static_checks: obs endpoint smoke clean (port $obs_port)"
    else
      status=1
    fi
  else
    echo "static_checks: skipping obs endpoint smoke (curl not found)"
  fi
else
  echo "static_checks: FAILED — could not build bench_kernels/bench_cla/bench_laopt" >&2
  status=1
fi

# ---------------------------------------------------------------------------
# Plan-verifier gate: re-run every laopt test binary and the laopt benches in
# the Release build with the structural verifier and linter forced on
# (Release defines NDEBUG, so DMML_VERIFY defaults off there). The verifier
# runs after every optimizer pass; a diagnostic of severity error turns into
# a failed Status, which every test and bench propagates as a nonzero exit.
# ---------------------------------------------------------------------------
verifier_tests="laopt_test laopt_cse_test laopt_analysis_test \
laopt_aggregates_test laopt_repr_test laopt_profile_test laopt_verify_test \
laopt_sched_test"
echo "static_checks: verifier gate — laopt tests + benches with DMML_VERIFY=1 DMML_LINT=1..."
# shellcheck disable=SC2086
if cmake --build "$smoke_dir" --target $verifier_tests -j >/dev/null; then
  for t in $verifier_tests; do
    if DMML_VERIFY=1 DMML_LINT=1 "$smoke_dir/tests/$t" >/dev/null; then
      echo "static_checks: $t clean under checked verifier"
    else
      echo "static_checks: FAILED — $t with DMML_VERIFY=1 DMML_LINT=1" >&2
      status=1
    fi
  done
  if DMML_VERIFY=1 DMML_LINT=1 "$smoke_dir/bench/bench_laopt" --smoke >/dev/null; then
    echo "static_checks: bench_laopt clean under checked verifier"
  else
    echo "static_checks: FAILED — bench_laopt --smoke with DMML_VERIFY=1 DMML_LINT=1" >&2
    status=1
  fi

  # Inter-node scheduler gate: the same laopt suite plus bench_laopt --smoke
  # with dataflow scheduling forced on, so every executor-driven test runs
  # its plans through dependency-counter dispatch (results must stay
  # bit-identical and the sched counters sane).
  echo "static_checks: inter-node gate — laopt tests + bench_laopt with DMML_INTER_NODE=1..."
  for t in $verifier_tests; do
    if DMML_INTER_NODE=1 "$smoke_dir/tests/$t" >/dev/null; then
      echo "static_checks: $t clean under forced inter-node scheduling"
    else
      echo "static_checks: FAILED — $t with DMML_INTER_NODE=1" >&2
      status=1
    fi
  done
  if DMML_INTER_NODE=1 "$smoke_dir/bench/bench_laopt" --smoke >/dev/null; then
    echo "static_checks: bench_laopt clean under forced inter-node scheduling"
  else
    echo "static_checks: FAILED — bench_laopt --smoke with DMML_INTER_NODE=1" >&2
    status=1
  fi
else
  echo "static_checks: FAILED — could not build laopt tests for the verifier gate" >&2
  status=1
fi

# ---------------------------------------------------------------------------
# Mixed-representation parity under sanitizers: the same laopt plan bound to
# dense, sparse and compressed leaves must agree, with the executor's
# slot-reuse and thread-pool paths clean under TSan and ASan+UBSan. The
# verifier suite rides along so the corrupt-DAG paths and liveness-driven
# buffer sharing are sanitizer-clean too.
# ---------------------------------------------------------------------------
run_sanitized_repr_gate() {
  local san="$1" dir="$2"
  echo "static_checks: building laopt_repr_test + laopt_verify_test + laopt_sched_test + modelsel_shared_test + pipeline_frontend_test (DMML_SANITIZE=$san) in $dir..."
  if cmake -B "$dir" -S "$repo_root" -DDMML_SANITIZE="$san" >/dev/null \
      && cmake --build "$dir" --target laopt_repr_test --target laopt_verify_test \
           --target laopt_sched_test --target modelsel_shared_test \
           --target pipeline_frontend_test -j >/dev/null; then
    if "$dir/tests/laopt_repr_test" >/dev/null; then
      echo "static_checks: repr parity clean under $san"
    else
      echo "static_checks: FAILED — laopt_repr_test under $san" >&2
      status=1
    fi
    if "$dir/tests/laopt_verify_test" >/dev/null; then
      echo "static_checks: verifier + buffer sharing clean under $san"
    else
      echo "static_checks: FAILED — laopt_verify_test under $san" >&2
      status=1
    fi
    # The scheduler suite runs twice: dataflow default, then with inter-node
    # forced on for every executor in the binary (including the serial
    # baselines, which keep inter_node off via set_inter_node(false)).
    if "$dir/tests/laopt_sched_test" >/dev/null \
        && DMML_INTER_NODE=1 "$dir/tests/laopt_sched_test" >/dev/null; then
      echo "static_checks: inter-node scheduler clean under $san"
    else
      echo "static_checks: FAILED — laopt_sched_test under $san" >&2
      status=1
    fi
    # The shared-scan rung engine also runs twice (default dataflow, then
    # inter-node forced on), so the wide multi-root plans and in-place leaf
    # mutation between executor runs are sanitizer-clean both ways.
    if "$dir/tests/modelsel_shared_test" >/dev/null \
        && DMML_INTER_NODE=1 "$dir/tests/modelsel_shared_test" >/dev/null; then
      echo "static_checks: shared-scan rung engine clean under $san"
    else
      echo "static_checks: FAILED — modelsel_shared_test under $san" >&2
      status=1
    fi
    # The pipeline front-end drives relational execution, both physical
    # routes (materialized bindings and the factorized operand) and the
    # trainers end to end; run plain and with the verifier plus inter-node
    # scheduling forced on.
    if "$dir/tests/pipeline_frontend_test" >/dev/null \
        && DMML_VERIFY=1 DMML_INTER_NODE=1 "$dir/tests/pipeline_frontend_test" >/dev/null; then
      echo "static_checks: pipeline front-end clean under $san"
    else
      echo "static_checks: FAILED — pipeline_frontend_test under $san" >&2
      status=1
    fi
  else
    echo "static_checks: FAILED — could not build laopt tests under $san" >&2
    status=1
  fi
}

run_sanitized_repr_gate "thread" "$repo_root/build-tsan"
run_sanitized_repr_gate "address,undefined" "$repo_root/build-asan"

# Observability under TSan: concurrent endpoint scrapes against the
# exposition server (obs_test) and profile writes racing registry snapshot
# reads (laopt_profile_test) reuse the TSan build dir from the gate above.
tsan_dir="$repo_root/build-tsan"
for t in obs_test laopt_profile_test; do
  echo "static_checks: building $t (DMML_SANITIZE=thread)..."
  if cmake --build "$tsan_dir" --target "$t" -j >/dev/null \
      && "$tsan_dir/tests/$t" >/dev/null; then
    echo "static_checks: $t clean under thread sanitizer"
  else
    echo "static_checks: FAILED — $t under thread sanitizer" >&2
    status=1
  fi
done

exit "$status"
